//! The database: segmented MVCC tables, secondary indexes, transactions,
//! checkpointed recovery.
//!
//! # Concurrency model
//!
//! The paper's FlorDB is embedded in one driver process per run; we
//! mirror that with a single logical writer and any number of readers.
//! Readers only ever see committed rows ("visibility control", §2.1) —
//! but unlike the original lock-per-scan design, readers here never hold
//! a lock while scanning.
//!
//! Each table is a list of immutable, `Arc`-shared **sealed segments**.
//! [`Database::commit`] seals the staged delta into a new segment (small
//! tail segments are coalesced so segment counts stay logarithmic-ish in
//! history, not linear in commit count) and publishes a new table version
//! — a fresh `Arc` list; the rows themselves are never copied for
//! publication and never mutated after sealing.
//!
//! [`Database::pin`] takes the inner lock for the nanoseconds needed to
//! clone one `Arc` and read the epoch, and returns an epoch-stamped
//! [`Snapshot`]. Every scan, lookup and query then runs **lock-free**
//! against the pinned segments: a concurrent commit builds new versions
//! beside them and can neither block nor be blocked by any number of
//! readers. A pinned snapshot is stable forever — re-scanning it yields
//! byte-identical frames no matter how many commits land meanwhile (the
//! `snapshot_isolation` property test).
//!
//! # Columnar layout
//!
//! A sealed segment stores its rows **column-major**: one typed vector
//! per column (`Vec<i64>`, `Vec<f64>`, `Vec<bool>`), a side null bitmap,
//! and string columns **dictionary-encoded** — a per-segment first-
//! appearance dict of `Arc<str>` plus `u32` codes per row (columns whose
//! non-null cells mix types fall back to a tagged `Value` vector). The
//! query layer evaluates predicates as tight loops over these vectors
//! into selection bitmaps — an equality on a dict column precomputes one
//! verdict per dict entry and then compares codes — and materialises
//! [`flor_df::Value`]s only for the selected rows. Cell reads for
//! point lookups transpose on demand.
//!
//! Secondary hash indexes are per-segment, built in the **same single
//! pass** that seals the columns, with global row ids so multi-segment
//! results recover scan order by a plain sort. That pass also builds
//! per-segment **zone maps** — min/max per column — which the query
//! planner uses to prune whole segments from range scans (`tstamp`
//! windows, time travel) without reading a row.
//!
//! # Segment lifecycle: seal → coalesce → compact/cluster → checkpoint
//!
//! 1. **Seal.** A commit seals its staged rows into a fresh immutable
//!    columnar segment (columns + dictionaries + indexes + zone maps
//!    built in one pass over the rows, never mutated after). A segment
//!    whose [`crate::schema::ClusterBy`] column arrives already
//!    non-decreasing is marked sorted at seal time.
//! 2. **Coalesce.** Small trailing segments are folded geometrically at
//!    commit time (a segment is absorbed only once the incoming run is at
//!    least its size, up to [`SEGMENT_COALESCE_ROWS`]), so N tiny commits
//!    cost O(N log N) row copies — not O(N²) — and leave O(log N)
//!    segments. Only the trailing run of small, contiguous segments is
//!    ever touched by a commit; everything before it is *cold*.
//! 3. **Compact.** [`Database::compact`] merges runs of cold sealed
//!    segments into fewer, right-sized ones and — for tables with a
//!    declared [`crate::schema::LatestWins`] policy (the `jobs` control
//!    plane) — drops rows a newer row has superseded, so scans touch
//!    only live data. (`logs` deliberately declares no policy: replay
//!    and the pivot depend on raw row order and multiplicity — see
//!    [`crate::schema::flor_schema`].) Compacted segments carry an explicit rid map (the
//!    dropped rows leave holes in the global row-id space) and the
//!    successor table version is published by the same pointer swap a
//!    commit uses: snapshots pinned before the compaction keep re-reading
//!    their original segments, byte-identically, forever. Compaction
//!    never bumps the epoch and publishes nothing to the change feed —
//!    it is invisible to every fold-respecting reader. For tables with a
//!    declared [`crate::schema::ClusterBy`] column (`logs` clusters by
//!    `tstamp`), rewritten runs are **sorted** by that column (ties keep
//!    insertion order), so the output chunks' zone maps are disjoint and
//!    range scans binary-search into each admitted chunk.
//! 4. **Checkpoint.** [`Database::checkpoint`] serializes a pinned
//!    snapshot to a `<wal>.ckpt` sidecar and truncates the WAL to the
//!    uncovered tail, making [`Database::open`] O(live data). A
//!    checkpoint taken after a compaction persists the *compacted* state,
//!    which is how dropped rows eventually leave the log too (see
//!    [`crate::checkpoint`] for the crash-safety argument). Compactions
//!    and checkpoints are serialized against each other.
//!
//! # Durability
//!
//! Writes go to the [`crate::wal`] as before (staged inserts immediately,
//! visibility at the commit marker). Compaction itself writes nothing:
//! replaying the full WAL reproduces the uncompacted state, and the next
//! checkpoint captures the compacted one.

use crate::checkpoint::{self, CheckpointData, SidecarMark};
use crate::codec::WalRecord;
use crate::column;
use crate::compact::{self, CompactionPolicy, CompactionStats, CompactionTrigger};
use crate::feed::{CommitBatch, Publisher, RowDelta, Subscription};
use crate::metrics::StoreMetrics;
use crate::query::{CmpOp, Predicate, QueryExplain};
use crate::schema::TableSchema;
use crate::wal::{self, TailChunk, Wal, WalError};
use flor_df::{Column, DataFrame, DfResult, Value};
use flor_obs::{MetricsRegistry, Span};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Tail segments smaller than this participate in commit-time coalescing.
/// Folding is geometric — a trailing segment is absorbed only when the
/// incoming run is at least its size — so each row is re-copied O(log)
/// times on its way to a full-size segment, and sub-threshold segment
/// counts stay logarithmic in history. The sealed segments readers
/// already pinned are untouched. Segments at or past this size are never
/// modified by commits again: they are *cold*, and only [`Database::compact`]
/// may replace them.
pub const SEGMENT_COALESCE_ROWS: usize = 512;

/// Chunk size for segments sealed on the recovery path
/// ([`Database::open`]): a reopened table is rebuilt as several
/// bounded segments rather than one history-wide monolith, so zone-map
/// pruning keeps working across restarts.
pub const RECOVERED_SEGMENT_ROWS: usize = 4096;

/// Store-level errors.
#[derive(Debug)]
pub enum StoreError {
    /// Unknown table name.
    NoSuchTable(String),
    /// Row failed schema validation.
    Invalid(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// WAL or checkpoint decode failure on recovery.
    Codec(crate::codec::CodecError),
    /// Dataframe construction failure.
    Df(flor_df::DfError),
    /// Mutation attempted through a read-only handle (a follower opened
    /// with [`Database::open_follower`]). Followers apply the writer's
    /// WAL; they never originate writes.
    ReadOnly,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StoreError::Invalid(m) => write!(f, "invalid row: {m}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Codec(e) => write!(f, "wal codec error: {e}"),
            StoreError::Df(e) => write!(f, "dataframe error: {e}"),
            StoreError::ReadOnly => write!(f, "read-only handle: followers cannot write"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
impl From<flor_df::DfError> for StoreError {
    fn from(e: flor_df::DfError) -> Self {
        StoreError::Df(e)
    }
}
impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Io(e) => StoreError::Io(e),
            WalError::Codec(e) => StoreError::Codec(e),
        }
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// One immutable run of committed rows, stored **columnar**: one typed
/// [`column::Column`] per schema column (primitive vectors, dictionary-
/// encoded strings, null bitmaps). Sealed at commit time (or built by
/// compaction), shared by `Arc` between the live table and every pinned
/// snapshot; never mutated afterwards.
#[derive(Debug)]
pub(crate) struct Segment {
    /// Global row id of this segment's first row (in insertion order —
    /// for clustered segments this is still the smallest-at-seal first
    /// row's rid; commit-time coalescing only ever folds unclustered
    /// contiguous segments, for which `start + len` is the next rid).
    pub start: usize,
    /// Number of rows.
    len: usize,
    /// One typed column per schema column, all of length `len`.
    pub cols: Vec<column::Column>,
    /// Global row id of each row, in row order. `None` for plain sealed
    /// segments whose rids are contiguous (`start + offset`); `Some` for
    /// compacted segments where dropped rows left holes in the rid space
    /// or clustering reordered rows.
    pub rids: Option<Vec<usize>>,
    /// For clustered (row-reordered) segments: local offsets sorted by
    /// rid, so [`Segment::local_of`] can still binary-search. `None`
    /// when `rids` is already ascending.
    rid_perm: Option<Vec<u32>>,
    /// Smallest and largest rid in this segment (quick reject for
    /// [`TableVersion::row`]).
    pub min_rid: usize,
    pub max_rid: usize,
    /// column name → value → local row offsets (ascending). Built once
    /// at seal time.
    pub indexes: HashMap<String, HashMap<Value, Vec<u32>>>,
    /// column name → (min, max) over this segment's rows, built once at
    /// seal time (segments are immutable, so zone maps are free to keep
    /// current). Range and equality predicates prune whole segments with
    /// them; absent for empty segments.
    pub zones: HashMap<String, (Value, Value)>,
    /// `Some(col_pos)` when this segment's rows are sorted non-decreasing
    /// on the schema's [`crate::schema::ClusterBy`] column — range scans
    /// then binary-search into the segment instead of filtering it.
    pub sorted_by: Option<usize>,
}

impl Segment {
    fn seal(schema: &TableSchema, start: usize, rows: Vec<Vec<Value>>) -> Segment {
        Segment::build(schema, start, None, rows)
    }

    /// Seal a compacted segment whose retained rows keep their original
    /// (now non-contiguous, possibly reordered-by-clustering) global row
    /// ids. Ascending contiguous rid runs collapse back to a plain
    /// segment.
    pub(crate) fn seal_mapped(
        schema: &TableSchema,
        rids: Vec<usize>,
        rows: Vec<Vec<Value>>,
    ) -> Segment {
        debug_assert_eq!(rids.len(), rows.len());
        let ascending = rids.windows(2).all(|w| w[0] < w[1]);
        let start = rids.first().copied().unwrap_or(0);
        let contiguous = ascending
            && rids
                .last()
                .is_none_or(|&last| last + 1 - start == rids.len());
        let rids = if contiguous { None } else { Some(rids) };
        Segment::build(schema, start, rids, rows)
    }

    /// Single-pass seal: one walk over the rows feeds the per-column
    /// builders *and* the secondary-index postings; zone maps then fall
    /// out of the finished columns' min/max without touching rows again.
    fn build(
        schema: &TableSchema,
        start: usize,
        rids: Option<Vec<usize>>,
        rows: Vec<Vec<Value>>,
    ) -> Segment {
        let n_cols = schema.columns.len();
        let indexed: Vec<usize> = schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.indexed)
            .map(|(i, _)| i)
            .collect();
        let mut builders: Vec<column::ColumnBuilder> =
            (0..n_cols).map(|_| column::ColumnBuilder::new()).collect();
        let mut index_maps: Vec<HashMap<Value, Vec<u32>>> =
            indexed.iter().map(|_| HashMap::new()).collect();
        let len = rows.len();
        for (i, row) in rows.into_iter().enumerate() {
            for (&pos, idx) in indexed.iter().zip(&mut index_maps) {
                idx.entry(row[pos].clone()).or_default().push(i as u32);
            }
            for (cell, b) in row.into_iter().zip(&mut builders) {
                b.push(&cell);
            }
        }
        let cols: Vec<column::Column> = builders.into_iter().map(|b| b.finish()).collect();
        let indexes = indexed
            .iter()
            .zip(index_maps)
            .map(|(&pos, idx)| (schema.columns[pos].name.clone(), idx))
            .collect();
        let mut zones = HashMap::new();
        for (col, def) in cols.iter().zip(&schema.columns) {
            if let Some((lo, hi)) = col.min_max() {
                zones.insert(def.name.clone(), (lo, hi));
            }
        }
        let sorted_by = schema
            .cluster_by
            .as_ref()
            .and_then(|c| schema.col_index(&c.column))
            .filter(|&ci| len > 0 && cols[ci].is_non_decreasing());
        let (min_rid, max_rid, rid_perm) = match &rids {
            None => (start, start + len.saturating_sub(1), None),
            Some(rids) => {
                let min = rids.iter().copied().min().unwrap_or(0);
                let max = rids.iter().copied().max().unwrap_or(0);
                let perm = if rids.windows(2).all(|w| w[0] < w[1]) {
                    None
                } else {
                    let mut perm: Vec<u32> = (0..len as u32).collect();
                    perm.sort_unstable_by_key(|&l| rids[l as usize]);
                    Some(perm)
                };
                (min, max, perm)
            }
        };
        Segment {
            start,
            len,
            cols,
            rids,
            rid_perm,
            min_rid,
            max_rid,
            indexes,
            zones,
            sorted_by,
        }
    }

    /// Number of rows in this segment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Materialize the cell at (`local`, `col`) as an owned [`Value`].
    pub fn cell(&self, local: usize, col: usize) -> Value {
        self.cols[col].value_at(local)
    }

    /// Materialize the row at local offset `local`.
    pub fn row_at(&self, local: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value_at(local)).collect()
    }

    /// Materialize every row, in row order (compaction's rewrite path).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = vec![Vec::with_capacity(self.cols.len()); self.len];
        for col in &self.cols {
            let mut cells = Vec::with_capacity(self.len);
            col.extend_all(&mut cells);
            for (row, cell) in rows.iter_mut().zip(cells) {
                row.push(cell);
            }
        }
        rows
    }

    /// Approximate resident heap bytes of this segment's column data.
    pub fn mem_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.mem_bytes()).sum()
    }

    /// The global row id of the row at local offset `local`.
    pub fn rid_at(&self, local: usize) -> usize {
        match &self.rids {
            Some(rids) => rids[local],
            None => self.start + local,
        }
    }

    /// The local offset of global row id `rid`, if this segment retains
    /// it (a compacted segment may have dropped it).
    pub fn local_of(&self, rid: usize) -> Option<usize> {
        match (&self.rids, &self.rid_perm) {
            (Some(rids), None) => rids.binary_search(&rid).ok(),
            (Some(rids), Some(perm)) => perm
                .binary_search_by(|&l| rids[l as usize].cmp(&rid))
                .ok()
                .map(|i| perm[i] as usize),
            (None, _) => {
                (rid >= self.start && rid < self.start + self.len).then(|| rid - self.start)
            }
        }
    }

    /// Whether this segment's zone map admits any row satisfying `pred`.
    /// `true` means "must scan"; `false` proves no row here can match.
    /// Columns without a zone (unknown column, empty segment) are never
    /// pruned.
    pub fn may_match(&self, pred: &Predicate) -> bool {
        let Some((lo, hi)) = self.zones.get(&pred.col) else {
            return true;
        };
        let v = &pred.value;
        match pred.op {
            CmpOp::Eq => v >= lo && v <= hi,
            CmpOp::Ne => !(lo == hi && lo == v),
            CmpOp::Lt => lo < v,
            CmpOp::Le => lo <= v,
            CmpOp::Gt => hi > v,
            CmpOp::Ge => hi >= v,
        }
    }

    /// Zone check for an equality lookup on `col` (the index fast path's
    /// pre-filter: segments whose range excludes the value skip the hash
    /// probe entirely).
    pub fn zone_admits_eq(&self, col: &str, v: &Value) -> bool {
        self.zones
            .get(col)
            .is_none_or(|(lo, hi)| v >= lo && v <= hi)
    }
}

/// One published version of a table: its schema plus the segment list at
/// some epoch. Immutable; commits (and compactions) publish a successor
/// version.
#[derive(Debug)]
pub(crate) struct TableVersion {
    pub schema: Arc<TableSchema>,
    pub segments: Vec<Arc<Segment>>,
    /// Live (retained) rows across all segments — what a full scan
    /// touches. Compaction shrinks this; the rid space does not shrink.
    pub total_rows: usize,
    /// Global row-id high watermark: the rid the next appended row gets.
    /// Diverges from `total_rows` once compaction drops dead rows (rids
    /// are never reused, so pinned index results stay unambiguous).
    pub next_rid: usize,
}

impl TableVersion {
    fn empty(schema: Arc<TableSchema>) -> TableVersion {
        TableVersion {
            schema,
            segments: Vec::new(),
            total_rows: 0,
            next_rid: 0,
        }
    }

    /// Successor version with `new_rows` appended. The incoming run is
    /// sealed as a segment, geometrically folding in trailing segments no
    /// larger than itself (and below [`SEGMENT_COALESCE_ROWS`]) — the
    /// amortization that keeps N tiny commits at O(N log N) copied rows
    /// instead of O(N²). Pinned copies of the folded segments are
    /// untouched. Returns the successor and how many existing rows were
    /// re-copied by the fold (the coalescing cost a bench can assert on).
    fn with_appended(&self, new_rows: Vec<Vec<Value>>) -> (TableVersion, u64) {
        let mut segments = self.segments.clone();
        let added = new_rows.len();
        let mut rows = new_rows;
        let mut start = self.next_rid;
        let mut copied = 0u64;
        while let Some(last) = segments.last() {
            // Compacted segments (rid-mapped) are cold: commits never
            // re-open them. Plain segments fold only while they are both
            // small and no larger than the run being sealed — and flush
            // with the run's first rid: a compaction that dropped a dead
            // suffix can leave a plain segment ending below `next_rid`,
            // and folding across that hole would re-issue dropped rids.
            if last.rids.is_some()
                || last.len() >= SEGMENT_COALESCE_ROWS
                || last.len() > rows.len()
                || last.start + last.len() != start
            {
                break;
            }
            // audit: allow(panic) — the loop condition peeked `last()`,
            // so the vec is non-empty when we pop.
            let last = segments.pop().expect("just peeked");
            copied += last.len() as u64;
            start = last.start;
            let mut merged = last.to_rows();
            merged.extend(rows);
            rows = merged;
        }
        segments.push(Arc::new(Segment::seal(&self.schema, start, rows)));
        (
            TableVersion {
                schema: Arc::clone(&self.schema),
                segments,
                total_rows: self.total_rows + added,
                next_rid: self.next_rid + added,
            },
            copied,
        )
    }

    /// Row by global id, materialized from its segment's columns. `None`
    /// for rids past the high watermark or dropped by compaction —
    /// callers must not assume every rid below [`TableVersion::next_rid`]
    /// is still retained. (Clustered segments reorder rows, so segment
    /// `start`s are not globally sorted; each segment's `[min_rid,
    /// max_rid]` span gives the quick reject instead.)
    pub fn row(&self, rid: usize) -> Option<Vec<Value>> {
        for seg in self.segments.iter().rev() {
            if rid < seg.min_rid || rid > seg.max_rid {
                continue;
            }
            if let Some(local) = seg.local_of(rid) {
                return Some(seg.row_at(local));
            }
        }
        None
    }

    /// All rows, in segment/row order (insertion order until clustering
    /// reorders a compacted segment's interior).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        self.segments
            .iter()
            .flat_map(|s| (0..s.len()).map(move |i| s.row_at(i)))
    }

    /// Whether `col` carries a secondary index.
    pub fn has_index(&self, col: &str) -> bool {
        self.schema
            .columns
            .iter()
            .any(|c| c.indexed && c.name == col)
    }

    /// Global row ids matching `col == value` via the per-segment
    /// indexes, ascending. `None` when the column has no index. Segments
    /// whose zone map excludes `value` are skipped before the hash probe.
    pub fn index_rids(&self, col: &str, value: &Value) -> Option<Vec<usize>> {
        if !self.has_index(col) {
            return None;
        }
        let mut out = Vec::new();
        for seg in &self.segments {
            if !seg.zone_admits_eq(col, value) {
                continue;
            }
            if let Some(postings) = seg.indexes.get(col).and_then(|idx| idx.get(value)) {
                out.extend(postings.iter().map(|&i| seg.rid_at(i as usize)));
            }
        }
        // Clustered segments reorder rows, so postings are no longer
        // rid-ascending by construction.
        out.sort_unstable();
        Some(out)
    }

    /// Number of rows matching `col == value` via the index (0 without
    /// an index — callers check [`TableVersion::has_index`] first).
    pub fn index_len(&self, col: &str, value: &Value) -> usize {
        self.segments
            .iter()
            .filter(|seg| seg.zone_admits_eq(col, value))
            .filter_map(|seg| seg.indexes.get(col).and_then(|idx| idx.get(value)))
            .map(Vec::len)
            .sum()
    }

    /// The segments a scan under `predicates` must visit, by zone map:
    /// a segment is skipped when any predicate provably matches no row in
    /// it. Sound for conjunctions only (which is what [`crate::query::Query`]
    /// evaluates).
    pub fn pruned_segments<'a>(
        &'a self,
        predicates: &'a [&'a Predicate],
    ) -> impl Iterator<Item = &'a Arc<Segment>> + 'a {
        self.segments
            .iter()
            .filter(move |s| predicates.iter().all(|p| s.may_match(p)))
    }
}

/// Recovery cost accounting for the most recent [`Database::open`] —
/// how much state came from the checkpoint sidecar versus WAL replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Whether a checkpoint sidecar seeded the tables.
    pub from_checkpoint: bool,
    /// Rows loaded directly from the sidecar (no per-record replay).
    pub checkpoint_rows: usize,
    /// WAL frames decoded during replay (the physical tail cost).
    pub wal_records_replayed: usize,
    /// Committed rows applied from the WAL tail.
    pub rows_replayed: usize,
}

/// Summary of one completed [`Database::checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Epoch the sidecar snapshot reflects.
    pub epoch: u64,
    /// Highest committed transaction the sidecar covers.
    pub max_txn: u64,
    /// Rows serialized.
    pub rows: usize,
    /// Sidecar size in bytes (0 for in-memory databases, which compact
    /// the log without writing a sidecar).
    pub sidecar_bytes: u64,
    /// WAL size before truncation.
    pub wal_bytes_before: u64,
    /// WAL size after truncation (the uncovered tail).
    pub wal_bytes_after: u64,
}

struct DbInner {
    /// The published table versions. Swapped wholesale at commit /
    /// `ensure_table`, so [`Database::pin`] is one `Arc` clone.
    tables: Arc<HashMap<String, Arc<TableVersion>>>,
    wal: Wal,
    next_txn: u64,
    open_txn: Option<u64>,
    staged: Vec<(String, Vec<Value>)>,
    /// Count of applied commits; the staleness watermark for the change
    /// feed and materialized views.
    epoch: u64,
    /// Highest committed transaction id — the coverage bound a checkpoint
    /// records (an open transaction always has a higher id).
    last_committed_txn: u64,
    feed: Publisher,
    /// WAL-bytes threshold past which a commit spawns a background
    /// checkpoint (None = disabled, the store default; the kernel turns
    /// it on).
    auto_checkpoint: Option<u64>,
    /// Commit-layer compaction trigger (None = disabled, the store
    /// default; the kernel turns it on). Every `check_every_rows`
    /// appended rows, a background thread evaluates dead-row ratios and
    /// compacts tables past the policy thresholds.
    auto_compact: Option<CompactionTrigger>,
    /// Rows appended since the auto-compact trigger last fired.
    rows_since_compact_check: u64,
    /// Compaction passes completed by this handle.
    compactions: u64,
    /// Superseded rows dropped by compaction so far.
    rows_dropped: u64,
    /// Rows re-copied by commit-time tail coalescing so far — the
    /// amortization cost `with_appended` pays (a micro-bench asserts it
    /// stays O(N log N) across N tiny commits).
    rows_coalesced: u64,
    /// Checkpoints taken by this handle.
    checkpoints: u64,
    /// Epoch of the newest completed checkpoint.
    last_checkpoint_epoch: u64,
    /// What the last `open` cost (checkpoint rows vs WAL replay).
    recovery: RecoveryInfo,
    /// Whether this handle refuses mutations ([`Database::open_follower`]).
    read_only: bool,
    /// Follower tail cursor; `Some` exactly when `read_only` came from
    /// `open_follower`.
    tail: Option<TailState>,
}

/// A follower's cursor into the writer's log: where the next poll reads
/// from, which checkpoint the current table state was built on, and the
/// writer's not-yet-committed staged inserts carried across polls.
struct TailState {
    /// The writer's WAL path (the follower holds no open handle on it).
    path: PathBuf,
    /// Byte offset of the first unread frame.
    offset: u64,
    /// Transactions at or below this are covered by the bootstrap
    /// sidecar and must not be re-applied.
    base_txn: u64,
    /// Identity of the sidecar the current state was bootstrapped from.
    /// A differing mark on disk means a checkpoint truncated the log:
    /// the offset is void and the follower re-bootstraps.
    sidecar: Option<SidecarMark>,
    /// Inserts whose commit marker has not been seen yet, by transaction.
    /// The writer appends staged rows immediately but they become visible
    /// only at the commit marker — a follower poll may see the inserts
    /// frames polls before the commit frame.
    staged: HashMap<u64, Vec<(String, Vec<Value>)>>,
}

/// What one [`Database::poll_tail`] call applied.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TailProgress {
    /// Committed transactions applied by this poll.
    pub committed_txns: usize,
    /// Rows made visible by this poll.
    pub rows_applied: usize,
    /// Whether the poll found the log truncated by a checkpoint and
    /// rebuilt the whole state from the new sidecar instead of applying
    /// incrementally.
    pub rebootstrapped: bool,
    /// The follower's epoch after the poll.
    pub epoch: u64,
}

/// An embedded relational database holding the FlorDB context tables.
///
/// Cloning shares the same underlying state (cheap `Arc` clone).
#[derive(Clone)]
pub struct Database {
    inner: Arc<RwLock<DbInner>>,
    /// Serializes whole checkpoints — and compactions, which share this
    /// mutex so a compaction's pointer swap never interleaves with a
    /// checkpoint's pin/serialize/truncate sequence. Two concurrent
    /// checkpoints could otherwise interleave so that a *stale* sidecar
    /// (pinned earlier) overwrites a newer one after the newer run
    /// already truncated the WAL — permanently losing the transactions in
    /// between.
    ckpt_serial: Arc<parking_lot::Mutex<()>>,
    /// Single-flight guard for the auto-checkpoint thread.
    auto_ckpt_running: Arc<std::sync::atomic::AtomicBool>,
    /// Single-flight guard for the auto-compaction thread.
    auto_compact_running: Arc<std::sync::atomic::AtomicBool>,
    /// Pre-bound metric handles (one registry per database). Lives
    /// outside the `RwLock`: recording never contends with the writer.
    metrics: Arc<StoreMetrics>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.read();
        f.debug_struct("Database")
            .field("tables", &g.tables.len())
            .field("epoch", &g.epoch)
            .finish_non_exhaustive()
    }
}

/// An epoch-stamped, immutable view of every table: the unit of
/// isolation. Obtained from [`Database::pin`] in O(1); all reads against
/// it are lock-free and stable — concurrent commits publish new table
/// versions without touching the pinned segments.
///
/// Cloning a snapshot is one `Arc` clone.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    tables: Arc<HashMap<String, Arc<TableVersion>>>,
    /// Query-path accounting flows into the owning database's registry.
    metrics: Arc<StoreMetrics>,
}

impl Snapshot {
    /// The commit count this snapshot reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    pub(crate) fn table(&self, name: &str) -> StoreResult<&TableVersion> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Number of committed rows in a table.
    pub fn row_count(&self, table: &str) -> StoreResult<usize> {
        Ok(self.table(table)?.total_rows)
    }

    /// Full scan of committed rows as a [`DataFrame`]. Columnar fast
    /// path: each segment column appends straight into the output
    /// column, with no per-row `Vec` materialization.
    pub fn scan(&self, table: &str) -> StoreResult<DataFrame> {
        let t = self.table(table)?;
        let mut out: Vec<Vec<Value>> =
            vec![Vec::with_capacity(t.total_rows); t.schema.columns.len()];
        for seg in &t.segments {
            for (col, vals) in seg.cols.iter().zip(&mut out) {
                col.extend_all(vals);
            }
        }
        let cols = t
            .schema
            .columns
            .iter()
            .zip(out)
            .map(|(def, vals)| Column::new(def.name.as_str(), vals))
            .collect();
        // audit: allow(panic) — the columns are built from one schema in
        // one pass: equal lengths and unique names by construction.
        Ok(DataFrame::from_columns(cols).expect("schema columns are uniform"))
    }

    /// Approximate resident heap bytes of `table`'s sealed column data —
    /// what dictionary encoding shrinks on string-heavy tables.
    pub fn resident_bytes(&self, table: &str) -> StoreResult<usize> {
        Ok(self
            .table(table)?
            .segments
            .iter()
            .map(|s| s.mem_bytes())
            .sum())
    }

    /// Point lookup via a secondary index if one exists on `col`; falls
    /// back to a filtered scan otherwise.
    pub fn lookup(&self, table: &str, col: &str, value: &Value) -> StoreResult<DataFrame> {
        let t = self.table(table)?;
        if let Some(rids) = t.index_rids(col, value) {
            return Ok(rows_to_frame(
                &t.schema,
                rids.iter().filter_map(|&r| t.row(r)),
            ));
        }
        let pos = t
            .schema
            .col_index(col)
            .ok_or_else(|| StoreError::Invalid(format!("no column {col}")))?;
        Ok(rows_to_frame(
            &t.schema,
            t.iter_rows().filter(|r| r[pos] == *value),
        ))
    }

    /// Multi-value point lookup: rows where `col` equals any of `values`,
    /// in insertion order (the order a full scan yields), via the
    /// secondary indexes when they exist.
    pub fn lookup_many(&self, table: &str, col: &str, values: &[Value]) -> StoreResult<DataFrame> {
        let t = self.table(table)?;
        if t.has_index(col) {
            let mut rids: Vec<usize> = values
                .iter()
                .flat_map(|v| t.index_rids(col, v).unwrap_or_default())
                .collect();
            rids.sort_unstable();
            rids.dedup();
            return Ok(rows_to_frame(
                &t.schema,
                rids.iter().filter_map(|&r| t.row(r)),
            ));
        }
        let pos = t
            .schema
            .col_index(col)
            .ok_or_else(|| StoreError::Invalid(format!("no column {col}")))?;
        Ok(rows_to_frame(
            &t.schema,
            t.iter_rows().filter(|r| values.contains(&r[pos])),
        ))
    }

    /// Execute a [`crate::query::Query`] against this snapshot.
    pub fn query(&self, q: &crate::query::Query) -> StoreResult<DataFrame> {
        let (df, ex) = q.run_traced(self.table(q.table_name())?)?;
        self.metrics.record_query(&ex);
        Ok(df)
    }

    /// Execute a [`crate::query::Query`] and return the frame together
    /// with its [`QueryExplain`] — access path, zone-map pruning, rows
    /// examined vs returned, and wall-clock timing. The query really
    /// runs (the counts are measurements, not estimates) and its
    /// accounting feeds the `store.query.*` counters like any other run.
    pub fn explain(&self, q: &crate::query::Query) -> StoreResult<(DataFrame, QueryExplain)> {
        let start = Instant::now();
        let (df, mut ex) = q.run_traced(self.table(q.table_name())?)?;
        ex.elapsed_nanos = start.elapsed().as_nanos() as u64;
        self.metrics.record_query(&ex);
        Ok((df, ex))
    }

    /// Zone-map pruning accounting for a full scan of `table` under the
    /// conjunction of `predicates`: `(segments that must be visited,
    /// total segments)`. What the compaction bench and property tests
    /// assert pruning ratios on.
    pub fn zone_prune_stats(
        &self,
        table: &str,
        predicates: &[Predicate],
    ) -> StoreResult<(usize, usize)> {
        let t = self.table(table)?;
        let refs: Vec<&Predicate> = predicates.iter().collect();
        Ok((t.pruned_segments(&refs).count(), t.segments.len()))
    }

    /// Live (retained) rows in `table` — what a full scan touches. After
    /// a compaction of a latest-wins table this is smaller than the rid
    /// high watermark.
    pub fn live_rows(&self, table: &str) -> StoreResult<usize> {
        Ok(self.table(table)?.total_rows)
    }

    /// Total committed rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.total_rows).sum()
    }

    /// The raw committed rows of every table, in scan order — what a
    /// checkpoint serializes.
    fn to_checkpoint(&self, max_txn: u64) -> CheckpointData {
        let mut tables: Vec<(String, Vec<Vec<Value>>)> = self
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), t.iter_rows().collect()))
            .collect();
        tables.sort_by(|(a, _), (b, _)| a.cmp(b));
        CheckpointData {
            epoch: self.epoch,
            max_txn,
            tables,
        }
    }
}

/// Statistics snapshot for monitoring and benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbStats {
    /// Committed rows per table.
    pub rows_per_table: Vec<(String, usize)>,
    /// Total committed rows.
    pub total_rows: usize,
    /// Sealed segments across all tables.
    pub segments: usize,
    /// Records appended to the WAL so far.
    pub wal_records: u64,
    /// Rows staged in the open transaction.
    pub staged_rows: usize,
    /// Commits applied so far: the staleness watermark that change-feed
    /// batches and materialized views are stamped with.
    pub wal_epoch: u64,
    /// Bytes currently in the WAL (including any recovered prefix for
    /// file-backed logs) — the physical log offset. Shrinks when a
    /// checkpoint truncates the log.
    pub wal_offset_bytes: u64,
    /// Checkpoints completed by this handle.
    pub checkpoints: u64,
    /// Epoch of the newest completed checkpoint (0 if none).
    pub last_checkpoint_epoch: u64,
    /// Compaction passes completed by this handle.
    pub compactions: u64,
    /// Superseded rows dropped by compaction so far.
    pub rows_dropped: u64,
    /// Rows re-copied by commit-time tail coalescing so far (the
    /// amortized cost of keeping segment counts logarithmic).
    pub rows_coalesced: u64,
    /// Live change-feed subscriptions.
    pub subscribers: usize,
}

/// Seal recovered `rows` into `tables[name]` in bounded chunks, not one
/// monolith per table: zone-map pruning needs multiple segments to
/// prune, and a single history-wide segment's min/max covers everything.
/// The chunks are >= [`SEGMENT_COALESCE_ROWS`], so commit-time folding
/// never re-merges them.
fn append_chunked(
    tables: &mut HashMap<String, Arc<TableVersion>>,
    name: &str,
    rows: Vec<Vec<Value>>,
) {
    if let Some(t) = tables.get_mut(name) {
        let mut rows = rows;
        while !rows.is_empty() {
            let rest = rows.split_off(rows.len().min(RECOVERED_SEGMENT_ROWS));
            *t = Arc::new(t.with_appended(rows).0);
            rows = rest;
        }
    }
}

/// Apply one committed transaction's rows to `tables`, exactly the way
/// [`Database::commit`] does: grouped per table in insertion order, each
/// table publishing a successor version via `with_appended`. Returns the
/// rows applied (rows of unknown tables are skipped, like recovery).
fn apply_commit_rows(
    tables: &mut HashMap<String, Arc<TableVersion>>,
    rows: Vec<(String, Vec<Value>)>,
) -> usize {
    let mut per_table: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
    for (tname, row) in rows {
        match per_table.iter_mut().find(|(t, _)| *t == tname) {
            Some((_, rs)) => rs.push(row),
            None => per_table.push((tname, vec![row])),
        }
    }
    let mut applied = 0;
    for (tname, rows) in per_table {
        if let Some(t) = tables.get_mut(&tname) {
            applied += rows.len();
            *t = Arc::new(t.with_appended(rows).0);
        }
    }
    applied
}

/// Everything a follower bootstrap produces: fresh table versions, the
/// watermarks, and the tail cursor to continue polling from.
struct FollowerBoot {
    tables: HashMap<String, Arc<TableVersion>>,
    epoch: u64,
    last_committed_txn: u64,
    tail: TailState,
    recovery: RecoveryInfo,
}

/// Build follower state from the on-disk artifacts at `path`: load the
/// checkpoint sidecar, then stream every complete WAL frame from byte 0,
/// applying committed transactions and *retaining* uncommitted staged
/// inserts in the tail cursor (they may commit in a later poll).
///
/// The read is guarded by a peek–read–peek protocol on the sidecar
/// header: the sidecar is replaced (atomic rename) *before* the WAL is
/// truncated, so if the mark is identical before and after the log read,
/// the log bytes we read belong to that sidecar's world — no checkpoint
/// truncation completed mid-read. A changed mark retries (bounded).
fn follower_bootstrap(path: &Path, schemas: Vec<Arc<TableSchema>>) -> StoreResult<FollowerBoot> {
    for _attempt in 0..8 {
        let mark_before = checkpoint::peek_sidecar(path)?;
        let ckpt = checkpoint::load_sidecar(path)?;
        let chunk = wal::tail_from(path, 0)?;
        if checkpoint::peek_sidecar(path)? != mark_before {
            continue;
        }
        let TailChunk::Frames {
            records,
            new_offset,
        } = chunk
        else {
            // `Truncated` at offset 0 means unparseable bytes at the log
            // head — a rewrite racing this read. Retry.
            continue;
        };
        let mut tables: HashMap<String, Arc<TableVersion>> = schemas
            .iter()
            .map(|s| (s.name.clone(), Arc::new(TableVersion::empty(Arc::clone(s)))))
            .collect();
        let mut recovery = RecoveryInfo::default();
        let (base_epoch, base_txn) = match ckpt {
            Some(data) => {
                recovery.from_checkpoint = true;
                let (epoch, max_txn) = (data.epoch, data.max_txn);
                for (name, rows) in data.tables {
                    recovery.checkpoint_rows += rows.len();
                    append_chunked(&mut tables, &name, rows);
                }
                (epoch, max_txn)
            }
            None => (0, 0),
        };
        let mut staged: HashMap<u64, Vec<(String, Vec<Value>)>> = HashMap::new();
        let mut epoch = base_epoch;
        let mut last_committed_txn = base_txn;
        for rec in records {
            recovery.wal_records_replayed += 1;
            match rec {
                WalRecord::Insert { txn, table, row } => {
                    if txn <= base_txn {
                        continue;
                    }
                    staged.entry(txn).or_default().push((table, row));
                }
                WalRecord::Commit { txn } => {
                    if txn <= base_txn {
                        continue;
                    }
                    let rows = staged.remove(&txn).unwrap_or_default();
                    recovery.rows_replayed += apply_commit_rows(&mut tables, rows);
                    epoch += 1;
                    last_committed_txn = last_committed_txn.max(txn);
                }
            }
        }
        return Ok(FollowerBoot {
            tables,
            epoch,
            last_committed_txn,
            tail: TailState {
                path: path.to_path_buf(),
                offset: new_offset,
                base_txn,
                sidecar: mark_before,
                staged,
            },
            recovery,
        });
    }
    Err(StoreError::Invalid(
        "follower bootstrap kept racing checkpoint truncation".into(),
    ))
}

impl Database {
    /// In-memory database with the given schemas.
    pub fn in_memory(schemas: Vec<TableSchema>) -> Database {
        Database::from_parts(schemas, Wal::in_memory(), None)
            // audit: allow(panic) — recovery over an empty in-memory log
            // has nothing to decode and cannot fail.
            .expect("an empty in-memory log cannot fail recovery")
    }

    /// File-backed database: loads the checkpoint sidecar if one exists,
    /// then replays the WAL tail (committed transactions only) — O(live
    /// data), not O(history) — and then accepts new appends.
    pub fn open(path: &Path, schemas: Vec<TableSchema>) -> StoreResult<Database> {
        let wal = Wal::open(path)?;
        let ckpt = checkpoint::load_sidecar(path)?;
        Database::from_parts(schemas, wal, ckpt)
    }

    /// Open a **read-only follower** of the database whose WAL lives at
    /// `path` — typically one a *different process* is actively writing.
    /// Bootstraps from the checkpoint sidecar plus the committed WAL
    /// tail, exactly like [`Database::open`], but:
    ///
    /// - every mutating entry point returns [`StoreError::ReadOnly`];
    /// - no background thread is ever spawned (auto-checkpoint and
    ///   auto-compaction stay permanently disabled);
    /// - the handle keeps a byte cursor into the live log, and
    ///   [`Database::poll_tail`] applies newly committed transactions
    ///   incrementally — snapshots, queries, and change-feed
    ///   subscriptions then behave exactly as on the writer, with
    ///   staleness bounded by the caller's poll interval.
    ///
    /// The follower holds no open handle on the writer's files: each
    /// poll re-opens the log read-only, so checkpoint truncation by the
    /// writer is always detected (via the sidecar identity) and answered
    /// with a clean re-bootstrap, never a torn read.
    pub fn open_follower(path: &Path, schemas: Vec<TableSchema>) -> StoreResult<Database> {
        let schemas: Vec<Arc<TableSchema>> = schemas.into_iter().map(Arc::new).collect();
        let boot = follower_bootstrap(path, schemas)?;
        let metrics = Arc::new(StoreMetrics::new(MetricsRegistry::new()));
        Ok(Database {
            ckpt_serial: Arc::new(parking_lot::Mutex::new(())),
            auto_ckpt_running: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            auto_compact_running: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            inner: Arc::new(RwLock::new(DbInner {
                tables: Arc::new(boot.tables),
                // Followers never allocate transaction ids; keep the
                // counter past everything seen for sanity's sake.
                next_txn: boot.last_committed_txn + 1,
                open_txn: None,
                staged: Vec::new(),
                epoch: boot.epoch,
                last_committed_txn: boot.last_committed_txn,
                feed: Publisher::new(metrics.feed()),
                auto_checkpoint: None,
                auto_compact: None,
                rows_since_compact_check: 0,
                compactions: 0,
                rows_dropped: 0,
                rows_coalesced: 0,
                checkpoints: 0,
                last_checkpoint_epoch: if boot.recovery.from_checkpoint {
                    boot.tail.sidecar.map(|m| m.epoch).unwrap_or(0)
                } else {
                    0
                },
                recovery: boot.recovery,
                read_only: true,
                tail: Some(boot.tail),
                // No append handle on the writer's log: the follower
                // reads it per poll and never writes.
                wal: Wal::in_memory(),
            })),
            metrics,
        })
    }

    /// Whether this handle is a read-only follower: mutations return
    /// [`StoreError::ReadOnly`] and state advances only via
    /// [`Database::poll_tail`].
    pub fn is_read_only(&self) -> bool {
        self.inner.read().read_only
    }

    /// One follower poll: read the writer's log from the saved byte
    /// cursor and apply every newly committed transaction — sealing
    /// segments, bumping the epoch, and publishing change-feed batches
    /// exactly like a local [`Database::commit`] would. Staged inserts
    /// whose commit marker has not arrived yet are carried to the next
    /// poll (visibility stays commit-gated, same as recovery).
    ///
    /// If the writer checkpointed meanwhile (the sidecar identity
    /// changed, or the log no longer parses at the cursor), the follower
    /// discards its cursor and re-bootstraps wholesale from the new
    /// sidecar — `rebootstrapped` in the returned [`TailProgress`]. The
    /// epoch still only moves forward: the rebuilt state reflects at
    /// least every commit the follower had already applied.
    ///
    /// Errors with [`StoreError::Invalid`] on a non-follower handle.
    pub fn poll_tail(&self) -> StoreResult<TailProgress> {
        let (path, mark, offset) = {
            let g = self.inner.read();
            let Some(t) = &g.tail else {
                return Err(StoreError::Invalid(
                    "poll_tail on a non-follower database".into(),
                ));
            };
            (t.path.clone(), t.sidecar, t.offset)
        };
        // Peek–read–peek: the sidecar is replaced before the WAL is
        // truncated, so an unchanged mark on both sides of the read
        // proves no truncation completed while we were reading — the
        // frames are safe to apply at our cursor.
        if checkpoint::peek_sidecar(&path)? != mark {
            return self.follower_rebootstrap();
        }
        let chunk = wal::tail_from(&path, offset)?;
        if checkpoint::peek_sidecar(&path)? != mark {
            return self.follower_rebootstrap();
        }
        let TailChunk::Frames {
            records,
            new_offset,
        } = chunk
        else {
            return self.follower_rebootstrap();
        };
        let mut g = self.inner.write();
        // audit: allow(panic) — the follower check at fn entry returned
        // unless `tail` was Some; no other path clears it meanwhile.
        let mut tail = g.tail.take().expect("follower state checked above");
        if tail.offset != offset {
            // A concurrent poll already advanced the cursor; nothing to do.
            let epoch = g.epoch;
            g.tail = Some(tail);
            return Ok(TailProgress {
                epoch,
                ..TailProgress::default()
            });
        }
        let mut progress = TailProgress::default();
        let publishing = g.feed.live() > 0;
        let mut stale = false;
        for rec in records {
            match rec {
                WalRecord::Insert { txn, table, row } => {
                    if txn <= tail.base_txn || txn <= g.last_committed_txn {
                        // Insert frames for an already-applied transaction
                        // cannot appear past our cursor in an append-only
                        // log; treat them as a missed rewrite.
                        stale = stale || (txn > tail.base_txn && txn <= g.last_committed_txn);
                        continue;
                    }
                    tail.staged.entry(txn).or_default().push((table, row));
                }
                WalRecord::Commit { txn } => {
                    if txn <= tail.base_txn {
                        continue;
                    }
                    if txn <= g.last_committed_txn {
                        // A commit id at or below what we already applied
                        // cannot come from the log we bootstrapped: the
                        // log was replaced under us in a way the mark
                        // checks missed. Rebuild rather than double-apply.
                        stale = true;
                        continue;
                    }
                    let rows = tail.staged.remove(&txn).unwrap_or_default();
                    let deltas: Vec<RowDelta> = if publishing {
                        rows.iter()
                            .map(|(table, row)| RowDelta {
                                table: table.clone(),
                                row: row.clone(),
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let tables = Arc::make_mut(&mut g.tables);
                    progress.rows_applied += apply_commit_rows(tables, rows);
                    progress.committed_txns += 1;
                    g.epoch += 1;
                    g.last_committed_txn = txn;
                    if publishing {
                        let batch = CommitBatch {
                            epoch: g.epoch,
                            txn,
                            span: 1,
                            deltas: Arc::new(deltas),
                        };
                        g.feed.publish(batch);
                    }
                }
            }
        }
        tail.offset = new_offset;
        progress.epoch = g.epoch;
        g.tail = Some(tail);
        drop(g);
        if stale {
            return self.follower_rebootstrap();
        }
        Ok(progress)
    }

    /// Rebuild the whole follower state from the sidecar + log currently
    /// on disk, replacing tables, watermarks, and the tail cursor. The
    /// epoch of the rebuilt state is at least the old epoch: the new
    /// sidecar covers a superset of the commits the follower had applied.
    fn follower_rebootstrap(&self) -> StoreResult<TailProgress> {
        let (path, schemas) = {
            let g = self.inner.read();
            let Some(t) = &g.tail else {
                return Err(StoreError::Invalid(
                    "poll_tail on a non-follower database".into(),
                ));
            };
            (
                t.path.clone(),
                g.tables
                    .values()
                    .map(|t| Arc::clone(&t.schema))
                    .collect::<Vec<_>>(),
            )
        };
        let boot = follower_bootstrap(&path, schemas)?;
        let mut g = self.inner.write();
        g.tables = Arc::new(boot.tables);
        g.epoch = g.epoch.max(boot.epoch);
        g.last_committed_txn = boot.last_committed_txn;
        g.next_txn = boot.last_committed_txn + 1;
        g.last_checkpoint_epoch = boot.tail.sidecar.map(|m| m.epoch).unwrap_or(0);
        g.recovery = boot.recovery;
        g.tail = Some(boot.tail);
        let epoch = g.epoch;
        drop(g);
        self.metrics.registry.event_at(
            flor_obs::Level::Warn,
            "follower",
            format!("rebootstrapped at epoch {epoch}"),
        );
        Ok(TailProgress {
            committed_txns: 0,
            rows_applied: 0,
            rebootstrapped: true,
            epoch,
        })
    }

    /// Estimate how far this follower trails the writer: the number of
    /// committed transactions already durable in the writer's log but
    /// not yet applied here. `Ok(None)` on a non-follower handle, and
    /// also when the writer checkpointed since the last poll (the log
    /// was truncated under our cursor — the next [`Database::poll_tail`]
    /// re-bootstraps and the estimate becomes meaningful again).
    ///
    /// Read-only and racy by design: the log is peeked without touching
    /// follower state, so this is safe to call from a health probe while
    /// the poll thread runs.
    pub fn follower_lag(&self) -> StoreResult<Option<u64>> {
        let (path, offset, base_txn, last_committed) = {
            let g = self.inner.read();
            let Some(t) = &g.tail else {
                return Ok(None);
            };
            (t.path.clone(), t.offset, t.base_txn, g.last_committed_txn)
        };
        match wal::tail_from(&path, offset)? {
            TailChunk::Truncated => Ok(None),
            TailChunk::Frames { records, .. } => {
                let lag = records
                    .iter()
                    .filter(
                        |r| matches!(r, WalRecord::Commit { txn } if *txn > base_txn && *txn > last_committed),
                    )
                    .count();
                Ok(Some(lag as u64))
            }
        }
    }

    fn from_parts(
        schemas: Vec<TableSchema>,
        wal: Wal,
        ckpt: Option<CheckpointData>,
    ) -> StoreResult<Database> {
        let mut tables: HashMap<String, Arc<TableVersion>> = schemas
            .into_iter()
            .map(|s| {
                let schema = Arc::new(s);
                (schema.name.clone(), Arc::new(TableVersion::empty(schema)))
            })
            .collect();
        let mut recovery_info = RecoveryInfo::default();
        let (base_epoch, base_txn) = match ckpt {
            Some(data) => {
                recovery_info.from_checkpoint = true;
                // Move the decoded rows straight into segments — the
                // sidecar decode is the only copy on the reopen path.
                for (name, rows) in data.tables {
                    recovery_info.checkpoint_rows += rows.len();
                    append_chunked(&mut tables, &name, rows);
                }
                (data.epoch, data.max_txn)
            }
            None => (0, 0),
        };
        let recovery = wal.recover(base_txn)?;
        recovery_info.wal_records_replayed = recovery.records_replayed;
        recovery_info.rows_replayed = recovery.committed.len();
        // Group the replayed tail per table, preserving log order.
        let mut per_table: HashMap<String, Vec<Vec<Value>>> = HashMap::new();
        for (tname, row) in recovery.committed {
            per_table.entry(tname).or_default().push(row);
        }
        for (tname, rows) in per_table {
            append_chunked(&mut tables, &tname, rows);
        }
        // Uncommitted ids from a crashed process never commit later, so
        // the checkpoint coverage bound may safely advance past them.
        let last_committed_txn = recovery.max_txn.max(base_txn);
        let metrics = Arc::new(StoreMetrics::new(MetricsRegistry::new()));
        Ok(Database {
            ckpt_serial: Arc::new(parking_lot::Mutex::new(())),
            auto_ckpt_running: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            auto_compact_running: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            inner: Arc::new(RwLock::new(DbInner {
                tables: Arc::new(tables),
                next_txn: last_committed_txn + 1,
                open_txn: None,
                staged: Vec::new(),
                epoch: base_epoch + recovery.committed_txns as u64,
                last_committed_txn,
                feed: Publisher::new(metrics.feed()),
                auto_checkpoint: None,
                auto_compact: None,
                rows_since_compact_check: 0,
                compactions: 0,
                rows_dropped: 0,
                rows_coalesced: 0,
                checkpoints: 0,
                last_checkpoint_epoch: if recovery_info.from_checkpoint {
                    base_epoch
                } else {
                    0
                },
                recovery: recovery_info,
                read_only: false,
                tail: None,
                wal,
            })),
            metrics,
        })
    }

    /// The database's [`MetricsRegistry`]: live counters, latency
    /// histograms and the event ring for every layer wired through this
    /// handle (see the `flor-obs` crate docs for the name registry).
    /// Snapshot it with [`MetricsRegistry::snapshot`]; disable recording
    /// entirely with [`MetricsRegistry::set_enabled`].
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.metrics.registry.clone()
    }

    /// Register an additional table (no-op if it already exists).
    pub fn ensure_table(&self, schema: TableSchema) {
        let mut g = self.inner.write();
        if g.tables.contains_key(&schema.name) {
            return;
        }
        let tables = Arc::make_mut(&mut g.tables);
        let schema = Arc::new(schema);
        tables.insert(schema.name.clone(), Arc::new(TableVersion::empty(schema)));
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.pin().table_names()
    }

    /// Pin the current committed state: an epoch-stamped [`Snapshot`]
    /// sharing the sealed segments by `Arc`. O(1) — the lock is held for
    /// one pointer clone — and every read against the snapshot afterwards
    /// is lock-free.
    pub fn pin(&self) -> Snapshot {
        let g = self.inner.read();
        Snapshot {
            epoch: g.epoch,
            tables: Arc::clone(&g.tables),
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// Pin a [`Snapshot`] and take a [`DbStats`] sample under **one**
    /// read-lock acquisition, so the two observe the same committed
    /// state: `stats.wal_epoch == snapshot.epoch()`, and counters like
    /// `staged_rows`/`rows_coalesced` cannot drift against the pinned
    /// tables the way two separate calls can when a commit lands between
    /// them.
    pub fn pin_with_stats(&self) -> (Snapshot, DbStats) {
        let g = self.inner.read();
        (
            Snapshot {
                epoch: g.epoch,
                tables: Arc::clone(&g.tables),
                metrics: Arc::clone(&self.metrics),
            },
            g.stats(),
        )
    }

    /// Stage a row into the open transaction (starting one if needed) and
    /// append it to the WAL. Invisible to readers until [`Database::commit`].
    pub fn insert(&self, table: &str, row: Vec<Value>) -> StoreResult<()> {
        let mut g = self.inner.write();
        if g.read_only {
            return Err(StoreError::ReadOnly);
        }
        let schema = Arc::clone(
            &g.tables
                .get(table)
                .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))?
                .schema,
        );
        schema.validate(&row).map_err(StoreError::Invalid)?;
        let txn = match g.open_txn {
            Some(t) => t,
            None => {
                let t = g.next_txn;
                g.next_txn += 1;
                g.open_txn = Some(t);
                t
            }
        };
        {
            let m = &self.metrics;
            let _append = Span::enter(&m.registry, &m.wal_append_nanos);
            // audit: allow(hold-across-io) — WAL append under the commit
            // lock is the durability contract: staged rows and their log
            // records must advance in lockstep or recovery diverges.
            g.wal.append(&WalRecord::Insert {
                txn,
                table: table.to_string(),
                row: row.clone(),
            })?;
        }
        g.staged.push((table.to_string(), row));
        Ok(())
    }

    /// Commit the open transaction: write the commit marker, fsync, seal
    /// the staged rows into new table segments, and publish the new table
    /// versions. Returns the number of rows made visible.
    ///
    /// Publication is a pointer swap: snapshots pinned before the commit
    /// keep reading the old segment lists untouched.
    pub fn commit(&self) -> StoreResult<usize> {
        let mut g = self.inner.write();
        if g.read_only {
            return Err(StoreError::ReadOnly);
        }
        let Some(txn) = g.open_txn.take() else {
            return Ok(0);
        };
        let m = Arc::clone(&self.metrics);
        let commit_span = Span::enter(&m.registry, &m.commit_nanos);
        {
            let _append = Span::enter(&m.registry, &m.wal_append_nanos);
            // audit: allow(hold-across-io) — the commit marker must hit
            // the log before the version pointer swap becomes visible;
            // releasing the commit lock in between would let a second
            // writer interleave its records into our transaction.
            g.wal.append(&WalRecord::Commit { txn })?;
        }
        {
            let _fsync = Span::enter(&m.registry, &m.wal_fsync_nanos);
            // audit: allow(hold-across-io) — fsync-before-publish under
            // the commit lock is the group-commit durability point; see
            // ROADMAP "commit protocol". Readers never take this lock.
            g.wal.sync()?;
        }
        let staged = std::mem::take(&mut g.staged);
        let n = staged.len();
        // Only clone rows into a feed batch when someone is listening;
        // with no subscribers the commit path stays delta-free.
        let publishing = g.feed.live() > 0;
        let mut deltas = Vec::with_capacity(if publishing { n } else { 0 });
        // Group per table, preserving insertion order.
        let mut per_table: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        for (tname, row) in staged {
            if publishing {
                deltas.push(RowDelta {
                    table: tname.clone(),
                    row: row.clone(),
                });
            }
            match per_table.iter_mut().find(|(t, _)| *t == tname) {
                Some((_, rows)) => rows.push(row),
                None => per_table.push((tname, vec![row])),
            }
        }
        let tables = Arc::make_mut(&mut g.tables);
        let mut coalesced = 0u64;
        for (tname, rows) in per_table {
            if let Some(t) = tables.get_mut(&tname) {
                let (next, copied) = t.with_appended(rows);
                *t = Arc::new(next);
                coalesced += copied;
            }
        }
        g.rows_coalesced += coalesced;
        g.epoch += 1;
        g.last_committed_txn = txn;
        if publishing {
            let batch = CommitBatch {
                epoch: g.epoch,
                txn,
                span: 1,
                deltas: Arc::new(deltas),
            };
            g.feed.publish(batch);
        }
        if m.registry.enabled() {
            m.commit_rows.add(n as u64);
            if coalesced > 0 {
                m.rows_coalesced.add(coalesced);
            }
        }
        // The commit latency sample ends here: trigger evaluation and
        // background-thread spawning below are not commit work.
        drop(commit_span);
        // Auto-checkpoint and auto-compaction live here, at the store
        // commit layer, so every writer trips them — including background
        // jobs, whose per-unit transactions never pass through the
        // kernel's commit API.
        let trigger = g
            .auto_checkpoint
            .is_some_and(|threshold| g.wal.len_bytes() >= threshold);
        g.rows_since_compact_check += n as u64;
        let compact_policy = match &g.auto_compact {
            Some(t) if g.rows_since_compact_check >= t.check_every_rows => Some(t.policy.clone()),
            _ => None,
        };
        if compact_policy.is_some() {
            g.rows_since_compact_check = 0;
        }
        drop(g);
        if trigger
            && !self
                .auto_ckpt_running
                // audit: ordering — single-flight try-lock on a cold
                // path (once per threshold crossing); SeqCst keeps the
                // claim/release pair trivially correct.
                .swap(true, std::sync::atomic::Ordering::SeqCst)
        {
            let db = self.clone();
            std::thread::spawn(move || {
                let _ = db.checkpoint();
                db.auto_ckpt_running
                    // audit: ordering — releases the single-flight slot;
                    // the checkpoint's own locks did the real publishing.
                    .store(false, std::sync::atomic::Ordering::SeqCst);
            });
        }
        if let Some(policy) = compact_policy {
            if !self
                .auto_compact_running
                // audit: ordering — same single-flight claim as the
                // auto-checkpoint latch above.
                .swap(true, std::sync::atomic::Ordering::SeqCst)
            {
                let db = self.clone();
                std::thread::spawn(move || {
                    let _ = db.compact_with(&policy);
                    db.auto_compact_running
                        // audit: ordering — slot release; compaction's
                        // own locks published its results.
                        .store(false, std::sync::atomic::Ordering::SeqCst);
                });
            }
        }
        Ok(n)
    }

    /// Enable (or disable, with `None`) auto-checkpointing: any commit
    /// that leaves the WAL at or past `threshold` bytes spawns one
    /// background [`Database::checkpoint`] (single-flight; checkpoints
    /// are serialized regardless).
    pub fn set_auto_checkpoint(&self, threshold: Option<u64>) {
        let mut g = self.inner.write();
        if g.read_only {
            // Followers never commit, so the trigger could never fire —
            // keep it structurally disabled rather than latently armed.
            return;
        }
        g.auto_checkpoint = threshold;
    }

    /// Enable (or disable, with `None`) commit-layer auto-compaction:
    /// every `trigger.check_every_rows` appended rows, one background
    /// [`Database::compact_with`] runs under `trigger.policy`
    /// (single-flight; compactions are serialized against checkpoints
    /// regardless). The commit path itself only bumps a counter — the
    /// dead-row analysis happens on the background thread.
    pub fn set_auto_compact(&self, trigger: Option<CompactionTrigger>) {
        let mut g = self.inner.write();
        if g.read_only {
            return;
        }
        g.auto_compact = trigger;
    }

    /// Compact every table under the default [`CompactionPolicy`]: merge
    /// runs of cold sealed segments and drop every row superseded under
    /// the table's declared [`crate::schema::LatestWins`] policy.
    pub fn compact(&self) -> StoreResult<CompactionStats> {
        self.compact_with(&CompactionPolicy::default())
    }

    /// Compact every table under `policy`. Runs in three phases, like a
    /// checkpoint: pin the current table versions (O(1) under the read
    /// lock), plan and build replacement segments with **no lock held**,
    /// then publish each table's successor version by pointer swap under
    /// the write lock. The swap validates — by pointer identity — that
    /// the planned segments are still the table's segments; a table whose
    /// tail a concurrent commit folded meanwhile is re-planned (bounded
    /// retries), so the writer is never blocked by the rewrite work.
    ///
    /// Snapshots pinned before the swap keep re-scanning their original
    /// segments byte-identically; the epoch does not move and nothing is
    /// published to the change feed — for every reader that folds
    /// latest-wins tables by their declared policy (all of them do),
    /// compaction is invisible except for speed.
    pub fn compact_with(&self, policy: &CompactionPolicy) -> StoreResult<CompactionStats> {
        if self.inner.read().read_only {
            // A follower's segments are replaced wholesale by tail
            // application and rebootstraps; compacting them here would
            // race poll_tail for no benefit.
            return Err(StoreError::ReadOnly);
        }
        // Serialized against checkpoints (and other compactions): the
        // shared mutex means a checkpoint observes either the fully
        // pre-compaction or fully post-compaction state.
        let _serial = self.ckpt_serial.lock();
        let _pass = Span::enter(&self.metrics.registry, &self.metrics.compaction_nanos);
        let mut stats = CompactionStats {
            segments_before: {
                let g = self.inner.read();
                g.tables.values().map(|t| t.segments.len()).sum()
            },
            ..CompactionStats::default()
        };
        // `None` = every table is still a candidate; after a raced swap,
        // only the raced tables are re-planned.
        let mut remaining: Option<Vec<String>> = None;
        for _attempt in 0..3 {
            let pinned = Arc::clone(&self.inner.read().tables);
            let mut plans = Vec::new();
            for (name, t) in pinned.iter() {
                if remaining.as_ref().is_some_and(|r| !r.contains(name)) {
                    continue;
                }
                if let Some(plan) = compact::plan_table(t, policy) {
                    plans.push((name.clone(), plan));
                }
            }
            if plans.is_empty() {
                break;
            }
            let mut raced = Vec::new();
            {
                let mut g = self.inner.write();
                let tables = Arc::make_mut(&mut g.tables);
                for (name, plan) in plans {
                    let Some(cur) = tables.get_mut(&name) else {
                        continue;
                    };
                    let stable = cur.segments.len() == plan.source.len()
                        && plan
                            .source
                            .iter()
                            .zip(cur.segments.iter())
                            .all(|(a, b)| Arc::ptr_eq(a, b));
                    if !stable {
                        raced.push(name);
                        continue;
                    }
                    let total_rows = plan.new_segments.iter().map(|s| s.len()).sum();
                    *cur = Arc::new(TableVersion {
                        schema: Arc::clone(&cur.schema),
                        segments: plan.new_segments,
                        total_rows,
                        next_rid: cur.next_rid,
                    });
                    stats.tables_compacted += 1;
                    stats.runs_merged += plan.runs_merged;
                    stats.rows_dropped += plan.rows_dropped;
                    stats.rows_rewritten += plan.rows_rewritten;
                }
            }
            if raced.is_empty() {
                break;
            }
            remaining = Some(raced);
        }
        let mut g = self.inner.write();
        stats.segments_after = g.tables.values().map(|t| t.segments.len()).sum();
        if stats.tables_compacted > 0 {
            g.compactions += 1;
            g.rows_dropped += stats.rows_dropped as u64;
        }
        drop(g);
        if stats.tables_compacted > 0 {
            self.metrics.registry.event(
                "compaction",
                format!(
                    "tables={} rows_dropped={} segments {}->{}",
                    stats.tables_compacted,
                    stats.rows_dropped,
                    stats.segments_before,
                    stats.segments_after
                ),
            );
        }
        Ok(stats)
    }

    /// How many of `table`'s rows are dead under its declared
    /// [`crate::schema::LatestWins`] policy — rows a compaction would
    /// drop (0 for tables without a policy). Observability for trigger
    /// tuning and tests; runs the same fold the compaction planner uses,
    /// against a pinned snapshot.
    pub fn dead_rows(&self, table: &str) -> StoreResult<usize> {
        let snap = self.pin();
        let t = snap.table(table)?;
        Ok(compact::dead_rows(t))
    }

    /// Subscribe to the change feed: every subsequent [`Database::commit`]
    /// delivers one [`CommitBatch`] of the rows it made visible. Poll with
    /// [`Subscription::poll`]; drop the subscription to detach.
    pub fn subscribe(&self) -> Subscription {
        let mut g = self.inner.write();
        let epoch = g.epoch;
        Subscription::new(g.feed.attach(), epoch)
    }

    /// Current epoch: the number of commits applied so far.
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// Atomic multi-table scan: the frames plus the epoch they reflect,
    /// materialized from one pinned [`Snapshot`] so no commit can
    /// interleave. This is the consistent snapshot a materialized-view
    /// build starts from.
    pub fn snapshot(&self, tables: &[&str]) -> StoreResult<(u64, Vec<DataFrame>)> {
        let snap = self.pin();
        let mut frames = Vec::with_capacity(tables.len());
        for table in tables {
            frames.push(snap.scan(table)?);
        }
        Ok((snap.epoch(), frames))
    }

    /// Atomic multi-query snapshot: like [`Database::snapshot`], but each
    /// table is fetched through a [`crate::query::Query`] — predicate
    /// pushdown and index fast paths included — against one pinned
    /// [`Snapshot`], so every result reflects the same epoch. This is how
    /// a filtered materialized-view build pushes its scan down into the
    /// store instead of materialising whole tables first.
    pub fn snapshot_with(
        &self,
        queries: &[crate::query::Query],
    ) -> StoreResult<(u64, Vec<DataFrame>)> {
        let snap = self.pin();
        let mut frames = Vec::with_capacity(queries.len());
        for q in queries {
            frames.push(snap.query(q)?);
        }
        Ok((snap.epoch(), frames))
    }

    /// Discard the open transaction's staged rows. (The WAL keeps the
    /// orphaned inserts, but without a commit marker recovery ignores
    /// them — same effect as a crash.)
    pub fn rollback(&self) -> usize {
        let mut g = self.inner.write();
        g.open_txn = None;
        std::mem::take(&mut g.staged).len()
    }

    /// Number of committed rows in a table.
    pub fn row_count(&self, table: &str) -> StoreResult<usize> {
        self.pin().row_count(table)
    }

    /// Full scan of committed rows as a [`DataFrame`] (pins internally;
    /// the scan itself holds no lock).
    pub fn scan(&self, table: &str) -> StoreResult<DataFrame> {
        self.pin().scan(table)
    }

    /// Point lookup via a secondary index if one exists on `col`; falls
    /// back to a filtered scan otherwise.
    pub fn lookup(&self, table: &str, col: &str, value: &Value) -> StoreResult<DataFrame> {
        self.pin().lookup(table, col, value)
    }

    /// Multi-value point lookup: rows where `col` equals any of `values`,
    /// in insertion order (the order a full scan yields), via the
    /// secondary index when one exists. The incremental-view oracle uses
    /// this so the from-scratch recompute visits log rows in exactly the
    /// order the change feed delivered them.
    pub fn lookup_many(&self, table: &str, col: &str, values: &[Value]) -> StoreResult<DataFrame> {
        self.pin().lookup_many(table, col, values)
    }

    /// Whether `col` has a secondary index on `table`.
    pub fn has_index(&self, table: &str, col: &str) -> bool {
        self.pin().table(table).is_ok_and(|t| t.has_index(col))
    }

    /// Checkpoint: serialize the committed state to the `<wal>.ckpt`
    /// sidecar and truncate the WAL to the uncovered tail. Reads and the
    /// writer keep flowing: the serialization runs against a pinned
    /// snapshot with no lock held; only the final WAL truncation takes
    /// the write lock briefly.
    ///
    /// In-memory databases compact the log in place (no sidecar).
    pub fn checkpoint(&self) -> StoreResult<CheckpointStats> {
        self.checkpoint_inner(true)
    }

    /// Failpoint instrumentation for crash tests: run only the
    /// sidecar-write phase of [`Database::checkpoint`], skipping the WAL
    /// truncation — the on-disk state a crash between the two steps
    /// leaves behind. Recovery must (and does) converge regardless.
    pub fn checkpoint_without_truncate(&self) -> StoreResult<CheckpointStats> {
        self.checkpoint_inner(false)
    }

    fn checkpoint_inner(&self, truncate: bool) -> StoreResult<CheckpointStats> {
        if self.inner.read().read_only {
            // Checkpointing is the writer's job: a follower writing the
            // shared sidecar would corrupt the very artifact it tails.
            return Err(StoreError::ReadOnly);
        }
        // Whole-checkpoint serialization: see the `ckpt_serial` field.
        let _serial = self.ckpt_serial.lock();
        let _pass = Span::enter(&self.metrics.registry, &self.metrics.checkpoint_nanos);
        // Phase 1: pin the committed state (O(1) under the read lock).
        // The read lock excludes the writer, so `wal_bytes_before` is a
        // frame boundary: every frame below it is complete.
        let (snap, max_txn, wal_path, wal_bytes_before) = {
            let g = self.inner.read();
            (
                Snapshot {
                    epoch: g.epoch,
                    tables: Arc::clone(&g.tables),
                    metrics: Arc::clone(&self.metrics),
                },
                g.last_committed_txn,
                g.wal.path().map(Path::to_path_buf),
                g.wal.len_bytes(),
            )
        };
        // Phase 2: serialize and persist the sidecar — no lock held, so
        // neither readers nor the writer wait on the serialization.
        let data = snap.to_checkpoint(max_txn);
        let rows = data.rows();
        let sidecar_bytes = match &wal_path {
            Some(p) => checkpoint::write_sidecar(p, &data)?,
            None => 0,
        };
        // Phase 3: truncate the WAL to the records the sidecar does not
        // cover (later commits and any open transaction's staged
        // inserts). For file logs the bulk of the tail is decoded,
        // re-encoded and fsynced with NO lock held (`stage_tail`); the
        // write lock covers only the records that committed meanwhile
        // plus the rename — so the writer never stalls on tail-sized
        // I/O.
        let wal_bytes_after = if truncate {
            match &wal_path {
                Some(p) => {
                    let stage = crate::wal::stage_tail(p, wal_bytes_before, max_txn)?;
                    let mut g = self.inner.write();
                    // audit: allow(hold-across-io) — the truncation
                    // rename plus the post-boundary delta is the only
                    // I/O under the write lock; the tail bulk was
                    // staged lock-free above. Shrinking this hold
                    // further would race new commits into the old log.
                    g.wal.finish_rewrite(stage, wal_bytes_before, max_txn)?;
                    g.checkpoints += 1;
                    g.last_checkpoint_epoch = data.epoch;
                    g.wal.len_bytes()
                }
                None => {
                    let mut g = self.inner.write();
                    // audit: allow(hold-across-io) — in-memory log: the
                    // "tail read" is a Vec scan, not file I/O; holding
                    // the lock keeps the rewrite atomic wrt commits.
                    let tail = g.wal.tail_records(max_txn)?;
                    g.wal.rewrite(&tail)?;
                    g.checkpoints += 1;
                    g.last_checkpoint_epoch = data.epoch;
                    g.wal.len_bytes()
                }
            }
        } else {
            wal_bytes_before
        };
        self.metrics.registry.event(
            "checkpoint",
            format!(
                "epoch={} rows={rows} wal {wal_bytes_before}->{wal_bytes_after} bytes",
                data.epoch
            ),
        );
        Ok(CheckpointStats {
            epoch: data.epoch,
            max_txn,
            rows,
            sidecar_bytes,
            wal_bytes_before,
            wal_bytes_after,
        })
    }

    /// Current WAL size in bytes — the auto-checkpoint trigger input
    /// (shrinks back to the tail size when a checkpoint completes).
    pub fn wal_bytes(&self) -> u64 {
        self.inner.read().wal.len_bytes()
    }

    /// What the most recent [`Database::open`] cost: checkpoint rows
    /// loaded versus WAL records replayed.
    pub fn recovery_info(&self) -> RecoveryInfo {
        self.inner.read().recovery.clone()
    }

    /// Statistics snapshot. Sampled under one read-lock acquisition, so
    /// every field reflects the same committed state (pair with a pinned
    /// snapshot via [`Database::pin_with_stats`] when the caller needs
    /// the stats and the data to agree too).
    pub fn stats(&self) -> DbStats {
        self.inner.read().stats()
    }
}

impl DbInner {
    /// The [`DbStats`] sample for the state this guard observes. All
    /// fields come from one lock acquisition — a concurrent commit can
    /// never make `staged_rows`/`rows_coalesced` disagree with the table
    /// counts.
    fn stats(&self) -> DbStats {
        let mut rows_per_table: Vec<(String, usize)> = self
            .tables
            .iter()
            .map(|(n, t)| (n.clone(), t.total_rows))
            .collect();
        rows_per_table.sort();
        DbStats {
            total_rows: rows_per_table.iter().map(|(_, n)| n).sum(),
            segments: self.tables.values().map(|t| t.segments.len()).sum(),
            rows_per_table,
            wal_records: self.wal.records_written,
            staged_rows: self.staged.len(),
            wal_epoch: self.epoch,
            wal_offset_bytes: self.wal.len_bytes(),
            checkpoints: self.checkpoints,
            last_checkpoint_epoch: self.last_checkpoint_epoch,
            compactions: self.compactions,
            rows_dropped: self.rows_dropped,
            rows_coalesced: self.rows_coalesced,
            subscribers: self.feed.live(),
        }
    }
}

/// Materialise rows into a column-oriented frame with the schema's names.
pub(crate) fn rows_to_frame(
    schema: &TableSchema,
    rows: impl Iterator<Item = Vec<Value>>,
) -> DataFrame {
    let mut cols: Vec<Column> = schema
        .columns
        .iter()
        .map(|c| Column {
            name: c.name.clone(),
            values: Vec::new(),
        })
        .collect();
    for row in rows {
        for (c, v) in cols.iter_mut().zip(row) {
            c.values.push(v);
        }
    }
    // audit: allow(panic) — one column per schema field, every row
    // pushed to all of them: lengths and names are uniform.
    DataFrame::from_columns(cols).expect("schema guarantees equal lengths and unique names")
}

/// Convenience conversion used by higher layers.
pub fn frame_result(df: DataFrame) -> DfResult<DataFrame> {
    Ok(df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{flor_schema, ColType, ColumnDef};

    fn tiny_schema() -> Vec<TableSchema> {
        vec![TableSchema::new(
            "t",
            vec![
                ColumnDef::indexed("k", ColType::Str),
                ColumnDef::new("v", ColType::Int),
            ],
        )]
    }

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("flordb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
        path
    }

    #[test]
    fn insert_invisible_until_commit() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert_eq!(db.row_count("t").unwrap(), 0);
        assert_eq!(db.stats().staged_rows, 1);
        assert_eq!(db.commit().unwrap(), 1);
        assert_eq!(db.row_count("t").unwrap(), 1);
    }

    #[test]
    fn rollback_discards() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert_eq!(db.rollback(), 1);
        assert_eq!(db.commit().unwrap(), 0);
        assert_eq!(db.row_count("t").unwrap(), 0);
    }

    #[test]
    fn scan_returns_committed_rows() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..5 {
            db.insert("t", vec![format!("k{i}").into(), i.into()])
                .unwrap();
        }
        db.commit().unwrap();
        let df = db.scan("t").unwrap();
        assert_eq!(df.n_rows(), 5);
        assert_eq!(df.column_names(), vec!["k", "v"]);
    }

    #[test]
    fn indexed_lookup_matches_scan_filter() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..100 {
            db.insert("t", vec![format!("k{}", i % 10).into(), i.into()])
                .unwrap();
        }
        db.commit().unwrap();
        assert!(db.has_index("t", "k"));
        let via_index = db.lookup("t", "k", &"k3".into()).unwrap();
        let via_scan = db.scan("t").unwrap().filter_eq("k", &"k3".into());
        assert_eq!(via_index.n_rows(), 10);
        assert_eq!(via_index.to_rows(), via_scan.to_rows());
    }

    #[test]
    fn indexed_lookup_spans_segments() {
        // Rows for one key spread across many sealed segments must come
        // back complete and in insertion order.
        let db = Database::in_memory(tiny_schema());
        for batch in 0..5 {
            for i in 0..3 {
                db.insert("t", vec!["hot".into(), (batch * 10 + i).into()])
                    .unwrap();
            }
            db.commit().unwrap();
        }
        let df = db.lookup("t", "k", &"hot".into()).unwrap();
        let vs: Vec<i64> = df
            .column("v")
            .unwrap()
            .values
            .iter()
            .filter_map(Value::as_i64)
            .collect();
        assert_eq!(
            vs,
            vec![0, 1, 2, 10, 11, 12, 20, 21, 22, 30, 31, 32, 40, 41, 42]
        );
    }

    #[test]
    fn small_commits_coalesce_segments() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..50 {
            db.insert("t", vec![format!("k{i}").into(), i.into()])
                .unwrap();
            db.commit().unwrap();
        }
        // Geometric coalescing: 50 one-row commits leave O(log n) tail
        // segments (the binary-counter invariant), not 50 and not 1.
        assert!(
            db.stats().segments <= 6,
            "got {} segments",
            db.stats().segments
        );
        assert_eq!(db.row_count("t").unwrap(), 50);
    }

    #[test]
    fn tail_coalescing_cost_is_amortized_not_quadratic() {
        // The old scheme re-copied the whole sub-threshold tail on every
        // commit: N one-row commits copied ~N²/2 rows. Geometric folding
        // copies each row O(log N) times on its way up.
        let n: usize = 256;
        let db = Database::in_memory(tiny_schema());
        for i in 0..n {
            db.insert("t", vec![format!("k{i}").into(), (i as i64).into()])
                .unwrap();
            db.commit().unwrap();
        }
        let copied = db.stats().rows_coalesced;
        let quadratic = (n * (n - 1) / 2) as u64;
        let amortized_bound = (n * 8) as u64; // n · log2(256)
        assert!(
            copied <= amortized_bound,
            "coalescing copied {copied} rows; amortized bound is {amortized_bound} \
             (the old quadratic scheme copies {quadratic})"
        );
        // And the rows all arrive, in order.
        let df = db.scan("t").unwrap();
        assert_eq!(df.n_rows(), n);
        assert_eq!(df.get(n - 1, "v"), Some(&Value::Int(n as i64 - 1)));
    }

    #[test]
    fn pinned_snapshot_is_stable_across_commits() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        let pinned = db.pin();
        let before = pinned.scan("t").unwrap();
        for i in 0..100 {
            db.insert("t", vec![format!("w{i}").into(), i.into()])
                .unwrap();
            db.commit().unwrap();
        }
        // The pinned view re-reads byte-identically; a fresh pin sees all.
        assert_eq!(pinned.scan("t").unwrap(), before);
        assert_eq!(pinned.row_count("t").unwrap(), 1);
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(db.pin().row_count("t").unwrap(), 101);
    }

    #[test]
    fn lookup_many_preserves_insertion_order() {
        let db = Database::in_memory(tiny_schema());
        for (i, k) in ["b", "a", "b", "c", "a"].iter().enumerate() {
            db.insert("t", vec![(*k).into(), (i as i64).into()])
                .unwrap();
        }
        db.commit().unwrap();
        let df = db.lookup_many("t", "k", &["a".into(), "b".into()]).unwrap();
        let order: Vec<i64> = df
            .column("v")
            .unwrap()
            .values
            .iter()
            .filter_map(Value::as_i64)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 4], "scan order, not per-key order");
        // Unindexed column falls back to a filtered scan, same order.
        let df2 = db.lookup_many("t", "v", &[1.into(), 0.into()]).unwrap();
        assert_eq!(df2.n_rows(), 2);
        assert_eq!(df2.get(0, "k"), Some(&Value::from("b")));
    }

    #[test]
    fn unindexed_lookup_falls_back() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 7.into()]).unwrap();
        db.commit().unwrap();
        assert!(!db.has_index("t", "v"));
        let df = db.lookup("t", "v", &7.into()).unwrap();
        assert_eq!(df.n_rows(), 1);
    }

    #[test]
    fn schema_validation_enforced() {
        let db = Database::in_memory(tiny_schema());
        assert!(matches!(
            db.insert("t", vec![1.into(), 1.into()]),
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            db.insert("nope", vec![]),
            Err(StoreError::NoSuchTable(_))
        ));
    }

    #[test]
    fn flor_schema_database_accepts_log_rows() {
        let db = Database::in_memory(flor_schema());
        db.insert(
            "logs",
            vec![
                "pdf_parser".into(),
                1.into(),
                "train.fl".into(),
                100.into(),
                "loss".into(),
                "0.5".into(),
                3.into(),
            ],
        )
        .unwrap();
        db.commit().unwrap();
        assert_eq!(db.row_count("logs").unwrap(), 1);
    }

    #[test]
    fn durability_across_reopen() {
        let path = temp_wal("durability");
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            db.insert("t", vec!["persisted".into(), 1.into()]).unwrap();
            db.commit().unwrap();
            db.insert("t", vec!["lost".into(), 2.into()]).unwrap();
            // no commit — simulates a crash
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            let df = db.scan("t").unwrap();
            assert_eq!(df.n_rows(), 1);
            assert_eq!(df.get(0, "k"), Some(&Value::from("persisted")));
            // New transactions continue with fresh ids.
            db.insert("t", vec!["after".into(), 3.into()]).unwrap();
            db.commit().unwrap();
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.row_count("t").unwrap(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_makes_reopen_replay_only_the_tail() {
        let path = temp_wal("ckpt-tail");
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            for i in 0..20 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            let stats = db.checkpoint().unwrap();
            assert_eq!(stats.epoch, 20);
            assert_eq!(stats.rows, 20);
            assert!(stats.wal_bytes_after < stats.wal_bytes_before);
            assert_eq!(stats.wal_bytes_after, 0, "no uncovered tail yet");
            // Two more commits land in the fresh tail.
            for i in 20..22 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            assert_eq!(db.stats().checkpoints, 1);
            assert_eq!(db.stats().last_checkpoint_epoch, 20);
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.row_count("t").unwrap(), 22);
            assert_eq!(db.epoch(), 22);
            let info = db.recovery_info();
            assert!(info.from_checkpoint);
            assert_eq!(info.checkpoint_rows, 20);
            assert_eq!(info.rows_replayed, 2, "only the tail is replayed");
            assert_eq!(info.wal_records_replayed, 4); // 2 × (insert + commit)
                                                      // And the clock keeps going.
            db.insert("t", vec!["next".into(), 99.into()]).unwrap();
            db.commit().unwrap();
            assert_eq!(db.epoch(), 23);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
    }

    #[test]
    fn crash_between_sidecar_write_and_truncate_converges() {
        let path = temp_wal("ckpt-crash");
        let want;
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            for i in 0..10 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            // Sidecar written, WAL left un-truncated — the crash window.
            db.checkpoint_without_truncate().unwrap();
            db.insert("t", vec!["tail".into(), 10.into()]).unwrap();
            db.commit().unwrap();
            want = db.scan("t").unwrap();
        }
        {
            // Replay must not double-apply the checkpointed prefix.
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.scan("t").unwrap(), want);
            assert_eq!(db.epoch(), 11);
            let info = db.recovery_info();
            assert!(info.from_checkpoint);
            assert_eq!(info.rows_replayed, 1, "prefix skipped by txn bound");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
    }

    #[test]
    fn checkpoint_preserves_open_transaction_staged_inserts() {
        let path = temp_wal("ckpt-open-txn");
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            db.insert("t", vec!["committed".into(), 1.into()]).unwrap();
            db.commit().unwrap();
            // Open transaction with staged rows in the WAL, then checkpoint.
            db.insert("t", vec!["staged".into(), 2.into()]).unwrap();
            db.checkpoint().unwrap();
            // The staged insert survived the truncation: committing it
            // now must make it durable.
            db.commit().unwrap();
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.row_count("t").unwrap(), 2);
            let df = db.scan("t").unwrap();
            assert_eq!(df.get(1, "k"), Some(&Value::from("staged")));
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
    }

    #[test]
    fn in_memory_checkpoint_compacts_the_log() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..10 {
            db.insert("t", vec![format!("k{i}").into(), i.into()])
                .unwrap();
            db.commit().unwrap();
        }
        let before = db.wal_bytes();
        let stats = db.checkpoint().unwrap();
        assert_eq!(stats.sidecar_bytes, 0);
        assert_eq!(stats.wal_bytes_before, before);
        assert_eq!(db.wal_bytes(), 0);
        assert_eq!(db.row_count("t").unwrap(), 10, "tables untouched");
    }

    #[test]
    fn clone_shares_state() {
        let db = Database::in_memory(tiny_schema());
        let db2 = db.clone();
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        assert_eq!(db2.row_count("t").unwrap(), 1);
    }

    #[test]
    fn ensure_table_idempotent() {
        let db = Database::in_memory(vec![]);
        db.ensure_table(tiny_schema().pop().unwrap());
        db.ensure_table(tiny_schema().pop().unwrap());
        assert_eq!(db.table_names(), vec!["t"]);
    }

    #[test]
    fn stats_reflect_state() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        let s = db.stats();
        assert_eq!(s.total_rows, 1);
        assert_eq!(s.wal_records, 2); // insert + commit marker
        assert_eq!(s.staged_rows, 0);
        assert_eq!(s.wal_epoch, 1);
        assert_eq!(s.segments, 1);
        assert!(s.wal_offset_bytes > 0);
        assert_eq!(s.checkpoints, 0);
        assert_eq!(s.subscribers, 0);
    }

    #[test]
    fn feed_delivers_committed_batches_only() {
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        assert_eq!(sub.since_epoch(), 0);
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert!(sub.poll().is_empty(), "staged rows must not leak");
        db.insert("t", vec!["b".into(), 2.into()]).unwrap();
        db.commit().unwrap();
        let batches = sub.poll();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].epoch, 1);
        let deltas = &batches[0].deltas;
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].table, "t");
        assert_eq!(deltas[0].row[0], Value::from("a"));
        assert_eq!(deltas[1].row[0], Value::from("b"));
        assert!(sub.poll().is_empty());
    }

    #[test]
    fn feed_skips_rolled_back_rows() {
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        db.insert("t", vec!["gone".into(), 1.into()]).unwrap();
        db.rollback();
        db.insert("t", vec!["kept".into(), 2.into()]).unwrap();
        db.commit().unwrap();
        let batches = sub.poll();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].deltas.len(), 1);
        assert_eq!(batches[0].deltas[0].row[0], Value::from("kept"));
    }

    #[test]
    fn feed_subscriber_lifecycle_in_stats() {
        let db = Database::in_memory(tiny_schema());
        let sub1 = db.subscribe();
        let sub2 = db.subscribe();
        assert_eq!(db.stats().subscribers, 2);
        drop(sub2);
        assert_eq!(db.stats().subscribers, 1);
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        assert_eq!(sub1.pending(), 1);
    }

    #[test]
    fn feed_queue_is_bounded_for_slow_consumers() {
        use crate::feed::MAX_PENDING_BATCHES;
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        for i in 0..(MAX_PENDING_BATCHES + 50) {
            db.insert("t", vec![format!("k{i}").into(), (i as i64).into()])
                .unwrap();
            db.commit().unwrap();
        }
        assert_eq!(sub.pending(), MAX_PENDING_BATCHES);
        let batches = sub.poll();
        // The overflow was absorbed by coalescing, not shedding: some
        // batches widened (span > 1), every delta survives, and the
        // epochs stay contiguous end to end.
        assert_eq!(batches[0].first_epoch(), 1);
        assert!(batches.iter().any(|b| b.span > 1), "pairs were merged");
        assert_eq!(
            batches.last().unwrap().epoch,
            (MAX_PENDING_BATCHES + 50) as u64
        );
        let total: usize = batches.iter().map(|b| b.deltas.len()).sum();
        assert_eq!(total, MAX_PENDING_BATCHES + 50, "no delta was lost");
        for w in batches.windows(2) {
            assert_eq!(w[1].first_epoch(), w[0].epoch + 1, "no epoch gap");
        }
    }

    #[test]
    fn sustained_overload_sheds_only_past_the_delta_bound() {
        // Regression for the rebuild-storm: coalescing absorbs sustained
        // overload gap-free until the queue's hard delta bound, and only
        // then sheds — a slow subscriber rebuilds at most once per drain
        // instead of once per overflowing commit.
        use crate::feed::{MAX_PENDING_BATCHES, MAX_PENDING_DELTAS};
        let rows_per_commit = 32usize;
        let commits = MAX_PENDING_DELTAS / rows_per_commit + 200;
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        for i in 0..commits {
            for j in 0..rows_per_commit {
                db.insert(
                    "t",
                    vec![format!("k{i}").into(), ((i * 64 + j) as i64).into()],
                )
                .unwrap();
            }
            db.commit().unwrap();
        }
        assert!(sub.pending() <= MAX_PENDING_BATCHES);
        let batches = sub.poll();
        let retained: usize = batches.iter().map(|b| b.deltas.len()).sum();
        assert!(
            retained <= MAX_PENDING_DELTAS + rows_per_commit,
            "queue memory stays bounded ({retained} deltas retained)"
        );
        // At most one discontinuity: everything after the first surviving
        // batch is contiguous, so one rebuild catches the consumer up.
        let gaps = batches
            .windows(2)
            .filter(|w| w[1].first_epoch() != w[0].epoch + 1)
            .count();
        assert_eq!(gaps, 0, "shedding only ever trims the queue's front");
        assert_eq!(batches.last().unwrap().epoch, commits as u64);
    }

    #[test]
    fn epoch_advances_per_commit_and_survives_reopen() {
        let path = temp_wal("epoch");
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            for i in 0..3 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            assert_eq!(db.epoch(), 3);
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.epoch(), 3);
            assert!(db.stats().wal_offset_bytes > 0);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_with_runs_queries_at_one_epoch() {
        use crate::query::Query;
        let db = Database::in_memory(tiny_schema());
        for (k, v) in [("a", 1i64), ("b", 2), ("a", 3)] {
            db.insert("t", vec![k.into(), v.into()]).unwrap();
        }
        db.commit().unwrap();
        let (epoch, frames) = db
            .snapshot_with(&[
                Query::table("t").filter_in("k", vec!["a".into()]),
                Query::table("t"),
            ])
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(frames[0].n_rows(), 2);
        assert_eq!(frames[1].n_rows(), 3);
        assert!(db.snapshot_with(&[Query::table("absent")]).is_err());
    }

    fn lw_schema() -> Vec<TableSchema> {
        use crate::schema::LatestWins;
        vec![TableSchema::new(
            "t",
            vec![
                ColumnDef::indexed("k", ColType::Int),
                ColumnDef::new("s", ColType::Int),
                ColumnDef::new("p", ColType::Str),
            ],
        )
        .with_latest_wins(LatestWins::new(&["k"], Some("s")).carry_first(&["p"]))]
    }

    #[test]
    fn compaction_merges_cold_segments_preserving_scans() {
        let db = Database::in_memory(tiny_schema());
        for batch in 0..5 {
            for i in 0..SEGMENT_COALESCE_ROWS {
                db.insert(
                    "t",
                    vec![
                        format!("k{batch}").into(),
                        ((batch * 10_000 + i) as i64).into(),
                    ],
                )
                .unwrap();
            }
            db.commit().unwrap();
        }
        assert_eq!(db.stats().segments, 5);
        let before = db.scan("t").unwrap();
        let pinned = db.pin();
        let stats = db.compact().unwrap();
        assert_eq!(stats.tables_compacted, 1);
        assert_eq!(stats.rows_dropped, 0, "no latest-wins policy declared");
        assert!(stats.segments_after < stats.segments_before);
        // Scans, pinned or fresh, are byte-identical across the swap.
        assert_eq!(db.scan("t").unwrap(), before);
        assert_eq!(pinned.scan("t").unwrap(), before);
        // Index lookups agree too (rids are preserved by the merge).
        let df = db.lookup("t", "k", &"k3".into()).unwrap();
        assert_eq!(df.n_rows(), SEGMENT_COALESCE_ROWS);
        // A second pass finds nothing left to do.
        let again = db.compact().unwrap();
        assert_eq!(again.tables_compacted, 0);
    }

    #[test]
    fn compaction_drops_superseded_rows_and_keeps_carry_payload() {
        let db = Database::in_memory(lw_schema());
        // 4 generations of the same 128 keys; the payload lands only on
        // generation 0 (the `jobs.payload` shape).
        for gen in 0..4i64 {
            for k in 0..128i64 {
                let p = if gen == 0 {
                    format!("pay{k}")
                } else {
                    String::new()
                };
                db.insert("t", vec![k.into(), gen.into(), p.into()])
                    .unwrap();
            }
            db.commit().unwrap();
        }
        assert_eq!(db.dead_rows("t").unwrap(), 256, "2 middle generations dead");
        let pinned = db.pin();
        let before = pinned.scan("t").unwrap();
        let stats = db.compact().unwrap();
        assert_eq!(stats.rows_dropped, 256);
        assert_eq!(db.dead_rows("t").unwrap(), 0);
        // Live rows: 128 winners (gen 3) + 128 carry rows (gen 0, payload).
        let snap = db.pin();
        assert_eq!(snap.live_rows("t").unwrap(), 256);
        let df = snap.scan("t").unwrap();
        // The latest-wins fold over the compacted scan matches the fold
        // over the uncompacted oracle: max s per key, payload carried.
        let fold = |df: &DataFrame| -> Vec<(i64, i64, String)> {
            let mut best: HashMap<i64, (i64, String)> = HashMap::new();
            let mut pay: HashMap<i64, String> = HashMap::new();
            for r in df.rows() {
                let k = r.get("k").and_then(Value::as_i64).unwrap();
                let s = r.get("s").and_then(Value::as_i64).unwrap();
                let p = r.get("p").map(|v| v.to_text()).unwrap_or_default();
                if !p.is_empty() {
                    pay.entry(k).or_insert(p.clone());
                }
                match best.get(&k) {
                    Some((prev, _)) if *prev >= s => {}
                    _ => {
                        best.insert(k, (s, p));
                    }
                }
            }
            let mut out: Vec<(i64, i64, String)> = best
                .into_iter()
                .map(|(k, (s, p))| {
                    let p = if p.is_empty() {
                        pay.get(&k).cloned().unwrap_or_default()
                    } else {
                        p
                    };
                    (k, s, p)
                })
                .collect();
            out.sort();
            out
        };
        assert_eq!(fold(&df), fold(&before));
        assert_eq!(fold(&df)[5], (5, 3, "pay5".to_string()));
        // The pre-compaction pin still re-reads every superseded row.
        assert_eq!(pinned.scan("t").unwrap(), before);
        assert_eq!(pinned.row_count("t").unwrap(), 512);
        // Indexed lookups against the compacted version return only live
        // rows, in insertion order.
        let hits = db.lookup("t", "k", &7i64.into()).unwrap();
        assert_eq!(hits.n_rows(), 2);
        assert_eq!(hits.get(0, "s"), Some(&Value::Int(0)));
        assert_eq!(hits.get(1, "s"), Some(&Value::Int(3)));
    }

    #[test]
    fn appends_after_compaction_use_fresh_rids() {
        let db = Database::in_memory(lw_schema());
        for gen in 0..2i64 {
            for k in 0..256i64 {
                db.insert("t", vec![k.into(), gen.into(), "".into()])
                    .unwrap();
            }
            db.commit().unwrap();
        }
        db.compact().unwrap();
        let live_before = db.pin().live_rows("t").unwrap();
        assert_eq!(live_before, 256);
        // New commits append past the rid high watermark; their rows are
        // reachable by index and by scan, and never collide with holes.
        for k in 0..10i64 {
            db.insert("t", vec![k.into(), 99i64.into(), "".into()])
                .unwrap();
        }
        db.commit().unwrap();
        let hits = db.lookup("t", "k", &3i64.into()).unwrap();
        assert_eq!(hits.n_rows(), 2);
        assert_eq!(
            hits.column("s").unwrap().values,
            vec![Value::Int(1), Value::Int(99)]
        );
        assert_eq!(db.pin().live_rows("t").unwrap(), 266);
    }

    #[test]
    fn dropped_suffix_rids_are_never_reissued() {
        // A dead row at the very end of a table (an equal-`s` tie loses
        // to the older row) leaves the compacted tail segment ending
        // below `next_rid`. The next commit must NOT fold into it with
        // implicit rids — that would re-issue the dropped rid.
        let db = Database::in_memory(lw_schema());
        db.insert("t", vec![1i64.into(), 5i64.into(), "pay".into()])
            .unwrap();
        db.insert("t", vec![1i64.into(), 5i64.into(), "".into()])
            .unwrap();
        db.commit().unwrap();
        let stats = db.compact().unwrap();
        assert_eq!(stats.rows_dropped, 1, "tie keeps the older row");
        db.insert("t", vec![2i64.into(), 1i64.into(), "".into()])
            .unwrap();
        db.commit().unwrap();
        let g = db.inner.read();
        let t = g.tables.get("t").unwrap();
        assert_eq!(t.row(0).map(|r| r[2].clone()), Some(Value::from("pay")));
        assert!(t.row(1).is_none(), "dropped rid stays a hole forever");
        assert_eq!(t.row(2).map(|r| r[0].clone()), Some(Value::Int(2)));
        assert_eq!(t.next_rid, 3);
        drop(g);
        let hits = db.lookup("t", "k", &2i64.into()).unwrap();
        assert_eq!(hits.n_rows(), 1);
    }

    #[test]
    fn zone_maps_prune_range_scans() {
        use crate::query::Query;
        let db = Database::in_memory(tiny_schema());
        // 4 cold segments with disjoint, increasing `v` ranges.
        for batch in 0..4 {
            for i in 0..SEGMENT_COALESCE_ROWS {
                db.insert(
                    "t",
                    vec![
                        format!("k{i}").into(),
                        ((batch * SEGMENT_COALESCE_ROWS + i) as i64).into(),
                    ],
                )
                .unwrap();
            }
            db.commit().unwrap();
        }
        let snap = db.pin();
        let preds = vec![
            Predicate::new("v", CmpOp::Ge, 600),
            Predicate::new("v", CmpOp::Lt, 700),
        ];
        let (visited, total) = snap.zone_prune_stats("t", &preds).unwrap();
        assert_eq!(total, 4);
        assert_eq!(visited, 1, "the window lies inside one segment");
        // And the pruned execution is byte-identical to the full filter.
        let q = Query::table("t")
            .filter("v", CmpOp::Ge, 600)
            .filter("v", CmpOp::Lt, 700);
        let pruned = snap.query(&q).unwrap();
        let oracle = snap.scan("t").unwrap().filter(|r| {
            r.get("v")
                .and_then(Value::as_i64)
                .is_some_and(|v| (600..700).contains(&v))
        });
        assert_eq!(pruned.to_rows(), oracle.to_rows());
        assert_eq!(pruned.n_rows(), 100);
        // An out-of-range window visits nothing.
        let none = vec![Predicate::new("v", CmpOp::Gt, 1_000_000)];
        assert_eq!(snap.zone_prune_stats("t", &none).unwrap().0, 0);
    }

    #[test]
    fn reopen_rebuilds_bounded_segments_so_zone_maps_keep_pruning() {
        // Regression: recovery used to seal each table as ONE monolithic
        // segment, whose history-wide min/max made zone maps useless
        // after every restart.
        let path = temp_wal("reopen-chunks");
        let n = RECOVERED_SEGMENT_ROWS as i64 * 3;
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            for i in 0..n {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                if i % 1000 == 999 {
                    db.commit().unwrap();
                }
            }
            db.commit().unwrap();
            db.checkpoint().unwrap();
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert!(db.recovery_info().from_checkpoint);
            assert_eq!(db.row_count("t").unwrap(), n as usize);
            let preds = vec![
                Predicate::new("v", CmpOp::Ge, 100),
                Predicate::new("v", CmpOp::Lt, 200),
            ];
            let (visited, total) = db.pin().zone_prune_stats("t", &preds).unwrap();
            assert!(total >= 3, "recovery sealed bounded chunks, got {total}");
            assert_eq!(visited, 1, "the window still prunes after reopen");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
    }

    #[test]
    fn compaction_splits_oversized_segments() {
        // A monolithic segment (here: one giant commit) is split at
        // target_segment_rows so zone maps get prunable ranges.
        let db = Database::in_memory(tiny_schema());
        for i in 0..5000i64 {
            db.insert("t", vec![format!("k{i}").into(), i.into()])
                .unwrap();
        }
        db.commit().unwrap();
        assert_eq!(db.stats().segments, 1);
        let before = db.scan("t").unwrap();
        let stats = db
            .compact_with(&CompactionPolicy {
                target_segment_rows: 1024,
                ..CompactionPolicy::default()
            })
            .unwrap();
        assert_eq!(stats.rows_dropped, 0);
        assert_eq!(db.stats().segments, 5, "5000 rows / 1024-row chunks");
        assert_eq!(db.scan("t").unwrap(), before);
        let preds = vec![Predicate::new("v", CmpOp::Lt, 1000)];
        let (visited, total) = db.pin().zone_prune_stats("t", &preds).unwrap();
        assert_eq!((visited, total), (1, 5));
        // Idempotent: chunks at the target size pass through untouched.
        let again = db
            .compact_with(&CompactionPolicy {
                target_segment_rows: 1024,
                ..CompactionPolicy::default()
            })
            .unwrap();
        assert_eq!(again.tables_compacted, 0);
    }

    #[test]
    fn row_lookup_is_total() {
        let db = Database::in_memory(lw_schema());
        {
            let g = db.inner.read();
            let t = g.tables.get("t").unwrap();
            assert!(t.row(0).is_none(), "empty table has no rows");
        }
        for gen in 0..2i64 {
            for k in 0..256i64 {
                db.insert("t", vec![k.into(), gen.into(), "".into()])
                    .unwrap();
            }
            db.commit().unwrap();
        }
        db.compact().unwrap();
        let g = db.inner.read();
        let t = g.tables.get("t").unwrap();
        // Generation-0 rows (rids 0..256) were dropped: holes, not panics.
        assert!(t.row(3).is_none(), "dead rid resolves to None");
        assert_eq!(t.row(256 + 3).map(|r| r[1].clone()), Some(Value::Int(1)));
        assert!(t.row(999_999).is_none(), "past the high watermark");
        assert_eq!(t.total_rows, 256);
        assert_eq!(t.next_rid, 512);
    }

    #[test]
    fn auto_compaction_triggers_at_commit_layer() {
        let db = Database::in_memory(lw_schema());
        // 1024 appended rows = exactly the two generations below, so one
        // trigger fires, after the superseding commit.
        db.set_auto_compact(Some(CompactionTrigger {
            check_every_rows: 1024,
            policy: CompactionPolicy::default(),
        }));
        for gen in 0..2i64 {
            for k in 0..512i64 {
                db.insert("t", vec![k.into(), gen.into(), "".into()])
                    .unwrap();
            }
            db.commit().unwrap();
        }
        // The second commit superseded generation 0; the spawned
        // background pass must drop it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.stats().compactions == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "auto-compaction never ran"
            );
            std::thread::yield_now();
        }
        assert_eq!(db.pin().live_rows("t").unwrap(), 512);
        assert_eq!(db.stats().rows_dropped, 512);
        // Disabled trigger stays quiet.
        let quiet = Database::in_memory(lw_schema());
        quiet.set_auto_compact(None);
        for k in 0..600i64 {
            quiet
                .insert("t", vec![k.into(), 0i64.into(), "".into()])
                .unwrap();
        }
        quiet.commit().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(quiet.stats().compactions, 0);
    }

    #[test]
    fn snapshot_is_atomic_and_epoch_stamped() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        let (epoch, frames) = db.snapshot(&["t"]).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].n_rows(), 1);
        assert!(matches!(
            db.snapshot(&["nope"]),
            Err(StoreError::NoSuchTable(_))
        ));
    }
}
