//! Compaction oracle property test: random commit / compact / checkpoint
//! / reopen interleavings must be indistinguishable — to every
//! fold-respecting reader — from a run that never compacted.
//!
//! The oracle is a second database receiving exactly the same commits but
//! never compacting (and never checkpointing). After every step we check:
//!
//! * tables **without** a latest-wins policy scan byte-identically;
//! * tables **with** one (here: a `jobs`-shaped table) agree on the
//!   latest-wins fold — winner per key by max `ord`, ties to the oldest
//!   row, carry-forward columns restored — which is the only view any
//!   consumer of such a table reads;
//! * snapshots pinned *before* a compaction keep re-scanning their
//!   original rows byte-identically afterwards;
//! * zone-map-pruned range queries equal the oracle's unpruned filter;
//! * a reopen (checkpoint sidecar + WAL tail) converges to the same
//!   state.

use flor_df::Value;
use flor_store::{
    CmpOp, ColType, ColumnDef, CompactionPolicy, Database, LatestWins, Query, TableSchema,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Two tables: an append-only one (`events`) and a latest-wins one with a
/// carry-forward column (`state`, shaped like `jobs`).
fn schemas() -> Vec<TableSchema> {
    vec![
        TableSchema::new(
            "events",
            vec![
                ColumnDef::indexed("kind", ColType::Str),
                ColumnDef::new("ts", ColType::Int),
            ],
        ),
        TableSchema::new(
            "state",
            vec![
                ColumnDef::indexed("key", ColType::Int),
                ColumnDef::new("seq", ColType::Int),
                ColumnDef::new("payload", ColType::Str),
            ],
        )
        .with_latest_wins(LatestWins::new(&["key"], Some("seq")).carry_first(&["payload"])),
    ]
}

/// One step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    /// Commit `events` rows (append-only) and `state` transitions.
    Commit {
        events: usize,
        transitions: Vec<(i64, bool)>,
    },
    Compact,
    Checkpoint,
    Reopen,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (1usize..40, proptest::collection::vec((0i64..12, any::<bool>()), 0..6))
            .prop_map(|(events, transitions)| Step::Commit { events, transitions }),
        2 => Just(Step::Compact),
        1 => Just(Step::Checkpoint),
        1 => Just(Step::Reopen),
    ]
}

/// The latest-wins fold every `state` consumer applies: per key the row
/// with max `seq` (ties: oldest), with the first non-empty payload
/// carried forward. Computed from a raw scan, so it works identically on
/// compacted and uncompacted databases.
fn fold_state(db: &Database) -> Vec<(i64, i64, String)> {
    let df = db.scan("state").expect("state scans");
    let mut best: HashMap<i64, (i64, String)> = HashMap::new();
    let mut payloads: HashMap<i64, String> = HashMap::new();
    for row in df.rows() {
        let key = row.get("key").and_then(Value::as_i64).unwrap();
        let seq = row.get("seq").and_then(Value::as_i64).unwrap();
        let payload = row.get("payload").map(|v| v.to_text()).unwrap_or_default();
        if !payload.is_empty() {
            payloads.entry(key).or_insert_with(|| payload.clone());
        }
        match best.get(&key) {
            Some((prev, _)) if *prev >= seq => {}
            _ => {
                best.insert(key, (seq, payload));
            }
        }
    }
    let mut out: Vec<(i64, i64, String)> = best
        .into_iter()
        .map(|(k, (s, p))| {
            let p = if p.is_empty() {
                payloads.get(&k).cloned().unwrap_or_default()
            } else {
                p
            };
            (k, s, p)
        })
        .collect();
    out.sort();
    out
}

fn check_equivalence(db: &Database, oracle: &Database, ts_hi: i64, ctx: &str) {
    // Append-only tables: raw scans byte-identical.
    assert_eq!(
        db.scan("events").unwrap(),
        oracle.scan("events").unwrap(),
        "events scan diverged {ctx}"
    );
    // Latest-wins tables: the fold agrees.
    assert_eq!(
        fold_state(db),
        fold_state(oracle),
        "state fold diverged {ctx}"
    );
    // Zone-map-pruned range windows equal the oracle's unpruned filter.
    for (lo, hi) in [(0, ts_hi / 3), (ts_hi / 2, ts_hi), (ts_hi + 10, ts_hi + 20)] {
        let q = Query::table("events")
            .filter("ts", CmpOp::Ge, lo)
            .filter("ts", CmpOp::Lt, hi);
        let pruned = db.pin().query(&q).unwrap();
        let oracle_rows = oracle.scan("events").unwrap().filter(|r| {
            r.get("ts")
                .and_then(Value::as_i64)
                .is_some_and(|t| t >= lo && t < hi)
        });
        assert_eq!(
            pruned.to_rows(),
            oracle_rows.to_rows(),
            "pruned window [{lo},{hi}) diverged {ctx}"
        );
    }
    // Indexed point lookups agree on the append-only table.
    let via_db = db.lookup("events", "kind", &"a".into()).unwrap();
    let via_oracle = oracle.lookup("events", "kind", &"a".into()).unwrap();
    assert_eq!(via_db, via_oracle, "indexed lookup diverged {ctx}");
}

proptest! {
    // Each case replays a whole interleaving on two databases plus disk
    // I/O for checkpoints/reopens; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compacted_run_is_equivalent_to_never_compacted_oracle(
        steps in proptest::collection::vec(arb_step(), 1..18),
        seed in 0u64..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "flor-prop-compact-{}-{seed}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("subject.wal");
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(flor_store::checkpoint::sidecar_path(&wal));

        let mut db = Database::open(&wal, schemas()).unwrap();
        let oracle = Database::in_memory(schemas());
        // Aggressive policy so small generated histories actually compact.
        let policy = CompactionPolicy {
            min_dead_rows: 1,
            min_dead_ratio: 0.0,
            target_segment_rows: 64,
        };
        let mut ts = 0i64;
        let mut seqs: HashMap<i64, i64> = HashMap::new();
        // A snapshot pinned mid-history, with its expected frames.
        type PinnedView = (flor_store::Snapshot, Vec<Vec<Value>>, Vec<Vec<Value>>);
        let mut pinned: Option<PinnedView> = None;

        for (i, step) in steps.iter().enumerate() {
            match step {
                Step::Commit { events, transitions } => {
                    for _ in 0..*events {
                        ts += 1;
                        let kind = if ts % 3 == 0 { "a" } else { "b" };
                        for d in [&db, &oracle] {
                            d.insert("events", vec![kind.into(), ts.into()]).unwrap();
                        }
                    }
                    for (key, with_payload) in transitions {
                        let seq = seqs.entry(*key).and_modify(|s| *s += 1).or_insert(1);
                        let payload = if *with_payload && *seq == 1 {
                            format!("payload-{key}")
                        } else {
                            String::new()
                        };
                        for d in [&db, &oracle] {
                            d.insert(
                                "state",
                                vec![(*key).into(), (*seq).into(), payload.as_str().into()],
                            )
                            .unwrap();
                        }
                    }
                    db.commit().unwrap();
                    oracle.commit().unwrap();
                }
                Step::Compact => {
                    // Pin before compacting: the pinned view must keep
                    // re-reading its exact pre-compaction rows.
                    let snap = db.pin();
                    let ev = snap.scan("events").unwrap().to_rows();
                    let st = snap.scan("state").unwrap().to_rows();
                    db.compact_with(&policy).unwrap();
                    prop_assert_eq!(
                        snap.scan("events").unwrap().to_rows(),
                        ev.clone(),
                        "pinned events re-scan changed at step {}", i
                    );
                    prop_assert_eq!(
                        snap.scan("state").unwrap().to_rows(),
                        st.clone(),
                        "pinned state re-scan changed at step {}", i
                    );
                    pinned = Some((snap, ev, st));
                }
                Step::Checkpoint => {
                    db.checkpoint().unwrap();
                }
                Step::Reopen => {
                    pinned = None; // pins don't survive a process restart
                    drop(db);
                    db = Database::open(&wal, schemas()).unwrap();
                }
            }
            check_equivalence(&db, &oracle, ts, &format!("at step {i} ({step:?})"));
            if let Some((snap, ev, st)) = &pinned {
                prop_assert_eq!(&snap.scan("events").unwrap().to_rows(), ev);
                prop_assert_eq!(&snap.scan("state").unwrap().to_rows(), st);
            }
        }
        // Final convergence through one more checkpoint + reopen.
        db.checkpoint().unwrap();
        drop(db);
        let db = Database::open(&wal, schemas()).unwrap();
        check_equivalence(&db, &oracle, ts, "after final reopen");

        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(flor_store::checkpoint::sidecar_path(&wal));
        let _ = std::fs::remove_dir(&dir);
    }
}
