//! Columnar-layout oracle property test: random commit / compact /
//! checkpoint / reopen interleavings must read byte-identically to a
//! row-major shadow model — full scans, index probes, range windows,
//! null and float and type-mixed predicates alike — and compacted
//! segments of a clustered table must satisfy the clustering invariant
//! (sorted rows, disjoint zone maps, binary-search range entry).
//!
//! The shadow is a plain `Vec<Vec<Value>>` in insertion order, filtered
//! with the same `CmpOp::eval` semantics the row-major engine used —
//! exactly what the columnar tight loops must reproduce (floats via
//! `total_cmp`, cross-type comparisons via type rank, nulls patched by
//! constant verdict).
//!
//! The interleaving keeps `ts` monotone (the paper's logical clock in
//! its normal, non-hindsight regime), so clustering's `(ts, rid)` sort
//! is order-preserving and every read stays byte-comparable. The
//! out-of-order regime — where clustering actually reorders — is
//! covered deterministically in `clustering_invariant_*` below with a
//! shuffled-timestamp monolith.

use flor_df::Value;
use flor_store::{CmpOp, ColType, ColumnDef, CompactionPolicy, Database, Query, TableSchema};
use proptest::prelude::*;

/// One clustered table exercising every column representation: `kind`
/// dictionary-encodes, `ts` is a primitive int vector, `note` is a
/// string column with nulls, `val` a float column (NaN included), and
/// `extra` is type-mixed so it lands in the `Any` fallback.
fn schemas() -> Vec<TableSchema> {
    vec![TableSchema::new(
        "events",
        vec![
            ColumnDef::indexed("kind", ColType::Str),
            ColumnDef::new("ts", ColType::Int),
            ColumnDef::new("note", ColType::Str),
            ColumnDef::new("val", ColType::Float),
            ColumnDef::new("extra", ColType::Any),
        ],
    )
    .with_cluster_by("ts")]
}

fn row_for(ts: i64) -> Vec<Value> {
    let kind = match ts % 3 {
        0 => "alpha",
        1 => "beta",
        _ => "gamma",
    };
    let note = if ts % 5 == 0 {
        Value::Null
    } else {
        Value::from(format!("note-{}", ts % 4).as_str())
    };
    let val = if ts % 11 == 0 {
        Value::Float(f64::NAN)
    } else {
        Value::Float(ts as f64 / 3.0)
    };
    let extra = match ts % 3 {
        0 => Value::Int(ts),
        1 => Value::from(format!("x{}", ts % 2).as_str()),
        _ => Value::Null,
    };
    vec![kind.into(), ts.into(), note, val, extra]
}

#[derive(Debug, Clone)]
enum Step {
    Commit { rows: usize },
    Compact,
    Checkpoint,
    Reopen,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (1usize..60).prop_map(|rows| Step::Commit { rows }),
        2 => Just(Step::Compact),
        1 => Just(Step::Checkpoint),
        1 => Just(Step::Reopen),
    ]
}

/// Every read the columnar engine serves, checked against the shadow.
fn check_against_shadow(db: &Database, shadow: &[Vec<Value>], ts_hi: i64, ctx: &str) {
    let snap = db.pin();
    // Full scan: byte-identical, column order included.
    assert_eq!(
        snap.scan("events").unwrap().to_rows(),
        shadow.to_vec(),
        "full scan diverged {ctx}"
    );
    // Index probe on the dictionary column.
    for kind in ["alpha", "gamma", "absent"] {
        let got = db.lookup("events", "kind", &kind.into()).unwrap().to_rows();
        let want: Vec<Vec<Value>> = shadow
            .iter()
            .filter(|r| r[0] == Value::from(kind))
            .cloned()
            .collect();
        assert_eq!(got, want, "index probe kind={kind} diverged {ctx}");
    }
    // Range windows over the cluster column, null/float/mixed residuals.
    let preds: Vec<(usize, CmpOp, Value)> = vec![
        (1, CmpOp::Ge, Value::Int(ts_hi / 3)),
        (1, CmpOp::Lt, Value::Int(ts_hi / 2 + 1)),
        (2, CmpOp::Eq, Value::Null),
        (2, CmpOp::Ne, Value::Null),
        (3, CmpOp::Gt, Value::Float(ts_hi as f64 / 6.0)),
        (3, CmpOp::Eq, Value::Float(f64::NAN)),
        (4, CmpOp::Ge, Value::Int(0)),
        (4, CmpOp::Lt, Value::from("x1")),
    ];
    let cols = ["kind", "ts", "note", "val", "extra"];
    for (ci, op, lit) in &preds {
        let q = Query::table("events").filter(cols[*ci], *op, lit.clone());
        let got = snap.query(&q).unwrap().to_rows();
        let want: Vec<Vec<Value>> = shadow
            .iter()
            .filter(|r| op.eval(&r[*ci], lit))
            .cloned()
            .collect();
        assert_eq!(
            got, want,
            "predicate {}{op:?}{lit:?} diverged {ctx}",
            cols[*ci]
        );
    }
    // A conjunctive window (Ge + Lt on ts) — the clustered
    // binary-search entry path once segments are sorted.
    let (lo, hi) = (ts_hi / 4, ts_hi / 4 + 9);
    let q = Query::table("events")
        .filter("ts", CmpOp::Ge, lo)
        .filter("ts", CmpOp::Lt, hi);
    let got = snap.query(&q).unwrap().to_rows();
    let want: Vec<Vec<Value>> = shadow
        .iter()
        .filter(|r| r[1].as_i64().is_some_and(|t| t >= lo && t < hi))
        .cloned()
        .collect();
    assert_eq!(got, want, "ts window [{lo},{hi}) diverged {ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn columnar_reads_match_row_major_shadow(
        steps in proptest::collection::vec(arb_step(), 1..16),
        seed in 0u64..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "flor-prop-columnar-{}-{seed}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("subject.wal");
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(flor_store::checkpoint::sidecar_path(&wal));

        let mut db = Database::open(&wal, schemas()).unwrap();
        let mut shadow: Vec<Vec<Value>> = Vec::new();
        let policy = CompactionPolicy {
            min_dead_rows: 1,
            min_dead_ratio: 0.0,
            target_segment_rows: 64,
        };
        let mut ts = 0i64;

        for (i, step) in steps.iter().enumerate() {
            match step {
                Step::Commit { rows } => {
                    for _ in 0..*rows {
                        ts += 1;
                        let row = row_for(ts);
                        db.insert("events", row.clone()).unwrap();
                        shadow.push(row);
                    }
                    db.commit().unwrap();
                }
                Step::Compact => {
                    // Pinned snapshots must keep re-reading their exact
                    // pre-compaction bytes.
                    let snap = db.pin();
                    let before = snap.scan("events").unwrap().to_rows();
                    db.compact_with(&policy).unwrap();
                    prop_assert_eq!(
                        snap.scan("events").unwrap().to_rows(),
                        before,
                        "pinned re-scan changed at step {}", i
                    );
                }
                Step::Checkpoint => {
                    db.checkpoint().unwrap();
                }
                Step::Reopen => {
                    drop(db);
                    db = Database::open(&wal, schemas()).unwrap();
                }
            }
            check_against_shadow(&db, &shadow, ts, &format!("at step {i} ({step:?})"));
        }
        db.checkpoint().unwrap();
        drop(db);
        let db = Database::open(&wal, schemas()).unwrap();
        check_against_shadow(&db, &shadow, ts, "after final reopen");

        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(flor_store::checkpoint::sidecar_path(&wal));
        let _ = std::fs::remove_dir(&dir);
    }
}

/// The out-of-order (hindsight) regime: one oversized commit of
/// shuffled timestamps, then compaction. The monolith forms a single
/// run that is split into sorted chunks, so post-compaction the table
/// must satisfy the clustering invariant — observable from the outside
/// as: scans in `(tstamp, insertion)` order, **disjoint** zone maps (a
/// narrow window admits at most 2 of many segments), and binary-search
/// window entry surfacing in the explain counters.
#[test]
fn clustering_invariant_after_compacting_shuffled_monolith() {
    const N: i64 = 3000;
    let db = Database::in_memory(schemas());
    // (i * 2437) % N with gcd(2437, N) = 1 is a permutation of 0..N:
    // maximally shuffled timestamps in one giant commit.
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for i in 0..N {
        let ts = (i * 2437) % N;
        let row = row_for(ts);
        db.insert("events", row.clone()).unwrap();
        rows.push(row);
    }
    db.commit().unwrap();

    let policy = CompactionPolicy {
        min_dead_rows: 1,
        min_dead_ratio: 0.0,
        target_segment_rows: 512,
    };
    let stats = db.compact_with(&policy).unwrap();
    assert!(
        stats.segments_after >= 5,
        "monolith split into sorted chunks"
    );

    // Scan order: globally sorted by (tstamp, insertion index) — the
    // single run was sorted as a whole before chunking.
    let mut want = rows.clone();
    want.sort_by_key(|r| r[1].as_i64().unwrap()); // stable: ties keep insertion order
    let snap = db.pin();
    assert_eq!(snap.scan("events").unwrap().to_rows(), want);

    // Disjoint zone maps: a window of width 100 over 3000 timestamps
    // must admit at most 2 of the ~6 chunks (vs all of them when the
    // shuffled rows were unsorted).
    let window = [
        flor_store::Predicate::new("ts", CmpOp::Ge, 1000),
        flor_store::Predicate::new("ts", CmpOp::Lt, 1100),
    ];
    let (visited, total) = snap.zone_prune_stats("events", &window).unwrap();
    assert!(total >= 5, "expected several chunks, got {total}");
    assert!(
        visited <= 2,
        "disjoint zone maps admit at most 2 chunks for a 100-wide window, got {visited}/{total}"
    );

    // Binary-search entry: the explain counters record clustered probes
    // and examine only the window's rows (plus at most one partial
    // chunk), not the whole admitted segments.
    let q = Query::table("events")
        .filter("ts", CmpOp::Ge, 1000)
        .filter("ts", CmpOp::Lt, 1100);
    let (df, ex) = snap.explain(&q).unwrap();
    assert_eq!(df.n_rows(), 100);
    assert!(
        ex.clustered_probes >= 1,
        "range preds consumed by binary search"
    );
    assert_eq!(
        ex.rows_examined, 100,
        "window binary-searched, not filtered"
    );
    assert_eq!(ex.segments_scanned, visited);

    // Re-compaction passes sorted chunks through untouched (idempotent).
    assert!(db.compact_with(&policy).unwrap().tables_compacted == 0);

    // And the query result equals the shadow's filter in sorted order.
    let got = snap.query(&q).unwrap().to_rows();
    let expect: Vec<Vec<Value>> = want
        .iter()
        .filter(|r| r[1].as_i64().is_some_and(|t| (1000..1100).contains(&t)))
        .cloned()
        .collect();
    assert_eq!(got, expect);
}

/// A pre-refactor (version 1, row-major) checkpoint sidecar must reopen
/// cleanly: rewrite the current sidecar in the legacy layout, reopen,
/// and expect the same bytes back.
#[test]
fn legacy_row_major_sidecar_reopens() {
    let dir = std::env::temp_dir().join(format!("flor-v1-reopen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("legacy.wal");
    let _ = std::fs::remove_file(&wal);
    let sidecar = flor_store::checkpoint::sidecar_path(&wal);
    let _ = std::fs::remove_file(&sidecar);

    let db = Database::open(&wal, schemas()).unwrap();
    for ts in 1..=300 {
        db.insert("events", row_for(ts)).unwrap();
    }
    db.commit().unwrap();
    db.checkpoint().unwrap();
    let expected = db.scan("events").unwrap().to_rows();
    drop(db);

    // Downgrade the sidecar to the legacy row-major layout in place —
    // the file a pre-columnar build would have left behind.
    let v2 = std::fs::read(&sidecar).unwrap();
    let data = flor_store::checkpoint::decode_checkpoint(v2).unwrap();
    std::fs::write(
        &sidecar,
        flor_store::checkpoint::encode_checkpoint_v1(&data),
    )
    .unwrap();

    let db = Database::open(&wal, schemas()).unwrap();
    assert!(
        db.recovery_info().from_checkpoint,
        "reopen must seed from the legacy sidecar"
    );
    assert_eq!(db.scan("events").unwrap().to_rows(), expected);

    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_file(&sidecar);
    let _ = std::fs::remove_dir(&dir);
}
