//! Metrics consistency under concurrency: writers, readers and a
//! maintenance thread (checkpoint + compaction) hammer one database
//! while a monitor thread takes registry snapshots. Every snapshot must
//! be internally consistent and every counter monotone across
//! successive snapshots; `pin_with_stats` must hand back a `DbStats`
//! that agrees with the snapshot pinned under the same version read —
//! the drift that motivated it.

use flor_df::Value;
use flor_store::{
    CmpOp, ColType, ColumnDef, CompactionPolicy, Database, LatestWins, MetricsSnapshot, Query,
    TableSchema,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn schema() -> Vec<TableSchema> {
    vec![TableSchema::new(
        "events",
        vec![
            ColumnDef::indexed("kind", ColType::Str),
            ColumnDef::new("seq", ColType::Int),
        ],
    )
    .with_latest_wins(LatestWins::new(&["kind", "seq"], None))]
}

/// Every histogram's `count` must equal the sum of its bucket counts,
/// and bucket bounds must be strictly ascending.
fn assert_internally_consistent(snap: &MetricsSnapshot) {
    for (name, h) in &snap.histograms {
        let bucket_sum: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(h.count, bucket_sum, "histogram {name}: count != Σ buckets");
        assert!(
            h.buckets.windows(2).all(|w| w[0].0 < w[1].0),
            "histogram {name}: bucket bounds not ascending"
        );
    }
}

/// Counters (and histogram counts) never go backwards between two
/// snapshots of the same registry.
fn assert_monotone(prev: &MetricsSnapshot, next: &MetricsSnapshot) {
    let earlier: HashMap<&str, u64> = prev
        .counters
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    for (name, v) in &next.counters {
        if let Some(&old) = earlier.get(name.as_str()) {
            assert!(*v >= old, "counter {name} went backwards: {old} -> {v}");
        }
    }
    let earlier: HashMap<&str, u64> = prev
        .histograms
        .iter()
        .map(|(n, h)| (n.as_str(), h.count))
        .collect();
    for (name, h) in &next.histograms {
        if let Some(&old) = earlier.get(name.as_str()) {
            assert!(
                h.count >= old,
                "histogram {name} count went backwards: {old} -> {}",
                h.count
            );
        }
    }
}

#[test]
fn metrics_stay_consistent_under_concurrency() {
    const WRITERS: usize = 2;
    const ROUNDS: usize = 60;
    const ROWS_PER_COMMIT: usize = 5;

    let db = Database::in_memory(schema());
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    for w in 0..WRITERS {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            for round in 0..ROUNDS {
                for i in 0..ROWS_PER_COMMIT {
                    db.insert(
                        "events",
                        vec![
                            Value::from(format!("kind{}", (round + i) % 7).as_str()),
                            Value::Int((w * ROUNDS + round) as i64),
                        ],
                    )
                    .expect("insert");
                }
                db.commit().expect("commit");
            }
        }));
    }

    // Readers: run traced queries (feeding the store.query.* counters)
    // and check the pin_with_stats agreement on every iteration.
    for _ in 0..2 {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (snap, stats) = db.pin_with_stats();
                let per_table: usize = stats.rows_per_table.iter().map(|&(_, n)| n).sum();
                assert_eq!(stats.total_rows, per_table, "DbStats disagrees with itself");
                assert_eq!(
                    snap.total_rows(),
                    stats.total_rows,
                    "snapshot and stats from one version read must agree"
                );
                let q = Query::table("events").filter_eq("kind", "kind3").filter(
                    "seq",
                    CmpOp::Ge,
                    10i64,
                );
                let (df, ex) = snap.explain(&q).expect("explain");
                assert_eq!(df.n_rows(), ex.rows_returned);
                assert!(ex.rows_examined >= ex.rows_matched);
                assert!(ex.rows_matched >= ex.rows_returned);
                assert_eq!(ex.segments_scanned + ex.segments_pruned, ex.segments_total);
                thread::sleep(Duration::from_micros(200));
            }
        }));
    }

    // Maintenance: checkpoints and compaction passes interleaved with
    // the writers, so their histograms fill under contention.
    {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let policy = CompactionPolicy::default();
            while !stop.load(Ordering::Relaxed) {
                db.checkpoint().expect("checkpoint");
                db.compact_with(&policy).expect("compact");
                thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    // Monitor: successive registry snapshots must be internally
    // consistent and monotone while everything above runs.
    let registry = db.metrics_registry();
    let mut prev = registry.snapshot();
    assert_internally_consistent(&prev);
    for _ in 0..50 {
        let next = registry.snapshot();
        assert_internally_consistent(&next);
        assert_monotone(&prev, &next);
        prev = next;
        thread::sleep(Duration::from_micros(500));
    }

    // Writers finish first; then release the loop threads.
    let (writers, loopers): (Vec<_>, Vec<_>) = {
        let mut it = handles.into_iter();
        let w: Vec<_> = (&mut it).take(WRITERS).collect();
        (w, it.collect())
    };
    for h in writers {
        h.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    for h in loopers {
        h.join().expect("looper");
    }

    // Final ledger: the commit histogram saw every commit, the row
    // counter every committed row, and the query accounting obeys
    // examined >= returned.
    let fin = registry.snapshot();
    assert_internally_consistent(&fin);
    assert_monotone(&prev, &fin);
    let commits = fin
        .histogram("store.commit.nanos")
        .expect("commit histogram exists")
        .count;
    // Two writers share the single logical writer's open transaction: an
    // insert can join the other writer's txn, whose commit() then seals
    // both writers' rows while the second commit() finds nothing open
    // (and records no sample). The exact invariant is one histogram
    // sample per *applied* commit — i.e. per epoch bump — bounded above
    // by the number of commit() calls.
    assert_eq!(commits, db.stats().wal_epoch);
    assert!(commits <= (WRITERS * ROUNDS) as u64);
    assert!(commits > 0);
    assert_eq!(
        fin.counter("store.commit.rows"),
        Some((WRITERS * ROUNDS * ROWS_PER_COMMIT) as u64)
    );
    assert!(fin.histogram("store.checkpoint.nanos").is_some());
    assert!(
        fin.counter("store.query.rows_examined").unwrap_or(0)
            >= fin.counter("store.query.rows_returned").unwrap_or(0)
    );
    // And the disabled registry really goes quiet: no new samples.
    registry.set_enabled(false);
    let before = registry.snapshot();
    for _ in 0..3 {
        db.insert("events", vec![Value::from("off"), Value::Int(0)])
            .expect("insert");
    }
    db.commit().expect("commit");
    let after = registry.snapshot();
    assert_eq!(
        before.histogram("store.commit.nanos"),
        after.histogram("store.commit.nanos"),
        "disabled registry must not record commit latency"
    );
}
