//! Property tests: WAL codec round-trips, crash-prefix recovery,
//! index/scan equivalence, and the change feed's slow-consumer path.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use flor_df::Value;
use flor_store::codec::{decode_record, decode_row, encode_record, encode_row, WalRecord};
use flor_store::feed::MAX_PENDING_BATCHES;
use flor_store::wal::recover;
use flor_store::{ColType, ColumnDef, Database, Query, TableSchema};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,24}".prop_map(Value::from),
    ]
}

fn values_bitwise_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

proptest! {
    /// Row encode/decode is the identity (floats compared bitwise so NaN
    /// payloads count).
    #[test]
    fn row_codec_round_trip(row in proptest::collection::vec(arb_value(), 0..12)) {
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        let back = decode_row(&mut buf.freeze()).unwrap();
        prop_assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(&back) {
            prop_assert!(values_bitwise_eq(a, b), "{:?} vs {:?}", a, b);
        }
    }

    /// Record frames survive concatenated stream decode.
    #[test]
    fn record_stream_round_trip(
        recs in proptest::collection::vec(
            prop_oneof![
                (any::<u64>(), "[a-z]{1,8}", proptest::collection::vec(arb_value(), 0..6))
                    .prop_map(|(txn, table, row)| WalRecord::Insert { txn, table, row }),
                any::<u64>().prop_map(|txn| WalRecord::Commit { txn }),
            ],
            0..20,
        )
    ) {
        let mut all = BytesMut::new();
        for r in &recs {
            all.put_slice(&encode_record(r));
        }
        let mut buf = all.freeze();
        let mut out = Vec::new();
        while let Some(r) = decode_record(&mut buf).unwrap() {
            out.push(r);
        }
        prop_assert_eq!(out.len(), recs.len());
    }

    /// Any prefix of a WAL recovers without error, and the set of
    /// recovered rows equals the rows of transactions whose commit marker
    /// made it into the prefix.
    #[test]
    fn crash_prefix_recovery(
        n_txns in 1usize..6,
        rows_per in 1usize..4,
        cut_frac in 0.0f64..1.0,
    ) {
        // Transaction ids are 1-based, as the engine allocates them.
        let mut bytes = Vec::new();
        for t in 0..n_txns {
            for r in 0..rows_per {
                bytes.extend_from_slice(&encode_record(&WalRecord::Insert {
                    txn: (t + 1) as u64,
                    table: "t".into(),
                    row: vec![Value::Int((t * 100 + r) as i64)],
                }));
            }
            bytes.extend_from_slice(&encode_record(&WalRecord::Commit { txn: (t + 1) as u64 }));
        }
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let rec = recover(&bytes[..cut]).unwrap();
        // Committed rows must come in whole-transaction batches.
        prop_assert_eq!(rec.committed.len() % rows_per, 0);
        let committed_txns = rec.committed.len() / rows_per;
        prop_assert!(committed_txns <= n_txns);
        // Committed transactions are a prefix (log order).
        for (i, (_, row)) in rec.committed.iter().enumerate() {
            let t = i / rows_per;
            let r = i % rows_per;
            prop_assert_eq!(row[0].clone(), Value::Int((t * 100 + r) as i64));
        }
    }

    /// Flipping any single byte of a single-frame WAL never yields a
    /// silently-wrong record: it either still decodes identically (flip in
    /// the already-consumed region can't happen with one frame), errors,
    /// or is detected by checksum.
    #[test]
    fn single_byte_corruption_never_silent(
        row in proptest::collection::vec(arb_value(), 1..4),
        flip_at_frac in 0.0f64..1.0,
    ) {
        let rec = WalRecord::Insert { txn: 1, table: "t".into(), row };
        let frame = encode_record(&rec);
        let mut bytes = frame.to_vec();
        let at = ((bytes.len() - 1) as f64 * flip_at_frac) as usize;
        bytes[at] ^= 0x01;
        let mut buf = Bytes::from(bytes);
        #[allow(clippy::single_match)]
        match decode_record(&mut buf) {
            Ok(Some(got)) => {
                // Only acceptable if the flip landed in the length field and
                // produced... actually a length change breaks checksum, so a
                // successful decode must never differ from the original.
                prop_assert!(
                    got != rec || buf.remaining() != 0 || got == rec,
                );
                // If it decodes fully it must be bit-identical content:
                if buf.remaining() == 0 {
                    prop_assert_eq!(got, rec);
                }
            }
            Ok(None) | Err(_) => {} // detected
        }
    }

    /// Query with an indexed equality predicate always equals filtered scan.
    #[test]
    fn index_scan_equivalence(keys in proptest::collection::vec(0u8..5, 0..50)) {
        let db = Database::in_memory(vec![TableSchema::new(
            "t",
            vec![
                ColumnDef::indexed("k", ColType::Str),
                ColumnDef::new("i", ColType::Int),
            ],
        )]);
        for (i, k) in keys.iter().enumerate() {
            db.insert("t", vec![format!("k{k}").into(), (i as i64).into()]).unwrap();
        }
        db.commit().unwrap();
        for k in 0u8..5 {
            let key = format!("k{k}");
            let via_q = Query::table("t").filter_eq("k", key.as_str()).execute(&db).unwrap();
            let via_s = db.scan("t").unwrap().filter_eq("k", &key.as_str().into());
            prop_assert_eq!(via_q.to_rows(), via_s.to_rows());
        }
    }

    /// Rollback leaves no trace; committed counts add up.
    #[test]
    fn txn_visibility(batches in proptest::collection::vec((0usize..5, any::<bool>()), 0..10)) {
        let db = Database::in_memory(vec![TableSchema::new(
            "t", vec![ColumnDef::new("v", ColType::Int)],
        )]);
        let mut expected = 0usize;
        for (n, commit) in batches {
            for i in 0..n {
                db.insert("t", vec![(i as i64).into()]).unwrap();
            }
            if commit {
                db.commit().unwrap();
                expected += n;
            } else {
                db.rollback();
            }
        }
        prop_assert_eq!(db.row_count("t").unwrap(), expected);
    }
}

/// A feed consumer maintaining a mirror of table `t`, with the documented
/// slow-consumer discipline: apply batches whose first commit is the
/// mirror's next epoch (coalesced batches span several commits but stay
/// contiguous); on an epoch gap (the feed shed batches we never polled),
/// rebuild from an epoch-stamped snapshot and continue. Returns how many
/// rebuilds a drain performed.
fn drain_into_mirror(
    db: &Database,
    sub: &flor_store::Subscription,
    mirror: &mut Vec<Vec<Value>>,
    epoch: &mut u64,
) -> usize {
    let mut rebuilds = 0usize;
    for batch in sub.poll() {
        if batch.epoch <= *epoch {
            continue; // already covered by a snapshot rebuild
        }
        if batch.first_epoch() != *epoch + 1 {
            let (e, frames) = db.snapshot(&["t"]).expect("snapshot");
            *mirror = frames[0].to_rows();
            *epoch = e;
            rebuilds += 1;
            continue;
        }
        for delta in batch.deltas.iter() {
            if delta.table == "t" {
                mirror.push(delta.row.clone());
            }
        }
        *epoch = batch.epoch;
    }
    rebuilds
}

proptest! {
    // Each case drives > MAX_PENDING_BATCHES commits; a handful of cases
    // exercises the coalesce/shed paths without dominating the suite.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Slow-consumer path under batch-count overflow: the queue coalesces
    /// adjacent batches instead of shedding, so the consumer catches up
    /// by pure delta application — zero rebuilds, mirror identical to the
    /// scan oracle throughout (the regression test for the PR 1..4
    /// rebuild-storm behaviour, where every overflow shed a batch).
    #[test]
    fn slow_consumer_coalesced_overflow_needs_no_rebuild(
        warmup in 0usize..5,
        overflow_extra in 1usize..40,
        tail in 1usize..15,
    ) {
        let db = Database::in_memory(vec![TableSchema::new(
            "t",
            vec![ColumnDef::new("v", ColType::Int)],
        )]);
        let sub = db.subscribe();
        let mut mirror: Vec<Vec<Value>> = Vec::new();
        let mut epoch = 0u64;
        let commit = |i: i64| {
            db.insert("t", vec![i.into()]).unwrap();
            db.commit().unwrap();
        };
        // Phase 1: the consumer keeps up — contiguous deltas, no rebuild.
        for i in 0..warmup {
            commit(i as i64);
            prop_assert_eq!(drain_into_mirror(&db, &sub, &mut mirror, &mut epoch), 0);
        }
        prop_assert_eq!(&mirror, &db.scan("t").unwrap().to_rows());
        // Phase 2: the consumer stalls while commits overflow its queue.
        for i in 0..(MAX_PENDING_BATCHES + overflow_extra) {
            commit(1000 + i as i64);
        }
        prop_assert_eq!(sub.pending(), MAX_PENDING_BATCHES, "queue stays bounded");
        // Phase 3: the drain applies coalesced batches — no gap at all.
        prop_assert_eq!(drain_into_mirror(&db, &sub, &mut mirror, &mut epoch), 0);
        prop_assert_eq!(&mirror, &db.scan("t").unwrap().to_rows());
        prop_assert_eq!(epoch, db.epoch());
        // Phase 4: later commits keep applying as plain deltas.
        for i in 0..tail {
            commit(-(i as i64) - 1);
            prop_assert_eq!(drain_into_mirror(&db, &sub, &mut mirror, &mut epoch), 0);
        }
        prop_assert_eq!(&mirror, &db.scan("t").unwrap().to_rows());
    }
}

proptest! {
    // Each case drives > MAX_PENDING_DELTAS rows; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Slow-consumer path past the queue's hard memory bound: oldest
    /// batches are shed, the consumer observes one epoch gap, rebuilds
    /// exactly once from a snapshot, and keeps applying deltas after.
    #[test]
    fn slow_consumer_past_delta_bound_rebuilds_once(
        rows_per_commit in 17usize..33,
        overflow_extra in 1usize..20,
        tail in 1usize..10,
    ) {
        use flor_store::feed::MAX_PENDING_DELTAS;
        let db = Database::in_memory(vec![TableSchema::new(
            "t",
            vec![ColumnDef::new("v", ColType::Int)],
        )]);
        let sub = db.subscribe();
        let mut mirror: Vec<Vec<Value>> = Vec::new();
        let mut epoch = 0u64;
        let mut next = 0i64;
        let commits = MAX_PENDING_DELTAS / rows_per_commit + overflow_extra;
        for _ in 0..commits {
            for _ in 0..rows_per_commit {
                db.insert("t", vec![next.into()]).unwrap();
                next += 1;
            }
            db.commit().unwrap();
        }
        prop_assert!(sub.pending() <= MAX_PENDING_BATCHES);
        // The drain detects the single front gap and rebuilds once.
        prop_assert_eq!(drain_into_mirror(&db, &sub, &mut mirror, &mut epoch), 1);
        prop_assert_eq!(&mirror, &db.scan("t").unwrap().to_rows());
        prop_assert_eq!(epoch, db.epoch());
        for _ in 0..tail {
            db.insert("t", vec![next.into()]).unwrap();
            next += 1;
            db.commit().unwrap();
            prop_assert_eq!(drain_into_mirror(&db, &sub, &mut mirror, &mut epoch), 0);
        }
        prop_assert_eq!(&mirror, &db.scan("t").unwrap().to_rows());
    }
}
