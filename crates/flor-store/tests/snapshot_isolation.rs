//! Snapshot-isolation properties of the segmented MVCC store.
//!
//! The contract under test: a [`flor_store::Snapshot`] pinned at epoch
//! `e` re-scans byte-identically forever, no matter how many commits the
//! writer lands after the pin; a fresh pin always equals the
//! from-scratch oracle of everything committed so far; and neither side
//! ever blocks the other (exercised for real by the threaded test at the
//! bottom, where readers scan at full speed while the writer commits).

use flor_df::Value;
use flor_store::{ColType, ColumnDef, Database, Query, TableSchema};
use proptest::prelude::*;

fn schema() -> Vec<TableSchema> {
    vec![TableSchema::new(
        "t",
        vec![
            ColumnDef::indexed("k", ColType::Str),
            ColumnDef::new("v", ColType::Int),
        ],
    )]
}

proptest! {
    /// Writer commits random batches while a pinned reader re-scans: the
    /// pinned view stays identical across every commit (scans, counts,
    /// and indexed lookups alike), and a fresh pin equals the oracle of
    /// all committed rows.
    #[test]
    fn pinned_view_is_stable_and_fresh_pins_match_oracle(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..4, -100i64..100), 0..6),
            1..10,
        ),
        pin_at in 0usize..10,
    ) {
        let db = Database::in_memory(schema());
        let mut oracle: Vec<Vec<Value>> = Vec::new();
        let mut epochs = 0u64;
        let mut pinned = None;
        let mut pinned_rows = Vec::new();
        let mut pinned_lookup = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            if i == pin_at.min(batches.len() - 1) && pinned.is_none() {
                let snap = db.pin();
                pinned_rows = snap.scan("t").unwrap().to_rows();
                pinned_lookup = snap.lookup("t", "k", &"k1".into()).unwrap().to_rows();
                pinned = Some(snap);
            }
            for (k, v) in batch {
                let row: Vec<Value> = vec![format!("k{k}").into(), (*v).into()];
                db.insert("t", row.clone()).unwrap();
                oracle.push(row);
            }
            db.commit().unwrap();
            // An empty batch opens no transaction, so its commit is a
            // no-op that leaves the epoch untouched.
            if !batch.is_empty() {
                epochs += 1;
            }
            // The pinned view must not move: same scan bytes, same count,
            // same index-served lookup, same epoch.
            if let Some(snap) = &pinned {
                prop_assert_eq!(&snap.scan("t").unwrap().to_rows(), &pinned_rows);
                prop_assert_eq!(snap.row_count("t").unwrap(), pinned_rows.len());
                prop_assert_eq!(
                    &snap.lookup("t", "k", &"k1".into()).unwrap().to_rows(),
                    &pinned_lookup
                );
            }
            // A fresh pin sees exactly the committed prefix, in order.
            let fresh = db.pin();
            prop_assert_eq!(fresh.scan("t").unwrap().to_rows(), oracle.clone());
            prop_assert_eq!(fresh.epoch(), epochs);
            // Index-backed query against the fresh pin equals the
            // filtered oracle.
            let via_index = fresh
                .query(&Query::table("t").filter_eq("k", "k2"))
                .unwrap()
                .to_rows();
            let filtered: Vec<Vec<Value>> = oracle
                .iter()
                .filter(|r| r[0] == Value::from("k2"))
                .cloned()
                .collect();
            prop_assert_eq!(via_index, filtered);
        }
    }

    /// Staged (uncommitted) rows never leak into any snapshot, pinned
    /// before or after the staging.
    #[test]
    fn staged_rows_invisible_to_every_pin(
        committed in 0usize..6,
        staged in 1usize..6,
    ) {
        let db = Database::in_memory(schema());
        for i in 0..committed {
            db.insert("t", vec![format!("k{i}").into(), (i as i64).into()]).unwrap();
        }
        db.commit().unwrap();
        let before = db.pin();
        for i in 0..staged {
            db.insert("t", vec!["staged".into(), (i as i64).into()]).unwrap();
        }
        let during = db.pin();
        prop_assert_eq!(before.row_count("t").unwrap(), committed);
        prop_assert_eq!(during.row_count("t").unwrap(), committed);
        db.rollback();
        prop_assert_eq!(db.pin().row_count("t").unwrap(), committed);
    }
}

/// Real concurrency: one writer lands fixed-size batches while readers
/// pin and scan at full speed. Every scan must observe a whole number of
/// batches (epoch-consistent prefix) that matches its pin's epoch — a
/// torn scan or a scan blocked into inconsistency would break the
/// row-count/epoch relation.
#[test]
fn concurrent_pinned_scans_see_consistent_prefixes() {
    const BATCHES: u64 = 200;
    const ROWS_PER_BATCH: usize = 5;
    const READERS: usize = 4;
    let db = Database::in_memory(schema());
    std::thread::scope(|s| {
        let writer = {
            let db = db.clone();
            s.spawn(move || {
                for b in 0..BATCHES {
                    for r in 0..ROWS_PER_BATCH {
                        db.insert("t", vec![format!("k{}", r % 3).into(), (b as i64).into()])
                            .unwrap();
                    }
                    db.commit().unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let db = db.clone();
                s.spawn(move || {
                    let mut scans = 0u64;
                    let mut last_epoch = 0u64;
                    while last_epoch < BATCHES {
                        let snap = db.pin();
                        let epoch = snap.epoch();
                        let df = snap.scan("t").unwrap();
                        // Epoch-consistent: exactly `epoch` whole batches.
                        assert_eq!(df.n_rows(), epoch as usize * ROWS_PER_BATCH);
                        // Monotone: epochs never run backwards.
                        assert!(epoch >= last_epoch);
                        last_epoch = epoch;
                        scans += 1;
                    }
                    scans
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    });
    assert_eq!(db.pin().row_count("t").unwrap(), BATCHES as usize * 5);
}
