//! Follower correctness under a live writer: a read-only
//! [`Database::open_follower`] tails the writer's WAL while the writer
//! appends, commits and checkpoints. The follower must
//!
//! * apply exactly the committed transactions, in order — staged rows of
//!   uncommitted transactions stay invisible;
//! * survive checkpoint truncation mid-tail by cleanly re-bootstrapping
//!   from the sidecar (never a torn read, never an error);
//! * keep its epoch monotone across polls and rebootstraps;
//! * converge to the writer's exact content within one poll of the
//!   writer going quiet;
//! * refuse every mutating entry point with [`StoreError::ReadOnly`].

use flor_df::Value;
use flor_store::{ColType, ColumnDef, CompactionPolicy, Database, StoreError, TableSchema};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn schema() -> Vec<TableSchema> {
    vec![TableSchema::new(
        "events",
        vec![
            ColumnDef::indexed("writer", ColType::Int),
            ColumnDef::new("seq", ColType::Int),
        ],
    )]
}

/// Sorted `(writer, seq)` pairs of the `events` table — content identity
/// that ignores segment layout and row order.
fn content(db: &Database) -> BTreeSet<(i64, i64)> {
    let df = db.pin().scan("events").expect("scan");
    let w = df.column("writer").expect("writer col");
    let s = df.column("seq").expect("seq col");
    w.values
        .iter()
        .zip(&s.values)
        .map(|(a, b)| (a.as_i64().unwrap(), b.as_i64().unwrap()))
        .collect()
}

#[test]
fn follower_tails_live_writer_through_checkpoints() {
    const ROUNDS: i64 = 60;
    const ROWS_PER_COMMIT: i64 = 4;
    const CHECKPOINT_EVERY: i64 = 7;

    let dir = std::env::temp_dir().join(format!("flor-wal-tailing-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("writer.wal");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("writer.wal.ckpt"));

    // The follower opens first, against a WAL that does not exist yet:
    // bootstrap from nothing must yield an empty, pollable database.
    let follower = Database::open_follower(&path, schema()).expect("open follower");
    assert!(follower.is_read_only());
    assert!(content(&follower).is_empty());

    let writer = Database::open(&path, schema()).expect("open writer");
    let writer_done = Arc::new(AtomicBool::new(false));

    let w_handle = {
        let writer = writer.clone();
        let done = Arc::clone(&writer_done);
        thread::spawn(move || {
            for round in 0..ROUNDS {
                for i in 0..ROWS_PER_COMMIT {
                    writer
                        .insert(
                            "events",
                            vec![Value::Int(round), Value::Int(round * ROWS_PER_COMMIT + i)],
                        )
                        .expect("insert");
                }
                writer.commit().expect("commit");
                // Frequent checkpoints truncate the WAL under the
                // tailing follower, forcing the rebootstrap path.
                if round % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1 {
                    writer.checkpoint().expect("checkpoint");
                }
                thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::Release);
        })
    };

    // Poll concurrently with the writer: every poll must succeed, rows
    // applied must be committed rows only (a multiple of the commit
    // batch in total), and the epoch must never go backwards.
    let mut last_epoch = 0u64;
    let mut rebootstraps = 0usize;
    while !writer_done.load(Ordering::Acquire) {
        let progress = follower.poll_tail().expect("poll under live writer");
        assert!(
            progress.epoch >= last_epoch,
            "epoch went backwards: {last_epoch} -> {}",
            progress.epoch
        );
        last_epoch = progress.epoch;
        rebootstraps += progress.rebootstrapped as usize;
        // Whatever the follower holds must be a subset of everything the
        // writer will ever commit — and consist of full commits.
        let seen = content(&follower);
        assert!(
            seen.len().is_multiple_of(ROWS_PER_COMMIT as usize),
            "follower exposed a torn commit: {} rows",
            seen.len()
        );
        thread::sleep(Duration::from_micros(300));
    }
    w_handle.join().expect("writer thread");

    // One more poll after the writer went quiet must fully converge —
    // the bounded-staleness contract.
    let progress = follower.poll_tail().expect("final poll");
    assert!(progress.epoch >= last_epoch);
    assert_eq!(
        content(&follower),
        content(&writer),
        "follower did not converge to the writer's content"
    );
    assert_eq!(
        follower.pin().total_rows(),
        writer.pin().total_rows(),
        "row counts diverge"
    );
    // The writer checkpointed ~ROUNDS/CHECKPOINT_EVERY times after the
    // follower bootstrapped, so the truncation path must have run.
    assert!(
        rebootstraps >= 1,
        "checkpoint truncation never exercised the rebootstrap path"
    );

    // Read-only refusal from every mutating entry point.
    assert!(matches!(
        follower.insert("events", vec![Value::Int(0), Value::Int(0)]),
        Err(StoreError::ReadOnly)
    ));
    assert!(matches!(follower.commit(), Err(StoreError::ReadOnly)));
    assert!(matches!(follower.checkpoint(), Err(StoreError::ReadOnly)));
    assert!(matches!(
        follower.compact_with(&CompactionPolicy::default()),
        Err(StoreError::ReadOnly)
    ));

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("writer.wal.ckpt"));
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn follower_keeps_uncommitted_rows_invisible_across_polls() {
    let dir = std::env::temp_dir().join(format!("flor-wal-staged-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("staged.wal");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("staged.wal.ckpt"));

    let writer = Database::open(&path, schema()).expect("open writer");
    writer
        .insert("events", vec![Value::Int(1), Value::Int(1)])
        .expect("insert");
    writer.commit().expect("commit");
    // Stage a second transaction but do NOT commit it yet.
    writer
        .insert("events", vec![Value::Int(2), Value::Int(2)])
        .expect("insert staged");

    let follower = Database::open_follower(&path, schema()).expect("open follower");
    follower.poll_tail().expect("poll");
    assert_eq!(
        content(&follower),
        BTreeSet::from([(1, 1)]),
        "uncommitted insert leaked into the follower"
    );

    // The commit marker lands; the staged rows (carried across polls)
    // become visible in one poll.
    writer.commit().expect("commit staged");
    let progress = follower.poll_tail().expect("poll after commit");
    assert_eq!(progress.committed_txns, 1);
    assert_eq!(content(&follower), BTreeSet::from([(1, 1), (2, 2)]));

    // A snapshot pinned on the follower is isolated from later polls.
    let pinned = follower.pin();
    let rows_before = pinned.total_rows();
    writer
        .insert("events", vec![Value::Int(3), Value::Int(3)])
        .expect("insert");
    writer.commit().expect("commit");
    follower.poll_tail().expect("poll");
    assert_eq!(pinned.total_rows(), rows_before, "pinned snapshot moved");
    assert!(follower.pin().total_rows() > rows_before);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("staged.wal.ckpt"));
    let _ = std::fs::remove_dir(&dir);
}
