//! Parser for textual Makefiles (the paper's Figs. 2 and 4).
//!
//! Supports the subset the paper uses: `target: deps` headers, indented
//! command lines (tab or spaces), `@`-prefixed silent commands, comments,
//! and `$(VAR)` substitution from a provided variable map.

use crate::graph::Makefile;
use std::collections::HashMap;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MakeParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for MakeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "makefile parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for MakeParseError {}

/// Parse Makefile text into a [`Makefile`] of command rules.
///
/// `vars` provides `$(NAME)` expansions (e.g. `PDFS` in the paper's
/// `process_pdfs: $(PDFS) pdf_demux.py`). Unknown variables expand empty.
pub fn parse_makefile(
    text: &str,
    vars: &HashMap<String, String>,
) -> Result<Makefile, MakeParseError> {
    let mut mk = Makefile::new();
    let mut current: Option<(String, Vec<String>, Vec<String>)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            continue;
        }
        let indented = raw.starts_with('\t') || raw.starts_with("    ") || raw.starts_with("  ");
        if indented {
            let Some((_, _, cmds)) = current.as_mut() else {
                return Err(MakeParseError {
                    message: "command outside a rule".to_string(),
                    line: line_no,
                });
            };
            let mut cmd = line.trim().to_string();
            if let Some(stripped) = cmd.strip_prefix('@') {
                cmd = stripped.to_string(); // silent marker, same semantics here
            }
            if !cmd.is_empty() {
                cmds.push(expand(&cmd, vars));
            }
            continue;
        }
        // New rule header.
        if let Some((t, d, c)) = current.take() {
            let deps: Vec<&str> = d.iter().map(String::as_str).collect();
            let cmds: Vec<&str> = c.iter().map(String::as_str).collect();
            mk.cmd_rule(&t, &deps, &cmds);
        }
        let Some((target, deps)) = line.split_once(':') else {
            return Err(MakeParseError {
                message: format!("expected 'target: deps', got {line:?}"),
                line: line_no,
            });
        };
        let target = expand(target.trim(), vars);
        if target.is_empty() {
            return Err(MakeParseError {
                message: "empty target".to_string(),
                line: line_no,
            });
        }
        // Expand before splitting so a variable holding a file list
        // (`$(PDFS)`) contributes multiple dependencies.
        let deps: Vec<String> = expand(deps, vars)
            .split_whitespace()
            .map(str::to_string)
            .collect();
        current = Some((target, deps, Vec::new()));
    }
    if let Some((t, d, c)) = current.take() {
        let deps: Vec<&str> = d.iter().map(String::as_str).collect();
        let cmds: Vec<&str> = c.iter().map(String::as_str).collect();
        mk.cmd_rule(&t, &deps, &cmds);
    }
    Ok(mk)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn expand(s: &str, vars: &HashMap<String, String>) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(start) = rest.find("$(") {
        out.push_str(&rest[..start]);
        match rest[start + 2..].find(')') {
            Some(end) => {
                let name = &rest[start + 2..start + 2 + end];
                if let Some(v) = vars.get(name) {
                    out.push_str(v);
                }
                rest = &rest[start + 2 + end + 1..];
            }
            None => {
                out.push_str(&rest[start..]);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

/// The paper's Fig. 2 Makefile, verbatim.
pub const FIG2_MAKEFILE: &str = "\
prep:
\tpython prep.py

infer: prep
\tpython infer.py

run: infer
\tflask run

train: prep
\tpython train.py
";

/// The paper's Fig. 4 PDF-Parser Makefile (verbatim modulo `$(PDFS)`).
pub const FIG4_MAKEFILE: &str = "\
process_pdfs: $(PDFS) pdf_demux.py
\t@echo \"Processing PDF files...\"
\t@python pdf_demux.py
\t@touch process_pdfs

featurize: process_pdfs featurize.py
\t@echo \"Featurizing Data...\"
\t@python featurize.py
\t@touch featurize

train: featurize hand_label train.py
\t@echo \"Training...\"
\t@python train.py

model.pth: train export_ckpt.py
\t@echo \"Generating model...\"
\t@python export_ckpt.py

infer: model.pth infer.py
\t@echo \"Inferencing...\"
\t@python infer.py
\t@touch infer

hand_label: label_by_hand.py
\t@echo \"Labeling by hand\"
\t@python label_by_hand.py
\t@touch hand_label

run: featurize infer
\t@echo \"Starting Flask...\"
\tflask run
";

#[cfg(test)]
mod tests {
    use super::*;

    fn no_vars() -> HashMap<String, String> {
        HashMap::new()
    }

    #[test]
    fn fig2_parses() {
        let mk = parse_makefile(FIG2_MAKEFILE, &no_vars()).unwrap();
        assert_eq!(mk.rules().len(), 4);
        let infer = mk.rule_for("infer").unwrap();
        assert_eq!(infer.deps, vec!["prep"]);
        let run = mk.rule_for("run").unwrap();
        assert_eq!(run.deps, vec!["infer"]);
    }

    #[test]
    fn fig4_parses_with_vars() {
        let mut vars = HashMap::new();
        vars.insert("PDFS".to_string(), "pdfs/a.pdf pdfs/b.pdf".to_string());
        let mk = parse_makefile(FIG4_MAKEFILE, &vars).unwrap();
        assert_eq!(mk.rules().len(), 7);
        let pp = mk.rule_for("process_pdfs").unwrap();
        assert_eq!(pp.deps, vec!["pdfs/a.pdf", "pdfs/b.pdf", "pdf_demux.py"]);
        let train = mk.rule_for("train").unwrap();
        assert_eq!(train.deps, vec!["featurize", "hand_label", "train.py"]);
        // @-prefix stripped from commands.
        match &pp.action {
            crate::graph::Action::Cmds(cmds) => {
                assert_eq!(cmds[0], "echo \"Processing PDF files...\"");
                assert_eq!(cmds[2], "touch process_pdfs");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_vars_expand_empty() {
        let mk = parse_makefile("a: $(MISSING) b\n\tcmd\n", &no_vars()).unwrap();
        assert_eq!(mk.rule_for("a").unwrap().deps, vec!["b"]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "# top comment\n\na: b # trailing\n\tdo thing # not a comment in cmd? stripped anyway\n";
        let mk = parse_makefile(src, &no_vars()).unwrap();
        assert_eq!(mk.rule_for("a").unwrap().deps, vec!["b"]);
    }

    #[test]
    fn command_outside_rule_errors() {
        let err = parse_makefile("\tstray command\n", &no_vars()).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn malformed_header_errors() {
        assert!(parse_makefile("not a rule header\n", &no_vars()).is_err());
        assert!(parse_makefile(" : deps\n\tcmd\n", &no_vars()).is_err());
    }

    #[test]
    fn expansion_inside_commands() {
        let mut vars = HashMap::new();
        vars.insert("PY".to_string(), "python3".to_string());
        let mk = parse_makefile("t:\n\t$(PY) run.py\n", &vars).unwrap();
        match &mk.rule_for("t").unwrap().action {
            crate::graph::Action::Cmds(c) => assert_eq!(c[0], "python3 run.py"),
            _ => panic!(),
        }
    }

    #[test]
    fn fig2_topology_matches_paper_dataflow() {
        let mk = parse_makefile(FIG2_MAKEFILE, &no_vars()).unwrap();
        let order = mk.topo_order("run").unwrap();
        let pos = |t: &str| order.iter().position(|x| x == t).unwrap();
        assert!(pos("prep") < pos("infer"));
        assert!(pos("infer") < pos("run"));
    }
}
