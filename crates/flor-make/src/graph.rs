//! The build graph: rules, staleness, topological execution.

use flor_git::VirtualFs;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// Signature of a rule's callback action.
pub type ActionFn = dyn Fn(&VirtualFs) -> Result<(), String>;

/// What a rule runs when its target is stale.
#[derive(Clone)]
pub enum Action {
    /// A Rust callback over the filesystem (library embedding).
    Func(Rc<ActionFn>),
    /// Shell-style command lines, executed by the runner passed to
    /// [`Makefile::build_with`] (textual Makefiles, paper Fig. 4).
    Cmds(Vec<String>),
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Func(_) => write!(f, "Action::Func(..)"),
            Action::Cmds(c) => write!(f, "Action::Cmds({c:?})"),
        }
    }
}

/// One build rule: `target: deps` + an action.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The file this rule produces (stamp files for phony targets).
    pub target: String,
    /// Files/targets this rule depends on.
    pub deps: Vec<String>,
    /// What to run when stale.
    pub action: Action,
}

/// Errors from building.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MakeError {
    /// Dependency cycle through these targets.
    Cycle(Vec<String>),
    /// A dependency is neither a rule target nor an existing file.
    MissingDep {
        /// The rule needing it.
        target: String,
        /// The missing dependency.
        dep: String,
    },
    /// No rule for the requested target and no such file.
    NoRule(String),
    /// An action failed.
    ActionFailed {
        /// The failing target.
        target: String,
        /// The error.
        message: String,
    },
}

impl fmt::Display for MakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MakeError::Cycle(path) => write!(f, "dependency cycle: {}", path.join(" -> ")),
            MakeError::MissingDep { target, dep } => {
                write!(f, "no rule to make {dep:?}, needed by {target:?}")
            }
            MakeError::NoRule(t) => write!(f, "no rule to make target {t:?}"),
            MakeError::ActionFailed { target, message } => {
                write!(f, "action for {target:?} failed: {message}")
            }
        }
    }
}

impl std::error::Error for MakeError {}

/// What happened during one `build` call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Targets whose actions ran, in execution order.
    pub executed: Vec<String>,
    /// Targets found fresh and skipped (the `cached` flag of the paper's
    /// `build_deps` table).
    pub cached: Vec<String>,
}

impl BuildReport {
    /// Whether a target's action ran.
    pub fn ran(&self, target: &str) -> bool {
        self.executed.iter().any(|t| t == target)
    }
}

/// A set of rules, i.e. a Makefile.
#[derive(Debug, Clone, Default)]
pub struct Makefile {
    rules: Vec<Rule>,
    by_target: HashMap<String, usize>,
}

impl Makefile {
    /// Empty makefile.
    pub fn new() -> Makefile {
        Makefile::default()
    }

    /// Add a rule with a Rust callback action. Later rules for the same
    /// target replace earlier ones.
    pub fn rule(
        &mut self,
        target: &str,
        deps: &[&str],
        action: impl Fn(&VirtualFs) -> Result<(), String> + 'static,
    ) -> &mut Self {
        self.push(Rule {
            target: target.to_string(),
            deps: deps.iter().map(|s| s.to_string()).collect(),
            action: Action::Func(Rc::new(action)),
        });
        self
    }

    /// Add a rule with textual commands.
    pub fn cmd_rule(&mut self, target: &str, deps: &[&str], cmds: &[&str]) -> &mut Self {
        self.push(Rule {
            target: target.to_string(),
            deps: deps.iter().map(|s| s.to_string()).collect(),
            action: Action::Cmds(cmds.iter().map(|s| s.to_string()).collect()),
        });
        self
    }

    fn push(&mut self, rule: Rule) {
        match self.by_target.get(&rule.target) {
            Some(&i) => self.rules[i] = rule,
            None => {
                self.by_target.insert(rule.target.clone(), self.rules.len());
                self.rules.push(rule);
            }
        }
    }

    /// All rules in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Look up a rule.
    pub fn rule_for(&self, target: &str) -> Option<&Rule> {
        self.by_target.get(target).map(|&i| &self.rules[i])
    }

    /// Build `target`, running only stale rules. `Func` actions execute
    /// directly; `Cmds` actions error (use [`Makefile::build_with`]).
    pub fn build(&self, target: &str, fs: &VirtualFs) -> Result<BuildReport, MakeError> {
        self.build_with(target, fs, &mut |cmd| {
            Err(format!("no runner provided for command {cmd:?}"))
        })
    }

    /// Build `target` with a runner for textual commands. The runner is
    /// invoked once per command line of each stale rule.
    pub fn build_with(
        &self,
        target: &str,
        fs: &VirtualFs,
        runner: &mut dyn FnMut(&str) -> Result<(), String>,
    ) -> Result<BuildReport, MakeError> {
        let mut report = BuildReport::default();
        let mut visiting = Vec::new();
        let mut done: HashSet<String> = HashSet::new();
        self.visit(target, fs, runner, &mut report, &mut visiting, &mut done)?;
        Ok(report)
    }

    fn visit(
        &self,
        target: &str,
        fs: &VirtualFs,
        runner: &mut dyn FnMut(&str) -> Result<(), String>,
        report: &mut BuildReport,
        visiting: &mut Vec<String>,
        done: &mut HashSet<String>,
    ) -> Result<bool, MakeError> {
        // Returns whether the target was rebuilt (directly or transitively).
        if done.contains(target) {
            return Ok(false);
        }
        if visiting.iter().any(|t| t == target) {
            let mut cycle = visiting.clone();
            cycle.push(target.to_string());
            return Err(MakeError::Cycle(cycle));
        }
        let Some(rule) = self.rule_for(target) else {
            // Source file: fine if it exists.
            if fs.exists(target) {
                done.insert(target.to_string());
                return Ok(false);
            }
            return Err(MakeError::NoRule(target.to_string()));
        };
        visiting.push(target.to_string());
        let mut dep_rebuilt = false;
        for dep in &rule.deps {
            if !self.by_target.contains_key(dep) && !fs.exists(dep) {
                visiting.pop();
                return Err(MakeError::MissingDep {
                    target: target.to_string(),
                    dep: dep.clone(),
                });
            }
            dep_rebuilt |= self.visit(dep, fs, runner, report, visiting, done)?;
        }
        visiting.pop();
        done.insert(target.to_string());

        let stale = dep_rebuilt || self.is_stale(rule, fs);
        if !stale {
            report.cached.push(target.to_string());
            return Ok(false);
        }
        match &rule.action {
            Action::Func(f) => f(fs).map_err(|message| MakeError::ActionFailed {
                target: target.to_string(),
                message,
            })?,
            Action::Cmds(cmds) => {
                for cmd in cmds {
                    runner(cmd).map_err(|message| MakeError::ActionFailed {
                        target: target.to_string(),
                        message,
                    })?;
                }
            }
        }
        // Make semantics require the target to exist afterwards; stamp it
        // if the action didn't (the paper's Makefile does `@touch target`).
        if fs.mtime(rule.target.as_str()).is_none_or(|m| {
            rule.deps
                .iter()
                .filter_map(|d| fs.mtime(d))
                .any(|dm| dm > m)
        }) {
            fs.touch(&rule.target);
        }
        report.executed.push(target.to_string());
        Ok(true)
    }

    fn is_stale(&self, rule: &Rule, fs: &VirtualFs) -> bool {
        let Some(target_mtime) = fs.mtime(&rule.target) else {
            return true; // target missing
        };
        rule.deps
            .iter()
            .any(|d| fs.mtime(d).is_none_or(|dm| dm > target_mtime))
    }

    /// Topological order of all targets reachable from `target` (deps
    /// first). Errors on cycles.
    pub fn topo_order(&self, target: &str) -> Result<Vec<String>, MakeError> {
        let mut order = Vec::new();
        let mut visiting = Vec::new();
        let mut done = HashSet::new();
        self.topo_visit(target, &mut order, &mut visiting, &mut done)?;
        Ok(order)
    }

    fn topo_visit(
        &self,
        target: &str,
        order: &mut Vec<String>,
        visiting: &mut Vec<String>,
        done: &mut HashSet<String>,
    ) -> Result<(), MakeError> {
        if done.contains(target) {
            return Ok(());
        }
        if visiting.iter().any(|t| t == target) {
            let mut cycle = visiting.clone();
            cycle.push(target.to_string());
            return Err(MakeError::Cycle(cycle));
        }
        visiting.push(target.to_string());
        if let Some(rule) = self.rule_for(target) {
            for dep in &rule.deps {
                self.topo_visit(dep, order, visiting, done)?;
            }
        }
        visiting.pop();
        done.insert(target.to_string());
        order.push(target.to_string());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_marker(fs: &VirtualFs, name: &str) {
        let count = fs
            .read(name)
            .map(|c| c.parse::<u32>().unwrap_or(0))
            .unwrap_or(0);
        fs.write(name, &(count + 1).to_string());
    }

    fn pipeline() -> (Makefile, VirtualFs) {
        // Mirrors the paper's Fig. 2 Makefile: prep -> {infer, train}; run -> infer.
        let fs = VirtualFs::new();
        fs.write("prep.py", "# preprocessing code");
        fs.write("infer.py", "# inference code");
        fs.write("train.py", "# training code");
        let mut mk = Makefile::new();
        mk.rule("prep", &["prep.py"], |fs| {
            write_marker(fs, "prep");
            Ok(())
        });
        mk.rule("infer", &["prep", "infer.py"], |fs| {
            write_marker(fs, "infer");
            Ok(())
        });
        mk.rule("train", &["prep", "train.py"], |fs| {
            write_marker(fs, "train");
            Ok(())
        });
        mk.rule("run", &["infer"], |fs| {
            write_marker(fs, "run");
            Ok(())
        });
        (mk, fs)
    }

    #[test]
    fn full_build_runs_in_dependency_order() {
        let (mk, fs) = pipeline();
        let report = mk.build("run", &fs).unwrap();
        assert_eq!(report.executed, vec!["prep", "infer", "run"]);
        assert!(report.cached.is_empty());
    }

    #[test]
    fn second_build_is_fully_cached() {
        let (mk, fs) = pipeline();
        mk.build("run", &fs).unwrap();
        let report = mk.build("run", &fs).unwrap();
        assert!(report.executed.is_empty());
        assert_eq!(report.cached, vec!["prep", "infer", "run"]);
        assert_eq!(fs.read("prep").unwrap(), "1"); // ran exactly once
    }

    #[test]
    fn touching_a_source_rebuilds_downstream_only() {
        let (mk, fs) = pipeline();
        mk.build("run", &fs).unwrap();
        mk.build("train", &fs).unwrap();
        fs.write("infer.py", "# changed inference");
        let report = mk.build("run", &fs).unwrap();
        assert_eq!(report.executed, vec!["infer", "run"]);
        assert!(report.cached.contains(&"prep".to_string()));
        // train untouched by this build.
        assert_eq!(fs.read("train").unwrap(), "1");
    }

    #[test]
    fn changing_root_source_rebuilds_everything() {
        let (mk, fs) = pipeline();
        mk.build("run", &fs).unwrap();
        fs.write("prep.py", "# new prep");
        let report = mk.build("run", &fs).unwrap();
        assert_eq!(report.executed, vec!["prep", "infer", "run"]);
    }

    #[test]
    fn cycle_detected() {
        let mut mk = Makefile::new();
        mk.cmd_rule("a", &["b"], &[]);
        mk.cmd_rule("b", &["a"], &[]);
        let fs = VirtualFs::new();
        match mk.build("a", &fs) {
            Err(MakeError::Cycle(path)) => assert!(path.len() >= 3),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn missing_dep_and_no_rule() {
        let mut mk = Makefile::new();
        mk.cmd_rule("a", &["ghost"], &[]);
        let fs = VirtualFs::new();
        assert!(matches!(
            mk.build("a", &fs),
            Err(MakeError::MissingDep { .. })
        ));
        assert!(matches!(mk.build("nope", &fs), Err(MakeError::NoRule(_))));
    }

    #[test]
    fn action_failure_propagates() {
        let mut mk = Makefile::new();
        mk.rule("bad", &[], |_| Err("boom".to_string()));
        let fs = VirtualFs::new();
        match mk.build("bad", &fs) {
            Err(MakeError::ActionFailed { target, message }) => {
                assert_eq!(target, "bad");
                assert_eq!(message, "boom");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn cmd_rules_use_runner() {
        let mut mk = Makefile::new();
        mk.cmd_rule("out", &[], &["python step1.py", "python step2.py"]);
        let fs = VirtualFs::new();
        let mut ran = Vec::new();
        let report = mk
            .build_with("out", &fs, &mut |cmd| {
                ran.push(cmd.to_string());
                Ok(())
            })
            .unwrap();
        assert_eq!(ran, vec!["python step1.py", "python step2.py"]);
        assert!(report.ran("out"));
        assert!(fs.exists("out")); // auto-stamped
    }

    #[test]
    fn source_file_as_target_is_fresh() {
        let (mk, fs) = pipeline();
        // Building a plain source file is a no-op.
        let report = mk.build("prep.py", &fs).unwrap();
        assert!(report.executed.is_empty());
    }

    #[test]
    fn topo_order_deps_first() {
        let (mk, _) = pipeline();
        let order = mk.topo_order("run").unwrap();
        let pos = |t: &str| order.iter().position(|x| x == t).unwrap();
        assert!(pos("prep.py") < pos("prep"));
        assert!(pos("prep") < pos("infer"));
        assert!(pos("infer") < pos("run"));
    }

    #[test]
    fn rule_replacement() {
        let mut mk = Makefile::new();
        mk.cmd_rule("t", &[], &["old"]);
        mk.cmd_rule("t", &[], &["new"]);
        match &mk.rule_for("t").unwrap().action {
            Action::Cmds(c) => assert_eq!(c, &vec!["new".to_string()]),
            _ => panic!(),
        }
        assert_eq!(mk.rules().len(), 1);
    }

    #[test]
    fn diamond_dependency_runs_once() {
        // a -> b, c; b -> d; c -> d
        let fs = VirtualFs::new();
        let mut mk = Makefile::new();
        mk.rule("d", &[], |fs| {
            write_marker(fs, "d");
            Ok(())
        });
        mk.cmd_rule("b", &["d"], &[]);
        mk.cmd_rule("c", &["d"], &[]);
        mk.cmd_rule("a", &["b", "c"], &[]);
        let report = mk.build_with("a", &fs, &mut |_| Ok(())).unwrap();
        assert_eq!(fs.read("d").unwrap(), "1");
        assert_eq!(report.executed, vec!["d", "b", "c", "a"]);
    }
}
