//! # flor-make — the behavioral-context substrate (Make-lite)
//!
//! FlorDB "remains agnostic to the choice of workflow management system"
//! (CIDR 2025, §2.1) but its demo orchestrates pipelines with Make (Figs. 2
//! and 4), and the `build_deps` table (Fig. 1) records `(vid, target, deps,
//! cmds, cached)` rows. This crate supplies that substrate over the
//! `flor-git` [`flor_git::VirtualFs`]:
//!
//! * [`Makefile`] — rules with callback or textual-command actions, mtime
//!   staleness, cycle detection, and [`BuildReport`]s distinguishing
//!   executed from cached targets (the paper's incremental-run behaviour);
//! * [`parse_makefile`] — a parser for the paper's Makefile subset,
//!   including the verbatim [`FIG2_MAKEFILE`] and [`FIG4_MAKEFILE`].

#![warn(missing_docs)]

pub mod graph;
pub mod parse;

pub use graph::{Action, BuildReport, MakeError, Makefile, Rule};
pub use parse::{parse_makefile, MakeParseError, FIG2_MAKEFILE, FIG4_MAKEFILE};
