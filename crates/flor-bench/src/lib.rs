//! Shared workload builders for the FlorDB benchmark suite.
//!
//! Every bench and the `experiments` binary build their workloads from
//! here, so the criterion benches and the printed paper-style tables
//! measure identical setups. See EXPERIMENTS.md for the experiment index.

use flor_core::{run_script, Flor};
use flor_obs::MetricsRegistry;
use flor_record::CheckpointPolicy;
use std::time::{Duration, Instant};

/// A Fig. 5-style training script with controllable cost.
///
/// `epochs` sets the checkpoint-loop length; `work` adds `work(units)` of
/// deterministic spin per epoch so checkpoint/replay savings are measurable
/// in both wall-clock and the interpreter's `work_units` counter.
pub fn train_script(epochs: usize, work: usize, with_metrics: bool) -> String {
    let metrics = if with_metrics {
        "        let m = eval_model(net, data);\n        flor.log(\"acc\", m[0]);\n        flor.log(\"recall\", m[1]);\n"
    } else {
        ""
    };
    format!(
        r#"let data = load_dataset("first_page", 120, 42);
let epochs = flor.arg("epochs", {epochs});
let net = make_model(5, 6, 2, 7);
with flor.checkpointing(net) {{
    for e in flor.loop("epoch", range(0, epochs)) {{
        work({work});
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
{metrics}    }}
}}
"#
    )
}

/// A FlorDB instance with `versions` recorded runs of the metric-less
/// training script (checkpoint at every boundary), plus the latest
/// version's source upgraded to log metrics — ready for `backfill`.
pub fn flor_with_history(versions: usize, epochs: usize, work: usize) -> Flor {
    let flor = Flor::new("bench");
    flor.fs
        .write("train.fl", &train_script(epochs, work, false));
    for _ in 0..versions {
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).expect("record run");
    }
    flor.fs.write("train.fl", &train_script(epochs, work, true));
    flor
}

/// Populate a FlorDB instance with `runs` runs × `epochs` epochs, logging
/// each name in `names` once per epoch — the dataframe/pivot workload.
pub fn flor_with_logs(runs: usize, epochs: usize, names: &[&str]) -> Flor {
    let flor = Flor::new("bench");
    flor.set_filename("train.fl");
    for _run in 0..runs {
        flor.for_each("epoch", 0..epochs, |flor, &e| {
            for (i, name) in names.iter().enumerate() {
                flor.log(name, (e * (i + 1)) as f64 * 0.01);
            }
        });
        flor.commit("run").expect("commit");
    }
    flor
}

/// Measure `work` with metrics collection enabled vs disabled and return
/// the wall-clock ratio `enabled / disabled`.
///
/// Runs `pairs` back-to-back enabled/disabled pairs, choosing the order
/// within each pair by a deterministic LCG, and returns the **median of
/// the per-pair ratios**: pairing cancels slow machine drift, the
/// random order keeps periodic workload effects from resonating with a
/// fixed mode pattern, and the median discards the pairs a one-off
/// spike lands in. A few untimed warmup calls precede measurement; the
/// registry is left enabled on return.
///
/// Suited to **steady-state** work (reads, or writes whose cost does
/// not trend). For `work` that grows the database, per-call cost is
/// nonstationary — commit-time segment folds fire on a geometric
/// schedule and grow with history — and no interleaving rescues the
/// comparison; measure those by running the same deterministic workload
/// on identical fresh instances per mode instead (see the
/// `query_pushdown` bench's overhead gate).
///
/// The observability acceptance gate asserts this ratio stays under
/// 1.05 on the hot query and commit paths.
pub fn instrumentation_overhead(
    registry: &MetricsRegistry,
    pairs: usize,
    work: impl FnMut(),
) -> f64 {
    let ratio = overhead_ratio(pairs, |on| registry.set_enabled(on), work);
    registry.set_enabled(true);
    ratio
}

/// The measurement engine behind [`instrumentation_overhead`],
/// generalized over *what* is being toggled: `set_mode(true)` arms the
/// feature under test (metrics, tracing, ...), `set_mode(false)` disarms
/// it, and the returned ratio is `armed / disarmed` wall-clock — same
/// paired-LCG-ordered, median-of-ratios discipline, same steady-state
/// caveat. The mode is left wherever the last timed run put it; callers
/// restore their preferred state.
pub fn overhead_ratio(pairs: usize, mut set_mode: impl FnMut(bool), mut work: impl FnMut()) -> f64 {
    assert!(pairs > 0, "need at least one measurement pair");
    let mut time_one = |enabled: bool, work: &mut dyn FnMut()| {
        set_mode(enabled);
        let t = Instant::now();
        work();
        t.elapsed()
    };
    for _ in 0..3 {
        time_one(true, &mut work);
        time_one(false, &mut work);
    }
    let mut on: Vec<Duration> = Vec::with_capacity(pairs);
    let mut off: Vec<Duration> = Vec::with_capacity(pairs);
    let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
    for _ in 0..pairs {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (lcg >> 33) & 1 == 0 {
            on.push(time_one(true, &mut work));
            off.push(time_one(false, &mut work));
        } else {
            off.push(time_one(false, &mut work));
            on.push(time_one(true, &mut work));
        }
    }
    let mut ratios: Vec<f64> = on
        .iter()
        .zip(off.iter())
        .map(|(a, b)| a.as_secs_f64() / b.as_secs_f64().max(1e-12))
        .collect();
    ratios.sort_by(f64::total_cmp);
    ratios[pairs / 2]
}

/// Two script versions sized by duplicating pipeline stages: `old` lacks
/// the metric logs the `new` version has — the propagation workload.
pub fn versioned_scripts(stages: usize) -> (String, String) {
    let mut old = String::new();
    let mut new = String::new();
    for s in 0..stages {
        let base = format!(
            "let data{s} = load_dataset(\"first_page\", 40, {s});\nlet net{s} = make_model(5, 4, 2, {s});\nfor e{s} in flor.loop(\"stage{s}\", range(0, 3)) {{\n    let loss{s} = train_step(net{s}, data{s}, 0.5);\n    flor.log(\"loss{s}\", loss{s});\n}}\n"
        );
        old.push_str(&base);
        let with_metric = base.replace(
            &format!("    flor.log(\"loss{s}\", loss{s});\n"),
            &format!(
                "    flor.log(\"loss{s}\", loss{s});\n    let m{s} = eval_model(net{s}, data{s});\n    flor.log(\"acc{s}\", m{s}[0]);\n"
            ),
        );
        new.push_str(&with_metric);
    }
    (old, new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_script_parses() {
        for with_metrics in [false, true] {
            let src = train_script(3, 1, with_metrics);
            assert!(flor_script::parse(&src).is_ok(), "{src}");
        }
    }

    #[test]
    fn history_builder_produces_versions() {
        let flor = flor_with_history(2, 3, 0);
        let runs = flor_core::runs_of(&flor, "train.fl").unwrap();
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn log_builder_counts() {
        let flor = flor_with_logs(2, 3, &["a", "b"]);
        assert_eq!(flor.db.row_count("logs").unwrap(), 2 * 3 * 2);
    }

    #[test]
    fn versioned_scripts_parse_and_differ() {
        let (old, new) = versioned_scripts(3);
        let po = flor_script::parse(&old).unwrap();
        let pn = flor_script::parse(&new).unwrap();
        assert!(pn.node_count() > po.node_count());
    }
}
