//! Regenerate every figure/experiment of the FlorDB paper as printed
//! tables, with the shape checks DESIGN.md promises.
//!
//! Run with `cargo run --release -p flor-bench --bin experiments`.
//! EXPERIMENTS.md records a reference transcript.

use flor_bench::{flor_with_history, flor_with_logs, train_script, versioned_scripts};
use flor_core::{backfill, run_script, Flor};
use flor_diff::propagate_logs;
use flor_pipeline::{prediction_accuracy, CorpusConfig, PdfPipeline};
use flor_record::{record, replay, CheckpointPolicy};
use flor_script::parse;
use std::time::Instant;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, ms(t0.elapsed()))
}

fn median_of<R>(mut f: impl FnMut() -> R, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let _ = f();
            ms(t0.elapsed())
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// H2 — record overhead (Fig. 3 / §2 claim: logging is low-friction).
fn exp_record_overhead() {
    header(
        "H2",
        "record overhead: bare vs recorded vs full-kernel execution",
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10}",
        "epochs", "bare (ms)", "record (ms)", "kernel (ms)", "kernel ovh"
    );
    for epochs in [4usize, 16, 48] {
        let src = train_script(epochs, 2, true);
        let prog = parse(&src).unwrap();
        let bare = median_of(
            || {
                let mut i = flor_script::Interpreter::new();
                i.run(&prog, &mut flor_script::NullRuntime).unwrap()
            },
            5,
        );
        let rec = median_of(
            || {
                record(&prog, CheckpointPolicy::None, &[])
                    .unwrap()
                    .0
                    .logs
                    .len()
            },
            5,
        );
        let kernel = median_of(
            || {
                let flor = Flor::new("bench");
                flor.fs.write("train.fl", &src);
                run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
            },
            5,
        );
        println!(
            "{epochs:>8} {bare:>14.2} {rec:>14.2} {kernel:>14.2} {:>9.1}%",
            (kernel / bare - 1.0) * 100.0
        );
    }
    println!("shape check: recording within noise of bare; kernel cost bounded per record.");
}

/// F5 — checkpoint policy ablation (adaptive low-overhead checkpointing).
fn exp_checkpoint_policies() {
    header(
        "F5",
        "checkpoint policies: runtime overhead vs checkpoints taken",
    );
    let src = train_script(12, 4, false);
    let prog = parse(&src).unwrap();
    let policies: Vec<(&str, CheckpointPolicy)> = vec![
        ("none", CheckpointPolicy::None),
        ("every_1", CheckpointPolicy::EveryK(1)),
        ("every_4", CheckpointPolicy::EveryK(4)),
        ("adaptive_a10", CheckpointPolicy::Adaptive { alpha: 10.0 }),
        ("adaptive_a2", CheckpointPolicy::Adaptive { alpha: 2.0 }),
    ];
    println!(
        "{:>14} {:>12} {:>8} {:>14}",
        "policy", "time (ms)", "ckpts", "ckpt bytes"
    );
    let mut baseline = 0.0;
    for (name, policy) in policies {
        let t = median_of(|| record(&prog, policy, &[]).unwrap().0.ckpt_count, 5);
        let (rec, _) = record(&prog, policy, &[]).unwrap();
        let bytes: usize = rec.checkpoints.values().map(String::len).sum();
        if name == "none" {
            baseline = t;
        }
        println!(
            "{name:>14} {t:>12.2} {:>8} {bytes:>14}  (+{:.0}% vs none)",
            rec.ckpt_count,
            (t / baseline - 1.0) * 100.0
        );
    }
    println!("shape check: adaptive takes fewer checkpoints than every_1 at lower overhead.");
}

/// H1 — the headline: hindsight replay vs full re-execution.
fn exp_replay_speedup() {
    header(
        "H1",
        "hindsight replay vs full re-execution (one new statement)",
    );
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>11} {:>12} {:>11}",
        "epochs", "need", "full(ms)", "replay(ms)", "speedup", "crit.work", "par.factor"
    );
    println!("(this container has 1 CPU: parallel wall-clock cannot improve; the");
    println!(" crit.work column shows the per-worker critical path that ≥4 cores track)");
    // Per-epoch work must dominate snapshot-restore cost for parallel
    // replay to pay off (the paper's regime: epochs are expensive).
    for epochs in [8usize, 24, 48] {
        let old_prog = parse(&train_script(epochs, 300, false)).unwrap();
        let new_prog = parse(&train_script(epochs, 300, true)).unwrap();
        let (rec, _) = record(&old_prog, CheckpointPolicy::EveryK(1), &[]).unwrap();
        for (need_label, needed) in [
            ("last", vec![epochs - 1]),
            ("all", (0..epochs).collect::<Vec<_>>()),
        ] {
            let full = median_of(
                || {
                    record(&new_prog, CheckpointPolicy::None, &[])
                        .unwrap()
                        .0
                        .logs
                        .len()
                },
                3,
            );
            let ser = median_of(
                || replay(&new_prog, &rec, &needed, 1).unwrap().new_logs.len(),
                3,
            );
            let serial_out = replay(&new_prog, &rec, &needed, 1).unwrap();
            let par_out = replay(&new_prog, &rec, &needed, 4).unwrap();
            println!(
                "{epochs:>8} {need_label:>10} {full:>14.2} {ser:>14.2} {:>10.1}x {:>12} {:>10.1}x",
                full / ser.max(1e-9),
                par_out.critical_path_work,
                serial_out.critical_path_work as f64 / par_out.critical_path_work.max(1) as f64,
            );
        }
    }
    println!("shape check: replay(last) ≪ full; 4-worker critical path ≈ serial/4 for `all`.");
}

/// H1b — multiversion backfill across a growing history.
fn exp_multiversion_backfill() {
    header(
        "H1b",
        "multiversion backfill: versions x epochs, replay vs full work",
    );
    println!(
        "{:>9} {:>8} {:>14} {:>16} {:>14} {:>12}",
        "versions", "epochs", "recovered", "iter replayed", "iter full", "time (ms)"
    );
    for versions in [1usize, 3, 6] {
        let epochs = 6usize;
        let flor = flor_with_history(versions, epochs, 4);
        let (report, t) = time(|| backfill(&flor, "train.fl", &["acc", "recall"], 4).unwrap());
        println!(
            "{versions:>9} {epochs:>8} {:>14} {:>16} {:>14} {t:>12.2}",
            report.values_recovered, report.iterations_replayed, report.iterations_full
        );
        assert_eq!(report.values_recovered, versions * epochs * 2);
    }
    println!("shape check: recovered = versions × epochs × 2; work scales with versions.");
}

/// H3 — statement propagation cost and accuracy.
fn exp_propagation() {
    header("H3", "statement propagation (GumTree match + splice)");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "stages", "nodes", "injected", "skipped", "time (ms)"
    );
    for stages in [1usize, 4, 16, 64] {
        let (old_src, new_src) = versioned_scripts(stages);
        let old = parse(&old_src).unwrap();
        let new = parse(&new_src).unwrap();
        let t = median_of(|| propagate_logs(&old, &new).injected.len(), 5);
        let out = propagate_logs(&old, &new);
        println!(
            "{stages:>8} {:>10} {:>12} {:>12} {t:>12.3}",
            out.new_nodes,
            out.injected.len(),
            out.skipped.len()
        );
        // Every stage should gain exactly 2 statements (let m + log acc).
        assert_eq!(out.injected.len(), stages * 2);
        assert!(out.skipped.is_empty());
    }
    println!("shape check: injected = 2 × stages, zero skips, milliseconds at 64 stages.");
}

/// Q1 — the pivoted dataframe view.
fn exp_dataframe() {
    header("Q1", "flor.dataframe materialisation cost vs log volume");
    println!(
        "{:>12} {:>10} {:>14} {:>14}",
        "log rows", "out rows", "pivot (ms)", "latest (ms)"
    );
    for runs in [4usize, 16, 64, 128] {
        let flor = flor_with_logs(runs, 10, &["loss", "acc", "recall"]);
        let rows = flor.db.row_count("logs").unwrap();
        let t_pivot = median_of(
            || flor.dataframe(&["loss", "acc", "recall"]).unwrap().n_rows(),
            3,
        );
        let t_latest = median_of(
            || {
                flor.dataframe_latest(&["acc"], &["epoch_iteration"])
                    .unwrap()
                    .n_rows()
            },
            3,
        );
        let out = flor.dataframe(&["loss", "acc", "recall"]).unwrap().n_rows();
        println!("{rows:>12} {out:>10} {t_pivot:>14.2} {t_latest:>14.2}");
        assert_eq!(out, runs * 10);
    }
    println!("shape check: cost grows ~linearly with matching log rows.");
}

/// F2/F4 — incremental builds.
fn exp_incremental_build() {
    header(
        "F2/F4",
        "Makefile pipeline: full vs cached vs touched rebuilds",
    );
    let cfg = CorpusConfig {
        n_pdfs: 6,
        max_docs_per_pdf: 2,
        max_pages_per_doc: 3,
        seed: 11,
    };
    let p = PdfPipeline::new("bench", &cfg);
    let (r_full, t_full) = time(|| p.make("run").unwrap());
    let (r_cached, t_cached) = time(|| p.make("run").unwrap());
    p.flor.fs.write("infer.fl", "// touched");
    let (r_infer, t_infer) = time(|| p.make("run").unwrap());
    p.flor.fs.write("featurize.fl", "// touched");
    let (r_feat, t_feat) = time(|| p.make("run").unwrap());
    println!(
        "{:>22} {:>12} {:>30}",
        "build", "time (ms)", "executed targets"
    );
    println!(
        "{:>22} {t_full:>12.2} {:>30}",
        "cold full",
        format!("{:?}", r_full.executed.len())
    );
    println!(
        "{:>22} {t_cached:>12.2} {:>30}",
        "nothing changed",
        format!("{:?}", r_cached.executed)
    );
    println!(
        "{:>22} {t_infer:>12.2} {:>30}",
        "touch infer.fl",
        format!("{:?}", r_infer.executed)
    );
    println!(
        "{:>22} {t_feat:>12.2} {:>30}",
        "touch featurize.fl",
        format!("{:?}", r_feat.executed)
    );
    assert_eq!(r_full.executed.len(), 7);
    assert!(r_cached.executed.is_empty());
    assert_eq!(r_infer.executed, vec!["infer", "run"]);
    assert!(r_feat.executed.len() > r_infer.executed.len());
    println!("shape check: cached ⊂ touch-infer ⊂ touch-featurize ⊂ full.");
}

/// F6 — the feedback loop improves the model.
fn exp_feedback() {
    header(
        "F6",
        "human feedback loop: accuracy per round (PDF Parser demo)",
    );
    let cfg = CorpusConfig {
        n_pdfs: 10,
        max_docs_per_pdf: 3,
        max_pages_per_doc: 4,
        seed: 5,
    };
    let (pipeline, accs) = flor_pipeline::run_demo(&cfg, 3).unwrap();
    println!("{:>8} {:>12} {:>16}", "round", "accuracy", "labeled PDFs");
    let mut labeled = pipeline.initial_labeled;
    for (round, acc) in accs.iter().enumerate() {
        println!("{round:>8} {acc:>12.3} {labeled:>16}");
        labeled = (labeled + 2).min(cfg.n_pdfs);
    }
    let final_acc = prediction_accuracy(&pipeline.flor, &pipeline.corpus).unwrap();
    assert!(final_acc >= accs[0] - 0.05);
    println!("shape check: accuracy non-degrading as human labels accumulate.");
}

/// F1 — data-model query paths.
fn exp_store() {
    header(
        "F1",
        "storage engine: indexed lookup vs scan on the logs table",
    );
    println!(
        "{:>10} {:>18} {:>14} {:>12}",
        "rows", "index lookup (ms)", "scan (ms)", "scan/index"
    );
    for n in [1_000usize, 10_000, 50_000] {
        let db = flor_store::Database::in_memory(flor_store::flor_schema());
        for i in 0..n {
            db.insert(
                "logs",
                vec![
                    "bench".into(),
                    ((i / 100) as i64).into(),
                    "train.fl".into(),
                    (i as i64).into(),
                    format!("metric_{}", i % 10).into(),
                    "0.5".into(),
                    3.into(),
                ],
            )
            .unwrap();
        }
        db.commit().unwrap();
        let key = flor_df::Value::from("metric_3");
        let t_idx = median_of(
            || db.lookup("logs", "value_name", &key).unwrap().n_rows(),
            5,
        );
        let t_scan = median_of(
            || {
                db.scan("logs")
                    .unwrap()
                    .filter_eq("value_name", &key)
                    .n_rows()
            },
            5,
        );
        println!(
            "{n:>10} {t_idx:>18.3} {t_scan:>14.3} {:>11.1}x",
            t_scan / t_idx.max(1e-9)
        );
    }
    println!("shape check: index advantage grows with table size.");
}

fn main() {
    println!("FlorDB reproduction — experiment suite");
    println!("(shapes asserted inline; see EXPERIMENTS.md for the index)");
    exp_record_overhead();
    exp_checkpoint_policies();
    exp_replay_speedup();
    exp_multiversion_backfill();
    exp_propagation();
    exp_dataframe();
    exp_incremental_build();
    exp_feedback();
    exp_store();
    println!("\nall experiment shape checks passed");
}
