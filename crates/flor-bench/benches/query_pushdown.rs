//! Experiment: lazy-query predicate pushdown vs. full pivot + post-filter.
//!
//! The seed answered selective questions ("this run's metrics, best
//! first") by materializing the *entire* pivoted history and filtering by
//! hand. The `flor.query` builder lowers the same question onto an
//! incrementally maintained view that holds only the qualifying rows
//! (pushdown predicates enforced at delta-application time), plus a cheap
//! post-pass. This bench measures both at a 10k-row log history with a
//! ≤1% selectivity filter:
//!
//! * `full_pivot_post_filter` — `Flor::dataframe_full`, then filter /
//!   sort / limit on the full frame (the seed's only option).
//! * `query_pushdown` — a live commit followed by `collect()`: deltas
//!   land on the maintained filtered view, the post-pass touches only
//!   the few qualifying rows.
//!
//! The `speedup_report` section prints the headline ratio; the
//! acceptance target is ≥5×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_bench::flor_with_logs;
use flor_core::Flor;
use flor_df::Value;

const NAMES: [&str; 3] = ["loss", "acc", "recall"];

/// A kernel with `rows` log rows of history and a hot, filtered view,
/// plus the tstamp the selective query targets: a mid-history run's 10
/// epochs — 10 of `rows / 3` pivot rows (~0.3% selectivity at the
/// 10k-row history).
fn prepared(rows: usize) -> (Flor, i64) {
    let epochs = 10;
    let runs = (rows / (epochs * NAMES.len())).max(3);
    let flor = flor_with_logs(runs, epochs, &NAMES);
    // Run r logs at tstamp r+1; pick a run from the middle of history.
    let target_ts = (runs / 2) as i64 + 1;
    selective(&flor, target_ts)
        .collect_view()
        .expect("materialize view");
    (flor, target_ts)
}

/// The selective question: the target run's epochs, best loss first.
fn selective(flor: &Flor, target_ts: i64) -> flor_core::QueryBuilder<'_> {
    flor.query(&NAMES)
        .filter_eq("tstamp", target_ts)
        .order_by("loss", true)
        .limit(10)
}

/// The seed's answer to the same question: full re-pivot, then post-hoc
/// filter / sort / limit by hand.
fn full_pivot_post_filter(flor: &Flor, target_ts: i64) -> flor_df::DataFrame {
    flor.dataframe_full(&NAMES)
        .expect("full pivot")
        .filter(|r| r.get("tstamp") == Some(&Value::Int(target_ts)))
        .sort_by(&[("loss", true)])
        .expect("sort")
        .head(10)
}

/// One live update-then-query cycle: a fresh epoch of logs lands (none
/// matching the filter), commits, and the selective query re-collects.
fn live_update(flor: &Flor, target_ts: i64, i: usize) -> usize {
    flor.for_each("epoch", [i], |flor, _| {
        for name in NAMES {
            flor.log(name, 0.5);
        }
    });
    flor.commit("live").expect("commit");
    selective(flor, target_ts)
        .collect()
        .expect("refresh")
        .n_rows()
}

fn bench_query_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_pushdown");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        let (flor, ts) = prepared(rows);
        group.bench_with_input(
            BenchmarkId::new("full_pivot_post_filter", rows),
            &rows,
            |b, _| b.iter(|| full_pivot_post_filter(&flor, ts).n_rows()),
        );
        let (flor, ts) = prepared(rows);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("query_pushdown", rows), &rows, |b, _| {
            b.iter(|| {
                i += 1;
                live_update(&flor, ts, i)
            })
        });
    }
    group.finish();
}

/// Headline number: wall-clock ratio at a 10k-row history, measured over
/// whole update→query cycles so the pushdown side pays for its commit
/// and delta application, not just the cached read.
fn speedup_report(_c: &mut Criterion) {
    let (flor, ts) = prepared(10_000);
    let reps = 30;

    // Both paths must agree — and actually select rows — before anything
    // is worth timing.
    let oracle = selective(&flor, ts).collect_full().expect("oracle");
    assert_eq!(oracle.n_rows(), 10, "target run must exist in history");
    assert_eq!(selective(&flor, ts).collect().expect("collect"), oracle);
    assert_eq!(
        full_pivot_post_filter(&flor, ts).to_rows(),
        oracle.to_rows()
    );

    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(full_pivot_post_filter(&flor, ts).n_rows());
    }
    let full = start.elapsed();

    let start = std::time::Instant::now();
    for i in 0..reps {
        std::hint::black_box(live_update(&flor, ts, i));
    }
    let pushdown = start.elapsed();

    let speedup = full.as_secs_f64() / pushdown.as_secs_f64().max(1e-12);
    println!(
        "\nquery_pushdown: 10k-row history, ~0.3% selectivity, {reps} queries\n\
           full pivot + post-filter {:>10.1} µs/query\n\
           flor.query pushdown      {:>10.1} µs/update+query\n\
           speedup                  {speedup:>10.1}x (target >= 5x)",
        full.as_secs_f64() * 1e6 / reps as f64,
        pushdown.as_secs_f64() * 1e6 / reps as f64,
    );
    assert!(
        speedup >= 5.0,
        "selective pushdown query must beat full pivot + post-filter by >= 5x, got {speedup:.1}x"
    );
}

/// Observability acceptance gate: the metrics registry must cost the
/// hot update→query cycle under 5%.
///
/// The cycle mutates the database, so its per-call cost is
/// nonstationary (geometric segment folds, WAL growth) and in-place
/// mode alternation cannot give a fair comparison. Instead each timed
/// run builds an **identical fresh database** — the same insert
/// sequence produces the same fold schedule, so the enabled and
/// disabled runs execute identical work — and the gate compares the
/// min-of-totals over alternating runs. Background checkpoint and
/// compaction triggers are disabled: their passes are mode-independent
/// but land across timing windows asymmetrically.
fn instrumentation_overhead_report(_c: &mut Criterion) {
    use std::time::{Duration, Instant};
    let run_one = |enabled: bool| -> Duration {
        let (flor, ts) = prepared(1_000);
        flor.set_compaction_trigger(None);
        flor.set_checkpoint_threshold(None);
        flor.metrics_registry().set_enabled(enabled);
        let t = Instant::now();
        for i in 0..300 {
            std::hint::black_box(live_update(&flor, ts, i));
        }
        t.elapsed()
    };
    run_one(true);
    run_one(false);
    let mut best_on = Duration::MAX;
    let mut best_off = Duration::MAX;
    for k in 0..4 {
        if k % 2 == 0 {
            best_on = best_on.min(run_one(true));
            best_off = best_off.min(run_one(false));
        } else {
            best_off = best_off.min(run_one(false));
            best_on = best_on.min(run_one(true));
        }
    }
    let ratio = best_on.as_secs_f64() / best_off.as_secs_f64().max(1e-12);
    println!(
        "\nquery_pushdown instrumentation overhead: {:+.2}% over 300 \
         update+query cycles (metrics enabled vs disabled, target < +5%)",
        (ratio - 1.0) * 100.0
    );
    assert!(
        ratio < 1.05,
        "metrics must cost the update+query cycle < 5%, measured {:+.2}%",
        (ratio - 1.0) * 100.0
    );
}

/// Tracing acceptance gate: with metrics already on, *enabling request
/// tracing* must cost the same hot update→query cycle under 5% more.
///
/// Same fresh-instance min-of-totals methodology as the metrics gate
/// above (the cycle is nonstationary); the only difference between the
/// two modes is `TraceStore::set_enabled`, so the measured delta is the
/// span building, ring pushes and explain probes the traced path adds.
fn tracing_overhead_report(_c: &mut Criterion) {
    use std::time::{Duration, Instant};
    let run_one = |traced: bool| -> Duration {
        let (flor, ts) = prepared(1_000);
        flor.set_compaction_trigger(None);
        flor.set_checkpoint_threshold(None);
        flor.metrics_registry().set_enabled(true);
        flor.set_tracing(traced);
        let t = Instant::now();
        for i in 0..300 {
            std::hint::black_box(live_update(&flor, ts, i));
        }
        t.elapsed()
    };
    run_one(true);
    run_one(false);
    let mut best_on = Duration::MAX;
    let mut best_off = Duration::MAX;
    for k in 0..4 {
        if k % 2 == 0 {
            best_on = best_on.min(run_one(true));
            best_off = best_off.min(run_one(false));
        } else {
            best_off = best_off.min(run_one(false));
            best_on = best_on.min(run_one(true));
        }
    }
    let ratio = best_on.as_secs_f64() / best_off.as_secs_f64().max(1e-12);
    println!(
        "\nquery_pushdown tracing overhead: {:+.2}% over 300 update+query \
         cycles (tracing enabled vs disabled, metrics on in both, target < +5%)",
        (ratio - 1.0) * 100.0
    );
    assert!(
        ratio < 1.05,
        "tracing must cost the update+query cycle < 5%, measured {:+.2}%",
        (ratio - 1.0) * 100.0
    );
}

criterion_group!(
    benches,
    bench_query_pushdown,
    speedup_report,
    instrumentation_overhead_report,
    tracing_overhead_report
);
criterion_main!(benches);
