//! Experiment H3 / §2.1: statement propagation "via techniques adapted
//! from code diffing [6]" must be cheap relative to any re-execution —
//! milliseconds for realistic script sizes.
//!
//! Sweeps the number of pipeline stages (script size) and measures the
//! full propagate pipeline: parse old + parse new + GumTree match + splice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_bench::versioned_scripts;
use flor_diff::propagate_logs;
use flor_script::parse;

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    group.sample_size(20);
    for stages in [1usize, 4, 16] {
        let (old_src, new_src) = versioned_scripts(stages);
        group.bench_with_input(
            BenchmarkId::new("parse_and_propagate", stages),
            &stages,
            |b, _| {
                b.iter(|| {
                    let old = parse(&old_src).unwrap();
                    let new = parse(&new_src).unwrap();
                    propagate_logs(&old, &new).injected.len()
                })
            },
        );
        // Matching cost alone (pre-parsed).
        let old = parse(&old_src).unwrap();
        let new = parse(&new_src).unwrap();
        group.bench_with_input(
            BenchmarkId::new("propagate_only", stages),
            &stages,
            |b, _| b.iter(|| propagate_logs(&old, &new).injected.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
