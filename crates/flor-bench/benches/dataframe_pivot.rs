//! Experiment Q1 / §3.1: `flor.dataframe` — "log statements can be read
//! directly as tabular data ... queried via Pandas or SQL, without
//! requiring data wrangling."
//!
//! Measures the full pivoted-view materialisation (index lookup + ctx-chain
//! resolution + pivot) as the log grows, plus the `latest` dedup on top.
//! Expected shape: near-linear in matching log rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_bench::flor_with_logs;

fn bench_dataframe(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataframe_pivot");
    group.sample_size(10);
    for runs in [4usize, 16, 64] {
        let flor = flor_with_logs(runs, 10, &["loss", "acc", "recall"]);
        group.bench_with_input(
            BenchmarkId::new("dataframe_3names", runs * 10 * 3),
            &runs,
            |b, _| b.iter(|| flor.dataframe(&["loss", "acc", "recall"]).unwrap().n_rows()),
        );
        group.bench_with_input(
            BenchmarkId::new("dataframe_latest", runs * 10 * 3),
            &runs,
            |b, _| {
                b.iter(|| {
                    flor.dataframe_latest(&["acc"], &["epoch_iteration"])
                        .unwrap()
                        .n_rows()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dataframe);
criterion_main!(benches);
