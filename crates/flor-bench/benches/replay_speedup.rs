//! Experiment H1 / §2 claim: hindsight replay via "differential execution
//! and parallelism" beats full re-execution, and the gap grows with the
//! amount of work replay can skip.
//!
//! Compares, for one prior version needing one new logged value:
//! * `full_rerun` — execute the patched program from scratch;
//! * `replay_one_iter` — restore the nearest checkpoint, run 1 iteration;
//! * `replay_all_serial` / `replay_all_par4` — recover the value for every
//!   epoch, serial vs 4 workers.
//!
//! Expected shape: replay_one ≪ full; parallel < serial for all-epoch
//! recovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_bench::train_script;
use flor_record::{record, replay, CheckpointPolicy};
use flor_script::parse;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_speedup");
    group.sample_size(10);
    for epochs in [8usize, 24] {
        let old_src = train_script(epochs, 300, false);
        let new_src = train_script(epochs, 300, true);
        let old_prog = parse(&old_src).unwrap();
        let new_prog = parse(&new_src).unwrap();
        let (rec, _) = record(&old_prog, CheckpointPolicy::EveryK(1), &[]).unwrap();
        let all: Vec<usize> = (0..epochs).collect();
        let last = [epochs - 1];

        group.bench_with_input(BenchmarkId::new("full_rerun", epochs), &epochs, |b, _| {
            b.iter(|| {
                record(&new_prog, CheckpointPolicy::None, &[])
                    .unwrap()
                    .0
                    .logs
                    .len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("replay_one_iter", epochs),
            &epochs,
            |b, _| b.iter(|| replay(&new_prog, &rec, &last, 1).unwrap().new_logs.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("replay_all_serial", epochs),
            &epochs,
            |b, _| b.iter(|| replay(&new_prog, &rec, &all, 1).unwrap().new_logs.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("replay_all_par4", epochs),
            &epochs,
            |b, _| b.iter(|| replay(&new_prog, &rec, &all, 4).unwrap().new_logs.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
