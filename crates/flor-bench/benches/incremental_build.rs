//! Experiments F2/F4: Make-style incremental execution — "re-running only
//! the parts of the workflow that have been selected", the behavioral-
//! context half of the demo.
//!
//! Measures the Fig. 4 pipeline: cold full build, fully-cached rebuild, and
//! the rebuild after touching one mid-pipeline source. Expected shape:
//! cached ≪ touched-one ≪ full.

use criterion::{criterion_group, criterion_main, Criterion};
use flor_pipeline::{CorpusConfig, PdfPipeline};

fn cfg() -> CorpusConfig {
    CorpusConfig {
        n_pdfs: 6,
        max_docs_per_pdf: 2,
        max_pages_per_doc: 3,
        seed: 11,
    }
}

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_build");
    group.sample_size(10);
    group.bench_function("full_build", |b| {
        b.iter(|| {
            let p = PdfPipeline::new("bench", &cfg());
            p.make("run").unwrap().executed.len()
        })
    });
    group.bench_function("cached_rebuild", |b| {
        let p = PdfPipeline::new("bench", &cfg());
        p.make("run").unwrap();
        b.iter(|| p.make("run").unwrap().cached.len())
    });
    group.bench_function("touch_infer_rebuild", |b| {
        let p = PdfPipeline::new("bench", &cfg());
        p.make("run").unwrap();
        b.iter(|| {
            p.flor.fs.write("infer.fl", "// touched");
            p.make("run").unwrap().executed.len()
        })
    });
    group.bench_function("touch_featurize_rebuild", |b| {
        let p = PdfPipeline::new("bench", &cfg());
        p.make("run").unwrap();
        b.iter(|| {
            p.flor.fs.write("featurize.fl", "// touched");
            p.make("run").unwrap().executed.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
