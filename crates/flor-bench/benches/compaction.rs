//! Experiment: background segment compaction + zone-map pruning.
//!
//! A 10k-row history where the `jobs` table is latest-wins-heavy (100
//! jobs × ~100 state transitions each: exactly the shape the flor-jobs
//! control plane writes) plus a multi-segment `logs` history. Acceptance
//! criteria asserted at bench time:
//!
//! * post-compaction full scans of the latest-wins table touch **≥ 5×
//!   fewer rows** than pre-compaction;
//! * a selective `tstamp`-window query prunes **≥ 80 % of segments**
//!   through the seal-time zone maps;
//! * both with results equivalent to the uncompacted oracle — raw scans
//!   byte-identical for append-only tables, the latest-wins fold
//!   byte-identical for `jobs` — and a reader pinned before the
//!   compaction still re-scanning its original view byte-identically.
//!
//! Benchmarked timings compare the full-scan and window-query cost
//! before and after the compaction pass.

use criterion::{criterion_group, criterion_main, Criterion};
use flor_bench::instrumentation_overhead;
use flor_df::Value;
use flor_store::{flor_schema, CmpOp, CompactionPolicy, Database, Predicate, Query};
use std::collections::HashMap;

const JOBS: i64 = 100;
const TRANSITIONS_PER_JOB: i64 = 99;
const LOG_ROWS: i64 = 10_000;
const LOG_COMMIT_ROWS: i64 = 625; // ≥ SEGMENT_COALESCE_ROWS → 16 sealed segments

fn job_row(job_id: i64, seq: i64) -> Vec<Value> {
    let payload = if seq == 1 {
        format!("script-source-for-job-{job_id}")
    } else {
        String::new()
    };
    vec![
        job_id.into(),
        seq.into(),
        "backfill".into(),
        0i64.into(),
        if seq > TRANSITIONS_PER_JOB {
            "done"
        } else {
            "running"
        }
        .into(),
        payload.into(),
        TRANSITIONS_PER_JOB.into(),
        seq.into(),
        "".into(),
        "".into(),
    ]
}

fn log_row(ts: i64) -> Vec<Value> {
    vec![
        "bench".into(),
        ts.into(),
        "train.fl".into(),
        0.into(),
        "loss".into(),
        format!("{}", ts as f64 / 100.0).into(),
        3.into(),
    ]
}

/// The latest-wins fold every `jobs` consumer applies (max seq per job,
/// payload carried forward) — the equivalence oracle for compacted scans.
fn fold_jobs(db: &Database) -> Vec<(i64, i64, String, String)> {
    let df = db.scan("jobs").expect("jobs scans");
    let mut best: HashMap<i64, (i64, String, String)> = HashMap::new();
    let mut payloads: HashMap<i64, String> = HashMap::new();
    for row in df.rows() {
        let id = row.get("job_id").and_then(Value::as_i64).unwrap();
        let seq = row.get("seq").and_then(Value::as_i64).unwrap();
        let state = row.get("state").map(|v| v.to_text()).unwrap_or_default();
        let payload = row.get("payload").map(|v| v.to_text()).unwrap_or_default();
        if !payload.is_empty() {
            payloads.entry(id).or_insert_with(|| payload.clone());
        }
        match best.get(&id) {
            Some((prev, _, _)) if *prev >= seq => {}
            _ => {
                best.insert(id, (seq, state, payload));
            }
        }
    }
    let mut out: Vec<(i64, i64, String, String)> = best
        .into_iter()
        .map(|(id, (seq, state, p))| {
            let p = if p.is_empty() {
                payloads.get(&id).cloned().unwrap_or_default()
            } else {
                p
            };
            (id, seq, state, p)
        })
        .collect();
    out.sort();
    out
}

/// Seed a database with the latest-wins-heavy history. `jobs` rows land
/// interleaved across many commits, like a real backfill wave would
/// write them.
fn seeded() -> Database {
    let db = Database::in_memory(flor_schema());
    // Jobs: transition waves — every job advances one seq per wave.
    for seq in 1..=TRANSITIONS_PER_JOB {
        for job in 1..=JOBS {
            db.insert("jobs", job_row(job, seq)).unwrap();
        }
        if seq % 10 == 0 {
            db.commit().unwrap();
        }
    }
    db.commit().unwrap();
    // Logs: big commits so each seals its own segment (zone-map targets).
    for batch in 0..(LOG_ROWS / LOG_COMMIT_ROWS) {
        for i in 0..LOG_COMMIT_ROWS {
            db.insert("logs", log_row(batch * LOG_COMMIT_ROWS + i))
                .unwrap();
        }
        db.commit().unwrap();
    }
    db
}

fn window_query() -> Query {
    Query::table("logs")
        .filter("tstamp", CmpOp::Ge, 4000)
        .filter("tstamp", CmpOp::Lt, 4500)
}

fn window_predicates() -> Vec<Predicate> {
    vec![
        Predicate::new("tstamp", CmpOp::Ge, 4000),
        Predicate::new("tstamp", CmpOp::Lt, 4500),
    ]
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction");
    group.sample_size(10);

    let db = seeded();
    let oracle_fold = fold_jobs(&db);
    let oracle_logs = db.scan("logs").unwrap();
    let jobs_rows_before = db.pin().live_rows("jobs").unwrap();
    assert_eq!(jobs_rows_before as i64, JOBS * TRANSITIONS_PER_JOB);

    group.bench_function("jobs_full_scan_uncompacted", |b| {
        b.iter(|| db.scan("jobs").unwrap().n_rows())
    });
    group.bench_function("tstamp_window_uncompacted", |b| {
        b.iter(|| db.pin().query(&window_query()).unwrap().n_rows())
    });

    // Pin a reader mid-history, then compact.
    let pinned = db.pin();
    let pinned_jobs = pinned.scan("jobs").unwrap();
    let stats = db
        .compact_with(&CompactionPolicy {
            min_dead_rows: 1,
            min_dead_ratio: 0.0,
            target_segment_rows: 1024,
        })
        .unwrap();

    // ---- acceptance: scan-volume reduction ----------------------------
    let jobs_rows_after = db.pin().live_rows("jobs").unwrap();
    let reduction = jobs_rows_before as f64 / jobs_rows_after as f64;
    assert!(
        reduction >= 5.0,
        "post-compaction jobs scans touch {jobs_rows_after} rows vs {jobs_rows_before} \
         ({reduction:.1}x) — acceptance requires >= 5x"
    );

    // ---- acceptance: zone-map pruning ---------------------------------
    let (visited, total) = db
        .pin()
        .zone_prune_stats("logs", &window_predicates())
        .unwrap();
    let pruned_frac = 1.0 - visited as f64 / total as f64;
    assert!(
        pruned_frac >= 0.8,
        "tstamp window visits {visited}/{total} segments \
         ({:.0}% pruned) — acceptance requires >= 80%",
        pruned_frac * 100.0
    );

    // ---- acceptance: equivalence to the uncompacted oracle ------------
    assert_eq!(fold_jobs(&db), oracle_fold, "latest-wins fold changed");
    assert_eq!(db.scan("logs").unwrap(), oracle_logs, "logs scan changed");
    assert_eq!(
        db.pin().query(&window_query()).unwrap(),
        oracle_logs.filter(|r| {
            r.get("tstamp")
                .and_then(Value::as_i64)
                .is_some_and(|t| (4000..4500).contains(&t))
        }),
        "pruned window query changed"
    );
    // ---- acceptance: pinned pre-compaction reader is untouched --------
    assert_eq!(
        pinned.scan("jobs").unwrap(),
        pinned_jobs,
        "pinned reader's view changed under compaction"
    );

    group.bench_function("jobs_full_scan_compacted", |b| {
        b.iter(|| db.scan("jobs").unwrap().n_rows())
    });
    group.bench_function("tstamp_window_compacted", |b| {
        b.iter(|| db.pin().query(&window_query()).unwrap().n_rows())
    });

    // Micro-bench for the amortized tail coalescing: N one-row commits.
    // The pre-fix scheme re-copied the whole sub-threshold tail on every
    // commit (O(N²) rows); geometric folding copies each row O(log) times.
    group.bench_function("tiny_commits_2000", |b| {
        b.iter(|| {
            let db = Database::in_memory(flor_schema());
            for i in 0..2000i64 {
                db.insert("logs", log_row(i)).unwrap();
                db.commit().unwrap();
            }
            let copied = db.stats().rows_coalesced;
            assert!(
                copied <= 2000 * 11,
                "coalescing copied {copied} rows across 2000 tiny commits — \
                 amortization bound is 11 copies/row (old scheme: ~1000/row)"
            );
            copied
        })
    });
    group.finish();

    println!(
        "\ncompaction report: jobs rows {jobs_rows_before} -> {jobs_rows_after} \
         ({reduction:.1}x fewer), dropped {} rows, segments {} -> {}, \
         window visits {visited}/{total} segments ({:.0}% pruned)",
        stats.rows_dropped,
        stats.segments_before,
        stats.segments_after,
        pruned_frac * 100.0,
    );
}

/// Observability acceptance gate for the store read path: the traced
/// query accounting (zone-map prune counters, rows examined/returned)
/// must cost the pruned window query under 5%.
fn instrumentation_overhead_report(_c: &mut Criterion) {
    let db = seeded();
    db.compact_with(&CompactionPolicy {
        min_dead_rows: 1,
        min_dead_ratio: 0.0,
        target_segment_rows: 1024,
    })
    .unwrap();
    let registry = db.metrics_registry();
    let ratio = instrumentation_overhead(&registry, 400, || {
        std::hint::black_box(db.pin().query(&window_query()).unwrap().n_rows());
    });
    println!(
        "\ncompaction instrumentation overhead: {:+.2}% on the pruned \
         window query (metrics enabled vs disabled, target < +5%)",
        (ratio - 1.0) * 100.0
    );
    assert!(
        ratio < 1.05,
        "metrics must cost the pruned window query < 5%, measured {:+.2}%",
        (ratio - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_compaction, instrumentation_overhead_report);
criterion_main!(benches);
