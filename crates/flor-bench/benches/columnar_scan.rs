//! Experiment: columnar segment layout vs the row-major scan it replaced.
//!
//! A 100k-row `logs` history (one commit, then clustered compaction).
//! Acceptance criteria asserted at bench time:
//!
//! * a selective full-scan query — dictionary-column equality plus a
//!   numeric residual — runs **≥ 5× faster** through the columnar
//!   engine than an in-bench row-major baseline evaluating
//!   [`Predicate::matches`] per row over `Vec<Vec<Value>>` (the shape
//!   of the pre-columnar scan path), with byte-identical results;
//! * a clustered `tstamp` window touches **only zone-admitted
//!   segments** and enters them by binary search — asserted through
//!   the explain counters (`segments_scanned` equals the zone-map
//!   admission count, `clustered_probes ≥ 1`, `rows_examined` equals
//!   the window's row count exactly);
//! * dictionary-encoded string columns keep the table's resident
//!   bytes **under half** the row-major footprint estimate.
//!
//! Benchmarked timings report the columnar scan, the row-major
//! baseline, and the clustered window query.

use criterion::{criterion_group, criterion_main, Criterion};
use flor_df::Value;
use flor_store::{flor_schema, CmpOp, CompactionPolicy, Database, Predicate, Query};
use std::time::{Duration, Instant};

const ROWS: i64 = 100_000;
const WINDOW: (i64, i64) = (40_000, 40_500);

/// A `logs` row with the paper's dotted-path value names: long shared
/// prefixes are exactly what dictionary codes collapse and what byte-wise
/// row-major comparisons pay for.
fn log_row(i: i64) -> Vec<Value> {
    vec![
        "bench".into(),
        i.into(),
        "train.fl".into(),
        (i % 50).into(),
        format!("experiment/bench/epoch-checkpoint/metric_{:03}", i % 100).into(),
        format!("{}", i as f64 * 0.5).into(),
        3.into(),
    ]
}

fn selective_predicates() -> Vec<Predicate> {
    vec![
        Predicate::new(
            "value_name",
            CmpOp::Eq,
            "experiment/bench/epoch-checkpoint/metric_037",
        ),
        Predicate::new("ctx_id", CmpOp::Ge, 25),
    ]
}

fn selective_query() -> Query {
    let mut q = Query::table("logs");
    for p in selective_predicates() {
        q = q.filter_pred(p);
    }
    q
}

/// The pre-columnar scan: walk row-major storage, short-circuit the
/// predicate conjunction per row, clone survivors out (what the old
/// engine materialized into a frame).
fn row_major_scan(rows: &[Vec<Value>], preds: &[(usize, Predicate)]) -> Vec<Vec<Value>> {
    rows.iter()
        .filter(|r| preds.iter().all(|(ci, p)| p.matches(&r[*ci])))
        .cloned()
        .collect()
}

/// Best-of-`reps` wall clock for `f` (first rep doubles as warmup).
fn best_of(reps: usize, mut f: impl FnMut() -> usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed());
    }
    best
}

/// Resident-byte estimate for the same table held row-major: one heap
/// `Vec<Value>` per row plus the string payloads.
fn row_major_bytes(rows: &[Vec<Value>]) -> usize {
    rows.iter()
        .map(|r| {
            std::mem::size_of::<Vec<Value>>()
                + r.len() * std::mem::size_of::<Value>()
                + r.iter()
                    .map(|v| match v {
                        Value::Str(s) => s.len(),
                        _ => 0,
                    })
                    .sum::<usize>()
        })
        .sum()
}

fn bench_columnar_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_scan");
    group.sample_size(10);

    let db = Database::in_memory(flor_schema());
    let rows: Vec<Vec<Value>> = (0..ROWS).map(log_row).collect();
    for row in &rows {
        db.insert("logs", row.clone()).unwrap();
    }
    db.commit().unwrap();

    let schema = &flor_schema()[0];
    let preds: Vec<(usize, Predicate)> = selective_predicates()
        .into_iter()
        .map(|p| (schema.col_index(&p.col).unwrap(), p))
        .collect();

    // ---- acceptance: byte-identical results ---------------------------
    let snap = db.pin();
    let oracle = row_major_scan(&rows, &preds);
    assert!(!oracle.is_empty(), "selective query must match something");
    assert_eq!(
        snap.query(&selective_query()).unwrap().to_rows(),
        oracle,
        "columnar scan diverged from the row-major oracle"
    );

    // ---- acceptance: >= 5x selective full scan ------------------------
    let col = best_of(15, || snap.query(&selective_query()).unwrap().n_rows());
    let row = best_of(15, || row_major_scan(&rows, &preds).len());
    let speedup = row.as_secs_f64() / col.as_secs_f64();
    assert!(
        speedup >= 5.0,
        "columnar selective scan {col:?} vs row-major {row:?} \
         ({speedup:.1}x) — acceptance requires >= 5x"
    );

    // ---- acceptance: dictionary memory --------------------------------
    let resident = snap.resident_bytes("logs").unwrap();
    let estimate = row_major_bytes(&rows);
    assert!(
        resident * 2 <= estimate,
        "columnar residency {resident}B vs row-major estimate {estimate}B — \
         dictionary encoding must at least halve it"
    );

    group.bench_function("selective_scan_columnar", |b| {
        b.iter(|| snap.query(&selective_query()).unwrap().n_rows())
    });
    group.bench_function("selective_scan_row_major", |b| {
        b.iter(|| row_major_scan(&rows, &preds).len())
    });

    // ---- acceptance: clustered window after compaction ----------------
    // Chunk the monolith; `logs` clusters by tstamp, so the output
    // segments carry disjoint zone maps and sorted columns.
    db.compact_with(&CompactionPolicy {
        min_dead_rows: 1,
        min_dead_ratio: 0.0,
        target_segment_rows: 8192,
    })
    .unwrap();
    let snap = db.pin();
    let window_preds = vec![
        Predicate::new("tstamp", CmpOp::Ge, WINDOW.0),
        Predicate::new("tstamp", CmpOp::Lt, WINDOW.1),
    ];
    let window_query = Query::table("logs")
        .filter("tstamp", CmpOp::Ge, WINDOW.0)
        .filter("tstamp", CmpOp::Lt, WINDOW.1);
    let (visited, total) = snap.zone_prune_stats("logs", &window_preds).unwrap();
    assert!(
        total >= 10,
        "expected a chunked table, got {total} segments"
    );
    assert!(
        visited <= 2,
        "disjoint zone maps must admit <= 2 segments for a 500-row window, \
         got {visited}/{total}"
    );
    let (df, ex) = snap.explain(&window_query).unwrap();
    assert_eq!(df.n_rows() as i64, WINDOW.1 - WINDOW.0);
    assert_eq!(
        ex.segments_scanned, visited,
        "window query must touch only zone-admitted segments"
    );
    assert!(
        ex.clustered_probes >= 1,
        "sorted segments must be entered by binary search"
    );
    assert_eq!(
        ex.rows_examined as i64,
        WINDOW.1 - WINDOW.0,
        "binary-search entry must examine exactly the window's rows"
    );
    let window_oracle: Vec<Vec<Value>> = rows
        .iter()
        .filter(|r| {
            r[1].as_i64()
                .is_some_and(|t| (WINDOW.0..WINDOW.1).contains(&t))
        })
        .cloned()
        .collect();
    assert_eq!(df.to_rows(), window_oracle, "clustered window diverged");

    group.bench_function("clustered_window_compacted", |b| {
        b.iter(|| snap.query(&window_query).unwrap().n_rows())
    });
    group.finish();

    println!(
        "\ncolumnar report: selective scan {speedup:.1}x over row-major \
         ({col:?} vs {row:?}), resident {resident}B vs row-major ~{estimate}B \
         ({:.1}x smaller), window visits {visited}/{total} segments, \
         {} clustered probes, {} rows examined",
        estimate as f64 / resident as f64,
        ex.clustered_probes,
        ex.rows_examined,
    );
}

criterion_group!(benches, bench_columnar_scan);
criterion_main!(benches);
