//! Experiment: lock-free pinned-snapshot scans under concurrent writes.
//!
//! The PR 4 storage refactor replaced the lock-per-scan design (one
//! `RwLock` held for the whole duration of every scan, serializing
//! readers against the writer) with MVCC segments: `Database::pin` is an
//! O(1) `Arc` clone and scans run lock-free against immutable segments.
//! This bench quantifies the claim with the backfill-shaped workload
//! that motivated it: N readers scanning `logs` while a writer lands
//! version batches.
//!
//! * `pinned_scan` / `coarse_locked_scan` — single-threaded scan cost of
//!   the two designs (the coarse variant emulates the old path by taking
//!   an external read lock around the materializing scan).
//! * `contention_report` — the real experiment: 4 reader threads × a
//!   committing writer, reporting reader p50 and writer throughput for
//!   both designs plus the idle-reader baseline. Acceptance: with ≥ 2
//!   cores, the pinned reader's p50 under writer load stays within noise
//!   of its idle p50, and the pinned writer's throughput beats the
//!   coarse-locked writer's.

use criterion::{criterion_group, criterion_main, Criterion};
use flor_df::Value;
use flor_store::{flor_schema, Database};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED_ROWS: usize = 20_000;
const BATCH_ROWS: usize = 20;
const WRITER_BATCHES: usize = 200;
const READERS: usize = 4;

fn log_row(ts: i64, name: &str, value: f64) -> Vec<Value> {
    vec![
        "bench".into(),
        ts.into(),
        "train.fl".into(),
        0.into(),
        name.into(),
        format!("{value}").into(),
        3.into(),
    ]
}

fn seeded() -> Database {
    let db = Database::in_memory(flor_schema());
    for batch in 0..(SEED_ROWS / BATCH_ROWS) {
        for i in 0..BATCH_ROWS {
            db.insert(
                "logs",
                log_row((batch * BATCH_ROWS + i) as i64, "loss", 0.5),
            )
            .unwrap();
        }
        db.commit().unwrap();
    }
    db
}

fn bench_scan_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_scans");
    group.sample_size(10);
    let db = seeded();
    group.bench_function("pinned_scan", |b| {
        b.iter(|| db.pin().scan("logs").unwrap().n_rows())
    });
    let coarse = RwLock::new(());
    group.bench_function("coarse_locked_scan", |b| {
        b.iter(|| {
            let _g = coarse.read();
            db.scan("logs").unwrap().n_rows()
        })
    });
    group.finish();
}

/// Reader p50 over one contention run: spawn `READERS` scanning threads,
/// optionally a writer landing `WRITER_BATCHES` batches; returns
/// (reader p50, writer wall-clock if a writer ran).
fn contention_run(
    db: &Database,
    with_writer: bool,
    coarse: Option<&Arc<RwLock<()>>>,
) -> (Duration, Option<Duration>) {
    let stop = AtomicBool::new(false);
    let (p50s, writer_elapsed) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let db = db.clone();
                let stop = &stop;
                let coarse = coarse.cloned();
                s.spawn(move || {
                    let mut samples = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        let n = match &coarse {
                            // The old design: read lock held across the
                            // whole materializing scan.
                            Some(lock) => {
                                let _g = lock.read();
                                db.scan("logs").unwrap().n_rows()
                            }
                            // The new design: O(1) pin, lock-free scan.
                            None => db.pin().scan("logs").unwrap().n_rows(),
                        };
                        std::hint::black_box(n);
                        samples.push(t.elapsed());
                    }
                    samples.sort_unstable();
                    // A reader that never completed a scan (writer won the
                    // race to finish) contributes a zero sample.
                    samples.get(samples.len() / 2).copied().unwrap_or_default()
                })
            })
            .collect();
        let writer_elapsed = if with_writer {
            let db = db.clone();
            let coarse = coarse.cloned();
            let start = Instant::now();
            for batch in 0..WRITER_BATCHES {
                let _g = coarse.as_ref().map(|l| l.write());
                for i in 0..BATCH_ROWS {
                    db.insert("logs", log_row((batch * BATCH_ROWS + i) as i64, "acc", 0.9))
                        .unwrap();
                }
                db.commit().unwrap();
            }
            Some(start.elapsed())
        } else {
            std::thread::sleep(Duration::from_millis(300));
            None
        };
        stop.store(true, Ordering::Relaxed);
        let p50s: Vec<Duration> = readers.into_iter().map(|r| r.join().unwrap()).collect();
        (p50s, writer_elapsed)
    });
    let mut p50s = p50s;
    p50s.sort_unstable();
    (p50s[p50s.len() / 2], writer_elapsed)
}

fn contention_report(_c: &mut Criterion) {
    // Idle baseline: pinned readers, no writer.
    let db = seeded();
    let (idle_p50, _) = contention_run(&db, false, None);
    // Pinned readers under writer load.
    let db = seeded();
    let (pinned_p50, pinned_writer) = contention_run(&db, true, None);
    let pinned_writer = pinned_writer.expect("writer ran");
    // Coarse-locked readers under writer load (the old design, emulated
    // with an external scan-duration RwLock).
    let db = seeded();
    let coarse = Arc::new(RwLock::new(()));
    let (coarse_p50, coarse_writer) = contention_run(&db, true, Some(&coarse));
    let coarse_writer = coarse_writer.expect("writer ran");

    let commits_per_sec = |d: Duration| WRITER_BATCHES as f64 / d.as_secs_f64().max(1e-12);
    println!(
        "\nconcurrent_scans: {SEED_ROWS}-row logs, {READERS} readers, writer landing {WRITER_BATCHES} batches\n\
           reader p50, idle (pinned)          {:>10.1} µs\n\
           reader p50, writer live (pinned)   {:>10.1} µs\n\
           reader p50, writer live (coarse)   {:>10.1} µs\n\
           writer throughput (pinned)         {:>10.0} commits/s\n\
           writer throughput (coarse lock)    {:>10.0} commits/s",
        idle_p50.as_secs_f64() * 1e6,
        pinned_p50.as_secs_f64() * 1e6,
        coarse_p50.as_secs_f64() * 1e6,
        commits_per_sec(pinned_writer),
        commits_per_sec(coarse_writer),
    );
    // Contention effects need real parallelism; on a 1-core container
    // every figure is scheduling noise, so only report there.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 {
        let ratio = pinned_p50.as_secs_f64() / idle_p50.as_secs_f64().max(1e-12);
        assert!(
            ratio <= 3.0,
            "pinned reader p50 must stay flat under writer load (within noise): \
             idle {idle_p50:?} vs loaded {pinned_p50:?} ({ratio:.2}x)"
        );
        assert!(
            pinned_writer <= coarse_writer.mul_f64(1.25),
            "writer must not be slower than the coarse-locked path: \
             pinned {pinned_writer:?} vs coarse {coarse_writer:?}"
        );
    } else {
        println!("  (1 core: contention assertions skipped)");
    }
}

criterion_group!(benches, bench_scan_paths, contention_report);
criterion_main!(benches);
