//! Experiment F1: the Fig. 1 relational model must answer the paper's
//! query patterns cheaply. Measures secondary-index point lookups vs full
//! scans on the `logs` table as it grows, and transactional insert+commit
//! throughput into the WAL-less in-memory engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_df::Value;
use flor_store::{flor_schema, CmpOp, Database, Query};

fn populate(n: usize) -> Database {
    let db = Database::in_memory(flor_schema());
    for i in 0..n {
        db.insert(
            "logs",
            vec![
                "bench".into(),
                ((i / 100) as i64).into(),
                "train.fl".into(),
                (i as i64).into(),
                format!("metric_{}", i % 10).into(),
                format!("{}", i as f64 * 0.5).into(),
                3.into(),
            ],
        )
        .unwrap();
    }
    db.commit().unwrap();
    db
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_queries");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let db = populate(n);
        group.bench_with_input(BenchmarkId::new("indexed_lookup", n), &n, |b, _| {
            b.iter(|| {
                db.lookup("logs", "value_name", &Value::from("metric_3"))
                    .unwrap()
                    .n_rows()
            })
        });
        group.bench_with_input(BenchmarkId::new("full_scan_filter", n), &n, |b, _| {
            b.iter(|| {
                db.scan("logs")
                    .unwrap()
                    .filter_eq("value_name", &Value::from("metric_3"))
                    .n_rows()
            })
        });
        group.bench_with_input(BenchmarkId::new("query_with_residual", n), &n, |b, _| {
            b.iter(|| {
                Query::table("logs")
                    .filter_eq("value_name", "metric_3")
                    .filter("tstamp", CmpOp::Ge, 2)
                    .project(&["tstamp", "value"])
                    .execute(&db)
                    .unwrap()
                    .n_rows()
            })
        });
    }
    group.bench_function("insert_commit_1000", |b| {
        b.iter(|| {
            let db = Database::in_memory(flor_schema());
            for i in 0..1000i64 {
                db.insert(
                    "logs",
                    vec![
                        "bench".into(),
                        1.into(),
                        "f".into(),
                        i.into(),
                        "x".into(),
                        "1".into(),
                        2.into(),
                    ],
                )
                .unwrap();
            }
            db.commit().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
