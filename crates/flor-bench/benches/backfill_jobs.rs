//! Experiment: backfill as background jobs — worker-count scaling and
//! incremental result landing.
//!
//! The flor-jobs control plane decomposes one backfill request into
//! per-version replay units. This bench measures the two claims the
//! design makes over the old blocking, all-or-nothing call:
//!
//! * **scaling** — versions are independent units, so wall-clock shrinks
//!   as the job worker pool grows (`workers_1` vs `workers_2/4`);
//! * **incrementality** — each version's recovered values commit as soon
//!   as that version finishes, so the *first* results are queryable at a
//!   fraction of the total job time (the `jobs_report` section prints
//!   per-version landing times).
//!
//! A `jobs_listing` bench covers the observability read path
//! (`Flor::jobs`, served by the feed-maintained board).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_bench::flor_with_history;
use std::time::{Duration, Instant};

const VERSIONS: usize = 6;
const EPOCHS: usize = 6;
const WORK: usize = 1200;

/// Run one background backfill with `workers` job workers (per-version
/// replay parallelism pinned to 1 so scaling comes from the pool alone).
/// Returns total wall-clock and each version's landing time.
fn timed_backfill(workers: usize) -> (Duration, Vec<Duration>) {
    let flor = flor_with_history(VERSIONS, EPOCHS, WORK);
    flor.job_runner().set_workers(workers);
    let t0 = Instant::now();
    let handle = flor
        .submit_backfill_with("train.fl", &["acc", "recall"], 0, 1)
        .expect("submit backfill");
    let mut landings = Vec::new();
    while !handle.state().is_terminal() {
        let done = handle.progress().units_done;
        while landings.len() < done {
            landings.push(t0.elapsed());
        }
        std::thread::yield_now();
    }
    let report = handle.wait();
    let total = t0.elapsed();
    assert_eq!(report.versions.len(), VERSIONS);
    while landings.len() < VERSIONS {
        landings.push(total);
    }
    (total, landings)
}

fn bench_backfill_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("backfill_jobs");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("submit_wait", workers),
            &workers,
            |b, &w| b.iter(|| timed_backfill(w).0),
        );
    }
    // Observability read path: the feed-maintained jobs listing after a
    // burst of transitions.
    let flor = flor_with_history(2, 4, 50);
    for _ in 0..8 {
        flor.submit_backfill_with("train.fl", &["acc"], 0, 1)
            .expect("submit")
            .wait();
    }
    group.bench_function("jobs_listing", |b| {
        b.iter(|| flor.jobs().expect("listing").len())
    });
    group.finish();
}

/// Headline numbers: serial vs pooled wall-clock, and how early the first
/// version's results are live relative to job completion.
fn jobs_report(_c: &mut Criterion) {
    let (serial, serial_landings) = timed_backfill(1);
    let (pooled2, _) = timed_backfill(2);
    let (pooled4, landings4) = timed_backfill(4);
    let speedup2 = serial.as_secs_f64() / pooled2.as_secs_f64().max(1e-12);
    let speedup4 = serial.as_secs_f64() / pooled4.as_secs_f64().max(1e-12);
    let first_frac = serial_landings[0].as_secs_f64() / serial.as_secs_f64().max(1e-12);
    println!(
        "\nbackfill_jobs: {VERSIONS} versions x {EPOCHS} epochs (work {WORK})\n\
           serial (1 worker)    {:>10.1} ms total\n\
           pool of 2            {:>10.1} ms total ({speedup2:.2}x)\n\
           pool of 4            {:>10.1} ms total ({speedup4:.2}x)\n\
           first version live   {:>10.1} ms into the serial job ({:.0}% of total)\n\
           landings (4 workers) {:?}",
        serial.as_secs_f64() * 1e3,
        pooled2.as_secs_f64() * 1e3,
        pooled4.as_secs_f64() * 1e3,
        serial_landings[0].as_secs_f64() * 1e3,
        first_frac * 100.0,
        landings4
            .iter()
            .map(|d| format!("{:.0}ms", d.as_secs_f64() * 1e3))
            .collect::<Vec<_>>(),
    );
    // Replay is CPU-bound (it re-executes training iterations), so the
    // worker-count scaling claim is only testable with real parallelism.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            speedup4 > 1.3,
            "4 job workers must beat serial backfill (got {speedup4:.2}x)"
        );
    } else {
        println!("({cores}-core host: worker-scaling assertion skipped)");
    }
    assert!(
        first_frac < 0.6,
        "first version's results must land well before the job ends \
         (landed at {:.0}% of total)",
        first_frac * 100.0
    );
}

criterion_group!(benches, bench_backfill_jobs, jobs_report);
criterion_main!(benches);
