//! Experiment F5 / §2 claim: "low-overhead adaptive checkpointing,
//! minimizing computational resources during model training."
//!
//! Ablation over checkpoint policies for the Fig. 5 training loop:
//! `None` (fastest, replay-hostile), `EveryK(1)` (replay-friendly, pays a
//! snapshot per epoch), `EveryK(4)`, and `Adaptive` (the paper's policy —
//! cost-bounded). Expected shape: Adaptive ≈ None + bounded overhead,
//! EveryK(1) the most expensive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_bench::train_script;
use flor_record::{record, CheckpointPolicy};
use flor_script::parse;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_policies");
    group.sample_size(15);
    let src = train_script(12, 4, false);
    let prog = parse(&src).unwrap();
    let policies: [(&str, CheckpointPolicy); 4] = [
        ("none", CheckpointPolicy::None),
        ("every_1", CheckpointPolicy::EveryK(1)),
        ("every_4", CheckpointPolicy::EveryK(4)),
        ("adaptive_a10", CheckpointPolicy::Adaptive { alpha: 10.0 }),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::new("train_12ep", name), &policy, |b, p| {
            b.iter(|| record(&prog, *p, &[]).unwrap().0.ckpt_count)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
