//! Experiment F6: the human-in-the-loop feedback path (Fig. 6) — a
//! `save_colors` POST (iteration context + page logs + `flor.commit`) and
//! the `get_colors` read (dataframe + latest) must be interactive-fast.

use criterion::{criterion_group, criterion_main, Criterion};
use flor_core::Flor;
use flor_df::Value;
use flor_pipeline::{CorpusConfig, PdfPipeline};

fn bench_feedback(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_loop");
    group.sample_size(10);

    // save_colors: one document's worth of corrections + commit.
    group.bench_function("save_colors_commit", |b| {
        let flor = Flor::new("bench");
        flor.set_filename("app.fl");
        b.iter(|| {
            flor.iteration("document", "case_000.pdf", |flor| {
                flor.for_each("page", 0..8, |flor, &p| {
                    flor.log("page_color", p as i64 / 3);
                    flor.log("label_src", "human");
                });
            });
            flor.commit("save_colors").unwrap()
        })
    });

    // get_colors against an app that has accumulated feedback history.
    group.bench_function("get_colors_read", |b| {
        let flor = Flor::new("bench");
        flor.set_filename("app.fl");
        for round in 0..30 {
            flor.iteration("document", "case_000.pdf", |flor| {
                flor.for_each("page", 0..8, |flor, &p| {
                    flor.log("page_color", ((p + round) % 3) as i64);
                });
            });
            flor.commit("round").unwrap();
        }
        b.iter(|| {
            flor.dataframe(&["page_color"])
                .unwrap()
                .filter_eq("document_value", &Value::from("case_000.pdf"))
                .latest(&["page_iteration"], "tstamp")
                .unwrap()
                .n_rows()
        })
    });

    // A full feedback round of the demo (review + retrain + re-infer).
    group.bench_function("full_feedback_round", |b| {
        let p = PdfPipeline::new(
            "bench",
            &CorpusConfig {
                n_pdfs: 6,
                max_docs_per_pdf: 2,
                max_pages_per_doc: 3,
                seed: 11,
            },
        );
        p.make("run").unwrap();
        let name = p.corpus.pdfs.last().unwrap().name.clone();
        b.iter(|| p.feedback_round(&[name.as_str()]).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_feedback);
criterion_main!(benches);
