//! Experiment H2 / Figure 3 claim: "metadata can be captured naturally
//! through Python log statements ... without imposing significant
//! overhead."
//!
//! Compares one training run executed (a) bare, (b) under a recording
//! runtime without checkpoints, (c) with full FlorDB kernel instrumentation
//! (logs + loops tables + WAL). Expected shape: (b) within a few percent of
//! (a); (c) adds modest constant cost per logged record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_bench::train_script;
use flor_core::{run_script, Flor};
use flor_record::{record, CheckpointPolicy};
use flor_script::{parse, Interpreter, NullRuntime};

fn bench_record_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_overhead");
    group.sample_size(20);
    for epochs in [4usize, 16] {
        let src = train_script(epochs, 2, true);
        let prog = parse(&src).unwrap();
        group.bench_with_input(
            BenchmarkId::new("bare_execution", epochs),
            &epochs,
            |b, _| {
                b.iter(|| {
                    let mut interp = Interpreter::new();
                    interp.run(&prog, &mut NullRuntime).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("record_no_ckpt", epochs),
            &epochs,
            |b, _| {
                b.iter(|| {
                    record(&prog, CheckpointPolicy::None, &[])
                        .unwrap()
                        .0
                        .logs
                        .len()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("full_kernel", epochs), &epochs, |b, _| {
            b.iter(|| {
                let flor = Flor::new("bench");
                flor.fs.write("train.fl", &src);
                run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
                flor.db.row_count("logs").unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record_overhead);
criterion_main!(benches);
