//! Experiment: incremental view maintenance vs. full recompute.
//!
//! The ROADMAP's heavy-traffic north star requires `flor.dataframe` to be
//! served without re-joining and re-pivoting the whole log history per
//! query. This bench measures both paths as history grows:
//!
//! * `full_recompute` — `Flor::dataframe_full`: index fetch + ctx-chain
//!   resolution + pivot over the entire history (the seed's behaviour).
//! * `incremental_refresh` — a live commit followed by
//!   `Flor::query(..).collect_view()`: the catalog applies just the
//!   committed deltas to the maintained frame and hands back a shared
//!   snapshot.
//!
//! The `speedup_report` section prints the headline ratio at a 10k-row
//! log history; the acceptance target is ≥10×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flor_bench::flor_with_logs;
use flor_core::Flor;

const NAMES: [&str; 3] = ["loss", "acc", "recall"];

/// A kernel with `rows` log rows of history and a hot, up-to-date view.
fn prepared(rows: usize) -> Flor {
    let epochs = 10;
    let runs = rows / (epochs * NAMES.len());
    let flor = flor_with_logs(runs.max(1), epochs, &NAMES);
    flor.query(&NAMES).collect_view().expect("materialize view");
    flor
}

/// One live update: a fresh epoch of logs lands, commits, and the view is
/// brought up to date.
fn live_update(flor: &Flor, i: usize) -> usize {
    flor.for_each("epoch", [i], |flor, _| {
        for name in NAMES {
            flor.log(name, 0.5);
        }
    });
    flor.commit("live").expect("commit");
    flor.query(&NAMES).collect_view().expect("refresh").n_rows()
}

fn bench_view_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_maintenance");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        let flor = prepared(rows);
        group.bench_with_input(BenchmarkId::new("full_recompute", rows), &rows, |b, _| {
            b.iter(|| flor.dataframe_full(&NAMES).unwrap().n_rows())
        });
        let flor = prepared(rows);
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("incremental_refresh", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    i += 1;
                    live_update(&flor, i)
                })
            },
        );
    }
    group.finish();
}

/// Headline number: wall-clock ratio at a 10k-row history, measured over
/// whole update→query cycles so the incremental side pays for its commit
/// and delta application, not just the cached read.
fn speedup_report(_c: &mut Criterion) {
    let flor = prepared(10_000);
    let reps = 30;

    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(flor.dataframe_full(&NAMES).unwrap().n_rows());
    }
    let full = start.elapsed();

    let start = std::time::Instant::now();
    for i in 0..reps {
        std::hint::black_box(live_update(&flor, i));
    }
    let incremental = start.elapsed();

    let speedup = full.as_secs_f64() / incremental.as_secs_f64().max(1e-12);
    println!(
        "\nview_maintenance: 10k-row history, {reps} refreshes\n\
           full recompute      {:>10.1} µs/query\n\
           incremental refresh {:>10.1} µs/update+query\n\
           speedup             {speedup:>10.1}x (target >= 10x)",
        full.as_secs_f64() * 1e6 / reps as f64,
        incremental.as_secs_f64() * 1e6 / reps as f64,
    );
    assert!(
        speedup >= 10.0,
        "incremental refresh must beat full recompute by >= 10x at 10k rows, got {speedup:.1}x"
    );
}

criterion_group!(benches, bench_view_maintenance, speedup_report);
criterion_main!(benches);
