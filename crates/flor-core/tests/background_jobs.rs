//! Concurrent correctness under load: while a multi-version backfill job
//! runs in the background, foreground `Flor::query` reads return correct
//! (oracle-verified) results without blocking, and recovered values land
//! in the maintained views incrementally — per version, not at the end.

use flor_core::{run_script, Flor};
use flor_record::CheckpointPolicy;

const EPOCHS: usize = 6;
const VERSIONS: usize = 8;

fn script(with_acc: bool) -> String {
    let acc = if with_acc {
        "        let m = eval_model(net, data);\n        flor.log(\"acc\", m[0]);\n"
    } else {
        ""
    };
    format!(
        r#"let data = load_dataset("first_page", 60, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {{
    for e in flor.loop("epoch", range(0, {EPOCHS})) {{
        work(200);
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
{acc}    }}
}}
"#
    )
}

#[test]
fn queries_stay_correct_while_backfill_runs() {
    let flor = Flor::new("load");
    flor.fs.write("train.fl", &script(false));
    for _ in 0..VERSIONS {
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
    }
    flor.fs.write("train.fl", &script(true));
    // Materialize the view with holes so backfill arrives as deltas.
    flor.dataframe(&["loss", "acc"]).unwrap();

    let total = EPOCHS * VERSIONS;
    let handle = flor
        .submit_backfill_with("train.fl", &["acc"], 0, 1)
        .unwrap();
    let mut verified_mid_run = 0usize;
    let mut observed_partial = false;
    let filled = |df: &flor_df::DataFrame| {
        df.column("acc")
            .map(|c| c.values.iter().filter(|v| !v.is_null()).count())
            .unwrap_or(0)
    };
    while !handle.state().is_terminal() {
        // Reads never block on the job; any two reads with no commit in
        // between must agree with the from-scratch oracle read between
        // them. If `a == a2`, no commit interleaved, so `b` (taken inside
        // the window) proves the incremental read correct mid-run.
        let a = flor.query(&["loss", "acc"]).collect().unwrap();
        let b = flor.query(&["loss", "acc"]).collect_full().unwrap();
        let a2 = flor.query(&["loss", "acc"]).collect().unwrap();
        if a == a2 {
            assert_eq!(a, b, "incremental read diverged from oracle mid-job");
            verified_mid_run += 1;
        }
        let f = filled(&a);
        if f > 0 && f < total {
            observed_partial = true;
        }
        std::thread::yield_now();
    }
    let report = handle.wait();
    assert_eq!(report.versions.len(), VERSIONS);
    assert_eq!(report.values_recovered, total);
    assert!(
        verified_mid_run > 0,
        "at least one mid-run read must be oracle-verified"
    );
    assert!(
        observed_partial,
        "per-version results must land incrementally, not all at the end"
    );
    // Final state: no holes, and the maintained view equals the oracle.
    let after = flor.dataframe(&["loss", "acc"]).unwrap();
    assert_eq!(filled(&after), total);
    assert_eq!(after, flor.dataframe_full(&["loss", "acc"]).unwrap());
    assert_eq!(flor.views.stats().fallback_rebuilds, 0);
    assert_eq!(flor.job_stats().unwrap().done, 1);
}
