//! Crash-recovery properties.
//!
//! 1. A backfill job killed between versions (the runner's workers halt
//!    without writing further transitions — the moral equivalent of
//!    `kill -9`), then reopened from the WAL, resumes from its persisted
//!    `done_keys` cursor and converges to a `logs` table *identical* to
//!    an uninterrupted run — same rows, same order, same ctx ids.
//! 2. A checkpoint taken anywhere mid-history leaves reopen byte-identical
//!    to a never-checkpointed reopen (`logs`/`loops`/`jobs` alike), while
//!    replaying only the WAL tail; and a crash *between* the sidecar
//!    write and the WAL truncation still converges.

use flor_core::{run_script, Flor};
use flor_record::CheckpointPolicy;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const TRAIN_V1: &str = r#"
let data = load_dataset("first_page", 40, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 3)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
    }
}
"#;

const TRAIN_V2: &str = r#"
let data = load_dataset("first_page", 40, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 3)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
    }
}
"#;

fn fresh_wal(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("flordb-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}-{}.wal", N.fetch_add(1, Ordering::SeqCst)))
}

/// Record `versions` runs of V1 and stage V2 in the working tree.
/// Single job worker + single replay worker for determinism.
fn seeded(path: &Path, versions: usize) -> Flor {
    let flor = Flor::open_with_workers("crash", path, 1).expect("open");
    flor.fs.write("train.fl", TRAIN_V1);
    for _ in 0..versions {
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).expect("record run");
    }
    flor.fs.write("train.fl", TRAIN_V2);
    flor
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn interrupted_backfill_resumes_to_identical_logs(
        versions in 1usize..4,
        crash_after in 0u64..4,
    ) {
        // Uninterrupted oracle.
        let oracle_path = fresh_wal("oracle");
        let oracle = seeded(&oracle_path, versions);
        oracle
            .submit_backfill_with("train.fl", &["acc"], 0, 1)
            .expect("submit")
            .wait();
        let want_logs = oracle.db.scan("logs").expect("scan");
        let want_loops = oracle.db.scan("loops").expect("scan");
        drop(oracle);

        // Interrupted run: kill the runner after `crash_after` versions.
        let path = fresh_wal("crashed");
        let flor = seeded(&path, versions);
        flor.job_runner().crash_after_units(crash_after);
        let handle = flor
            .submit_backfill_with("train.fl", &["acc"], 0, 1)
            .expect("submit");
        flor.job_runner().wait_idle();
        let interrupted = flor.job_runner().is_crashed();
        prop_assert_eq!(interrupted, (crash_after as usize) <= versions);
        drop(handle);
        drop(flor);

        // Reopen: Flor::open resumes the incomplete job automatically
        // (the new source comes from the persisted job payload, the old
        // sources from the durable git table — the in-memory repo is
        // empty after reopen).
        let flor = Flor::open_with_workers("crash", &path, 1).expect("reopen");
        flor.job_runner().wait_idle();
        let stats = flor.job_stats().expect("stats");
        prop_assert_eq!(stats.done, 1, "job must end Done after resume");
        prop_assert_eq!(stats.running + stats.queued + stats.failed, 0);

        // Convergence: the data plane is bit-identical to the
        // uninterrupted run — rows, order, ctx ids and all.
        prop_assert_eq!(flor.db.scan("logs").expect("scan"), want_logs);
        prop_assert_eq!(flor.db.scan("loops").expect("scan"), want_loops);
        // And the maintained view over it equals the oracle recompute.
        let inc = flor.dataframe(&["loss", "acc"]).expect("view");
        let full = flor.dataframe_full(&["loss", "acc"]).expect("oracle");
        prop_assert_eq!(inc, full);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&oracle_path);
    }

    /// Checkpoint anywhere in the history (optionally "crashing" between
    /// the sidecar write and the WAL truncation): reopen must be
    /// byte-identical to a never-checkpointed reopen across `logs`,
    /// `loops` and `jobs`, and a completed checkpoint must make reopen
    /// replay only the WAL tail.
    #[test]
    fn checkpointed_reopen_is_byte_identical(
        versions in 1usize..3,
        ckpt_after in 1usize..4,
        kill_before_truncate in any::<bool>(),
    ) {
        // Oracle: identical history, never checkpointed. The backfill
        // job populates the `jobs` table so all three tables are
        // non-trivial.
        let oracle_path = fresh_wal("ckpt-oracle");
        let oracle = seeded(&oracle_path, versions);
        oracle
            .submit_backfill_with("train.fl", &["acc"], 0, 1)
            .expect("submit")
            .wait();
        oracle.job_runner().wait_idle();
        drop(oracle);
        let oracle = Flor::open_with_workers("crash", &oracle_path, 1).expect("reopen oracle");
        oracle.job_runner().wait_idle();
        let want_logs = oracle.db.scan("logs").expect("scan");
        let want_loops = oracle.db.scan("loops").expect("scan");
        let want_jobs = oracle.db.scan("jobs").expect("scan");
        let full_replay = oracle.db.recovery_info().wal_records_replayed;
        prop_assert!(full_replay > 0);
        drop(oracle);

        // Twin history with a store checkpoint after `ckpt_after` runs
        // (clamped into the run sequence; it may also land after the
        // backfill completes).
        let path = fresh_wal("ckpt");
        let flor = seeded(&path, versions);
        let ckpt_at = ckpt_after.min(versions + 1);
        let mut checkpointed = false;
        let mut take_ckpt = |flor: &Flor, step: usize| {
            if step == ckpt_at {
                if kill_before_truncate {
                    flor.db.checkpoint_without_truncate().expect("ckpt write");
                } else {
                    flor.db.checkpoint().expect("ckpt");
                }
                checkpointed = true;
            }
        };
        // Steps 1..=versions happened inside `seeded`; the checkpoint
        // interleaves with the backfill instead: before it, or after.
        take_ckpt(&flor, ckpt_at.min(versions));
        flor.submit_backfill_with("train.fl", &["acc"], 0, 1)
            .expect("submit")
            .wait();
        flor.job_runner().wait_idle();
        take_ckpt(&flor, versions + 1);
        prop_assert!(checkpointed);
        drop(flor);

        // Reopen: all three tables byte-identical to the oracle reopen.
        let flor = Flor::open_with_workers("crash", &path, 1).expect("reopen");
        flor.job_runner().wait_idle();
        prop_assert_eq!(flor.db.scan("logs").expect("scan"), want_logs);
        prop_assert_eq!(flor.db.scan("loops").expect("scan"), want_loops);
        prop_assert_eq!(flor.db.scan("jobs").expect("scan"), want_jobs);
        // The maintained view over the recovered state equals the oracle.
        let inc = flor.dataframe(&["loss", "acc"]).expect("view");
        let full = flor.dataframe_full(&["loss", "acc"]).expect("oracle");
        prop_assert_eq!(inc, full);
        // A completed (truncating) checkpoint shrinks replay to the tail.
        let info = flor.db.recovery_info();
        prop_assert!(info.from_checkpoint);
        if !kill_before_truncate {
            prop_assert!(
                info.wal_records_replayed < full_replay,
                "tail replay {} must be smaller than full replay {}",
                info.wal_records_replayed,
                full_replay
            );
        }

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(flor_store::checkpoint::sidecar_path(&path));
        let _ = std::fs::remove_file(&oracle_path);
    }
}
