//! Crash-recovery property: a backfill job killed between versions (the
//! runner's workers halt without writing further transitions — the moral
//! equivalent of `kill -9`), then reopened from the WAL, resumes from its
//! persisted `done_keys` cursor and converges to a `logs` table
//! *identical* to an uninterrupted run — same rows, same order, same ctx
//! ids.

use flor_core::{run_script, Flor};
use flor_record::CheckpointPolicy;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const TRAIN_V1: &str = r#"
let data = load_dataset("first_page", 40, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 3)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
    }
}
"#;

const TRAIN_V2: &str = r#"
let data = load_dataset("first_page", 40, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 3)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
    }
}
"#;

fn fresh_wal(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("flordb-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}-{}.wal", N.fetch_add(1, Ordering::SeqCst)))
}

/// Record `versions` runs of V1 and stage V2 in the working tree.
/// Single job worker + single replay worker for determinism.
fn seeded(path: &Path, versions: usize) -> Flor {
    let flor = Flor::open_with_workers("crash", path, 1).expect("open");
    flor.fs.write("train.fl", TRAIN_V1);
    for _ in 0..versions {
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).expect("record run");
    }
    flor.fs.write("train.fl", TRAIN_V2);
    flor
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn interrupted_backfill_resumes_to_identical_logs(
        versions in 1usize..4,
        crash_after in 0u64..4,
    ) {
        // Uninterrupted oracle.
        let oracle_path = fresh_wal("oracle");
        let oracle = seeded(&oracle_path, versions);
        oracle
            .submit_backfill_with("train.fl", &["acc"], 0, 1)
            .expect("submit")
            .wait();
        let want_logs = oracle.db.scan("logs").expect("scan");
        let want_loops = oracle.db.scan("loops").expect("scan");
        drop(oracle);

        // Interrupted run: kill the runner after `crash_after` versions.
        let path = fresh_wal("crashed");
        let flor = seeded(&path, versions);
        flor.job_runner().crash_after_units(crash_after);
        let handle = flor
            .submit_backfill_with("train.fl", &["acc"], 0, 1)
            .expect("submit");
        flor.job_runner().wait_idle();
        let interrupted = flor.job_runner().is_crashed();
        prop_assert_eq!(interrupted, (crash_after as usize) <= versions);
        drop(handle);
        drop(flor);

        // Reopen: Flor::open resumes the incomplete job automatically
        // (the new source comes from the persisted job payload, the old
        // sources from the durable git table — the in-memory repo is
        // empty after reopen).
        let flor = Flor::open_with_workers("crash", &path, 1).expect("reopen");
        flor.job_runner().wait_idle();
        let stats = flor.job_stats().expect("stats");
        prop_assert_eq!(stats.done, 1, "job must end Done after resume");
        prop_assert_eq!(stats.running + stats.queued + stats.failed, 0);

        // Convergence: the data plane is bit-identical to the
        // uninterrupted run — rows, order, ctx ids and all.
        prop_assert_eq!(flor.db.scan("logs").expect("scan"), want_logs);
        prop_assert_eq!(flor.db.scan("loops").expect("scan"), want_loops);
        // And the maintained view over it equals the oracle recompute.
        let inc = flor.dataframe(&["loss", "acc"]).expect("view");
        let full = flor.dataframe_full(&["loss", "acc"]).expect("oracle");
        prop_assert_eq!(inc, full);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&oracle_path);
    }
}
