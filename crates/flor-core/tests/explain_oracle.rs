//! `QueryBuilder::explain` oracle: the report's counts must be
//! measurements of the query that actually ran — the frame equals the
//! from-scratch oracle, the store probe's row accounting equals a raw
//! scan of the `logs` table, and the view stage flags reflect the
//! catalog's real hit/miss/refresh behaviour.

use flor_core::Flor;
use flor_df::Value;
use flor_store::{AccessPath, CmpOp};

fn seeded() -> Flor {
    let flor = Flor::new("explain");
    flor.set_filename("train.fl");
    for run in 0..4i64 {
        flor.for_each("epoch", 0..3, |flor, &e| {
            flor.log("loss", 1.0 / (run + e + 1) as f64);
            flor.log("lr", 0.01 * (run + 1) as f64);
            if e == 0 {
                flor.log("note", format!("run{run}"));
            }
        });
        flor.commit("run").unwrap();
    }
    flor
}

/// Count `logs` rows whose `value_name` is one of `names` — what the
/// store probe behind `explain` must report as returned rows.
fn matching_log_rows(flor: &Flor, names: &[&str]) -> usize {
    let logs = flor.db.scan("logs").unwrap();
    logs.column("value_name")
        .unwrap()
        .values
        .iter()
        .filter(|v| names.iter().any(|n| **v == Value::from(*n)))
        .count()
}

#[test]
fn explain_counts_match_the_query_that_ran() {
    let flor = seeded();
    let build = || {
        flor.query(&["loss", "lr"])
            .filter("lr", CmpOp::Gt, 0.015)
            .order_by("loss", true)
            .limit(5)
    };

    let report = build().explain().unwrap();
    let oracle = build().collect_full().unwrap();

    // The plan really executed: same frame as the oracle.
    assert_eq!(*report.frame, oracle);
    assert_eq!(report.rows_returned, oracle.n_rows());
    assert_eq!(report.rows_returned, 5);

    // Store probe: the base fetch goes through the value_name index and
    // returns exactly the projected log rows.
    assert_eq!(
        report.store.access,
        AccessPath::IndexIn("value_name".to_string())
    );
    assert_eq!(report.store.table, "logs");
    assert_eq!(
        report.store.rows_returned,
        matching_log_rows(&flor, &["loss", "lr"])
    );
    assert!(report.store.rows_examined >= report.store.rows_returned);
    assert_eq!(
        report.store.segments_scanned + report.store.segments_pruned,
        report.store.segments_total
    );

    // First run built the view; nothing to rebuild.
    assert!(!report.view_hit, "first execution must be a build");
    assert!(!report.view_rebuilt);

    // The rendering carries the headline numbers.
    let text = report.to_string();
    assert!(text.contains("EXPLAIN"));
    assert!(text.contains("index-in(value_name)") || text.contains("value_name"));
}

#[test]
fn explain_reflects_view_reuse_and_refresh() {
    let flor = seeded();
    let build = || flor.query(&["loss"]).filter("tstamp", CmpOp::Ge, 2);

    let first = build().explain().unwrap();
    assert!(!first.view_hit);

    // Unchanged data: served from cache, no feed batches to apply.
    let second = build().explain().unwrap();
    assert!(second.view_hit, "second execution must reuse the view");
    assert!(!second.view_rebuilt);
    assert_eq!(second.batches_applied, 0);
    assert_eq!(*second.frame, *first.frame);

    // A commit in between: still a hit, refreshed by applying deltas.
    flor.log("loss", 0.001);
    flor.commit("live").unwrap();
    let third = build().explain().unwrap();
    assert!(third.view_hit);
    assert!(!third.view_rebuilt);
    assert!(third.batches_applied >= 1, "delta batch must be applied");
    assert_eq!(third.rows_returned, second.rows_returned + 1);
    assert_eq!(*third.frame, build().collect_full().unwrap());
}

#[test]
fn kernel_metrics_snapshot_sees_every_layer() {
    let flor = seeded();
    flor.dataframe(&["loss"]).unwrap();
    flor.dataframe(&["loss"]).unwrap();
    let snap = flor.metrics();

    // Store layer: one commit latency sample per kernel commit.
    let commits = snap.histogram("store.commit.nanos").unwrap();
    assert_eq!(commits.count, 4);
    assert!(snap.counter("store.commit.rows").unwrap() > 0);
    assert!(snap.histogram("store.wal.fsync_nanos").unwrap().count >= 4);

    // Query accounting flowed from the traced store reads.
    assert!(snap.counter("store.query.rows_examined").unwrap() > 0);

    // View layer: the two dataframe calls above are one miss + one hit.
    assert_eq!(snap.counter("view.misses"), Some(1));
    assert_eq!(snap.counter("view.hits"), Some(1));

    // Renders both ways without panicking, and JSON mentions a metric.
    assert!(snap.render_text().contains("store.commit.nanos"));
    assert!(snap.to_json().contains("store.commit.rows"));
}
