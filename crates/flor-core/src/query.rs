//! The lazy query builder: one composable, typed surface for every
//! context read.
//!
//! The paper's core promise is that practitioners *query* the
//! ML-lifecycle context — filter runs by hyperparameter, slice metrics
//! per epoch, take the latest per group. [`Flor::query`] builds a
//! [`QueryPlan`] lazily; nothing touches the store until a `collect`
//! call, at which point the plan lowers through three layers (store
//! index pushdown → incrementally maintained view → dataframe
//! post-pass; see [`flor_view::plan`]). All six legacy `dataframe*`
//! entrypoints are one-line wrappers over this builder.
//!
//! ```
//! use flor_core::Flor;
//! use flor_store::CmpOp;
//!
//! let flor = Flor::new("demo");
//! flor.set_filename("train.fl");
//! for run in 0..3 {
//!     flor.log("lr", 0.01 * (run + 1) as f64);
//!     flor.log("loss", 1.0 / (run + 1) as f64);
//!     flor.commit("run").unwrap();
//! }
//!
//! let df = flor
//!     .query(&["lr", "loss"])
//!     .filter("lr", CmpOp::Gt, 0.015)
//!     .order_by("tstamp", false)
//!     .limit(10)
//!     .collect()
//!     .unwrap();
//! assert_eq!(df.n_rows(), 2);
//!
//! // The incremental path always equals the from-scratch oracle.
//! let oracle = flor
//!     .query(&["lr", "loss"])
//!     .filter("lr", CmpOp::Gt, 0.015)
//!     .order_by("tstamp", false)
//!     .limit(10)
//!     .collect_full()
//!     .unwrap();
//! assert_eq!(df, oracle);
//! ```

use crate::kernel::Flor;
use flor_df::{DataFrame, Value};
use flor_store::{CmpOp, Predicate, Query, QueryExplain, StoreResult};
use flor_view::QueryPlan;
use std::sync::Arc;
use std::time::Instant;

/// A lazy dataframe query over one [`Flor`] instance.
///
/// Built by [`Flor::query`]; executes on [`QueryBuilder::collect`] (or
/// its variants). Every combinator is cheap — it only edits the plan.
#[derive(Clone)]
pub struct QueryBuilder<'a> {
    flor: &'a Flor,
    plan: QueryPlan,
}

/// How one [`QueryBuilder`] execution actually ran, stage by stage —
/// returned by [`QueryBuilder::explain`]. The plan really executes
/// (every count is a measurement, not an estimate):
/// [`ExplainReport::frame`] is the same frame
/// [`QueryBuilder::collect_view`] would have returned.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The plan that ran.
    pub plan: QueryPlan,
    /// Store-layer report for the base `logs` fetch that feeds the
    /// view: access path (index vs full scan), zone-map segment
    /// pruning, rows examined vs returned at the store, binary-search
    /// probes into clustered segments (`clustered_probes` — `logs` is
    /// clustered by `tstamp`), and the order path (full sort vs
    /// streaming top-K) when the query sorts. Probed on a fresh
    /// snapshot with the same index query the view's build uses, so
    /// under concurrent commits the counts can trail the serving
    /// snapshot's by the interleaved rows.
    pub store: QueryExplain,
    /// Whether the view catalog served the plan from an existing
    /// materialized view (after applying any pending feed deltas).
    pub view_hit: bool,
    /// Whether serving had to fall back to a from-scratch rebuild
    /// (a change-feed gap; see `flor_view`).
    pub view_rebuilt: bool,
    /// Change-feed batches applied to bring the view current.
    pub batches_applied: u64,
    /// Wall-clock nanoseconds serving the plan from the view catalog —
    /// refresh (or first build) plus the residual post-pass.
    pub serve_nanos: u64,
    /// Rows in the final frame handed back to the caller.
    pub rows_returned: usize,
    /// The result frame itself.
    pub frame: Arc<DataFrame>,
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "EXPLAIN {:?}", self.plan.names)?;
        let view = match (self.view_hit, self.view_rebuilt) {
            (_, true) => "rebuild",
            (true, false) => "hit",
            (false, false) => "miss (built)",
        };
        writeln!(
            f,
            "  view: {view}, {} feed batch(es) applied, serve {}ns",
            self.batches_applied, self.serve_nanos
        )?;
        for line in self.store.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        write!(f, "  rows returned to caller: {}", self.rows_returned)
    }
}

impl std::fmt::Debug for QueryBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBuilder")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl Flor {
    /// Start a lazy query projecting the log `value_name`s in `names`.
    ///
    /// Chain [`QueryBuilder::filter`], [`QueryBuilder::latest`],
    /// [`QueryBuilder::order_by`] and [`QueryBuilder::limit`], then
    /// execute with [`QueryBuilder::collect`] (incremental),
    /// [`QueryBuilder::collect_view`] (incremental, shared snapshot) or
    /// [`QueryBuilder::collect_full`] (from-scratch oracle).
    pub fn query(&self, names: &[&str]) -> QueryBuilder<'_> {
        QueryBuilder {
            flor: self,
            plan: QueryPlan::new(names),
        }
    }

    /// Execute a ready-made [`QueryPlan`] incrementally (the path behind
    /// [`QueryBuilder::collect_view`]).
    ///
    /// When tracing is enabled ([`Flor::set_tracing`]) the execution
    /// publishes a `query.collect` trace; when the slow-query log is
    /// armed ([`Flor::set_slow_query_threshold`]) and the execution
    /// exceeds the threshold, a measured [`ExplainReport`] plus the
    /// trace land in [`Flor::slow_queries`]. With both off, this is two
    /// relaxed loads on top of the plain view serve.
    pub fn run_plan(&self, plan: &QueryPlan) -> StoreResult<Arc<DataFrame>> {
        let registry = self.metrics_registry();
        let traces = registry.traces();
        let slow = registry.slow_queries();
        if !traces.enabled() && !slow.armed() {
            return self.views.plan(plan);
        }
        let mut tr =
            flor_obs::ActiveTrace::start_detached(flor_obs::TraceId::generate(), "query.collect");
        tr.set_detail(format!("{:?}", plan.names));
        // The stats delta is only consumed by a slow-query capture;
        // don't pay for the catalog lock when no threshold is armed.
        let before = slow.armed().then(|| self.views.stats());
        let sp = tr.begin("view.plan");
        let result = self.views.plan(plan);
        tr.end(sp);
        if let Ok(frame) = &result {
            tr.event(format!("rows={}", frame.n_rows()));
        }
        let total = tr.elapsed_nanos();
        let threshold = slow.threshold_nanos();
        let breach = result.is_ok() && matches!(threshold, Some(t) if total > t);
        let trace = tr.finish(traces);
        if breach {
            // audit: allow(panic) — `breach` is defined three lines up
            // as `result.is_ok() && threshold armed`, so both unwraps
            // are guarded by the very flag that gates this block.
            let frame = result.as_ref().expect("breach implies ok");
            let before = before.expect("breach implies armed"); // audit: allow(panic) — same guard

            let after = self.views.stats();
            // The same measured report `QueryBuilder::explain` builds:
            // view-stage deltas plus a store probe of the base fetch.
            let names: Vec<Value> = plan.names.iter().map(|n| Value::from(n.as_str())).collect();
            let snap = self.db.pin();
            if let Ok((_, store)) =
                snap.explain(&Query::table("logs").filter_in("value_name", names))
            {
                let report = ExplainReport {
                    store,
                    view_hit: after.hits > before.hits,
                    view_rebuilt: after.fallback_rebuilds > before.fallback_rebuilds,
                    batches_applied: after.batches_applied.saturating_sub(before.batches_applied),
                    serve_nanos: total,
                    rows_returned: frame.n_rows(),
                    plan: plan.clone(),
                    frame: Arc::clone(frame),
                };
                slow.record(flor_obs::SlowQueryRecord {
                    trace,
                    verb: "query.collect".into(),
                    plan: format!("{:?}", plan.names),
                    explain: report.to_string(),
                    total_nanos: total,
                    threshold_nanos: threshold.unwrap_or(u64::MAX),
                    at_unix_micros: flor_obs::unix_micros(),
                });
            }
        }
        result
    }

    /// Execute a [`QueryPlan`] from scratch: re-fetch, re-join and
    /// re-pivot the base tables, then apply the whole plan as a
    /// post-pass. The correctness oracle for [`Flor::run_plan`].
    pub fn run_plan_full(&self, plan: &QueryPlan) -> StoreResult<DataFrame> {
        let names: Vec<&str> = plan.names.iter().map(String::as_str).collect();
        let base = self.pivot_from_scratch(&names)?;
        if plan.post_pass_is_identity(&plan.predicates, plan.latest_group.is_some()) {
            return Ok(base);
        }
        plan.post_pass(&base, &plan.predicates, true)
    }

    /// Execute a [`QueryPlan`] against a **caller-pinned**
    /// [`Snapshot`](flor_store::Snapshot): the from-scratch pivot and the
    /// whole plan post-pass run at exactly the snapshot's epoch, no
    /// matter how many commits land meanwhile. This is how `flor-serve`
    /// answers every request of a session at the epoch the session
    /// pinned: the response is byte-identical to what
    /// [`Flor::run_plan_full`] would have returned at that moment.
    pub fn run_plan_at(
        &self,
        snap: &flor_store::Snapshot,
        plan: &QueryPlan,
    ) -> StoreResult<DataFrame> {
        let names: Vec<&str> = plan.names.iter().map(String::as_str).collect();
        let base = Flor::pivot_at(snap, &names)?;
        if plan.post_pass_is_identity(&plan.predicates, plan.latest_group.is_some()) {
            return Ok(base);
        }
        plan.post_pass(&base, &plan.predicates, true)
    }

    /// [`Flor::run_plan_at`] with child spans recorded into an active
    /// trace: `store.scan` (the base `logs` fetch through the *measured*
    /// store query, its access path and zone pruning as a span event),
    /// `pivot`, and `post_pass` when one runs. The returned frame is
    /// byte-identical to [`Flor::run_plan_at`]'s — the measured fetch
    /// returns rows in the same order as the untraced index path — and
    /// the measured [`QueryExplain`] rides along for slow-query capture.
    pub fn run_plan_at_traced(
        &self,
        snap: &flor_store::Snapshot,
        plan: &QueryPlan,
        tr: &mut flor_obs::ActiveTrace,
    ) -> StoreResult<(DataFrame, QueryExplain)> {
        let values: Vec<Value> = plan.names.iter().map(|n| Value::from(n.as_str())).collect();
        let scan = tr.begin("store.scan");
        let (logs, explain) =
            snap.explain(&Query::table("logs").filter_in("value_name", values))?;
        tr.event(format!(
            "access={} segments={}/{} pruned={} rows examined={} returned={}",
            explain.access,
            explain.segments_scanned,
            explain.segments_total,
            explain.segments_pruned,
            explain.rows_examined,
            explain.rows_returned,
        ));
        tr.end(scan);
        let piv = tr.begin("pivot");
        let base = Flor::pivot_logs(snap, logs)?;
        tr.end(piv);
        if plan.post_pass_is_identity(&plan.predicates, plan.latest_group.is_some()) {
            return Ok((base, explain));
        }
        let pp = tr.begin("post_pass");
        let out = plan.post_pass(&base, &plan.predicates, true)?;
        tr.end(pp);
        Ok((out, explain))
    }
}

impl<'a> QueryBuilder<'a> {
    /// Keep rows where `col op value` over the pivoted view's columns
    /// (fixed context columns, loop dimensions, or logged values).
    /// Predicates over `projid`/`tstamp`/`filename` are pushed down and
    /// maintained inside the materialized view; the rest run as a cheap
    /// post-pass. A predicate naming an unknown column matches nothing.
    pub fn filter(mut self, col: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        self.plan.predicates.push(Predicate::new(col, op, value));
        self
    }

    /// Shorthand for an equality [`QueryBuilder::filter`].
    pub fn filter_eq(self, col: &str, value: impl Into<Value>) -> Self {
        self.filter(col, CmpOp::Eq, value)
    }

    /// Deduplicate to the max-`tstamp` rows per distinct `group` key
    /// (paper Fig. 6's `flor.utils.latest`), after filtering.
    pub fn latest(mut self, group: &[&str]) -> Self {
        self.plan.latest_group = Some(group.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Sort by `col`, ascending (`true`) or descending; may be chained
    /// for tie-breaking. Applied after filtering and dedup.
    pub fn order_by(mut self, col: &str, ascending: bool) -> Self {
        self.plan.order_by.push((col.to_string(), ascending));
        self
    }

    /// Keep at most `n` rows, after ordering.
    pub fn limit(mut self, n: usize) -> Self {
        self.plan.limit = Some(n);
        self
    }

    /// The canonical plan built so far.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Consume the builder, yielding the plan (e.g. to run it later or
    /// against another instance).
    pub fn into_plan(self) -> QueryPlan {
        self.plan
    }

    /// Execute incrementally and return an owned frame.
    pub fn collect(self) -> StoreResult<DataFrame> {
        self.flor.run_plan(&self.plan).map(|arc| (*arc).clone())
    }

    /// Execute incrementally without copying: plans with no post-pass
    /// (no residual filter, order or limit) share the maintained view's
    /// allocation — repeated calls with no intervening commits return
    /// the same `Arc`.
    pub fn collect_view(self) -> StoreResult<Arc<DataFrame>> {
        self.flor.run_plan(&self.plan)
    }

    /// Execute the plan and report how it ran: the store's access path
    /// and zone-map pruning for the base `logs` fetch, the view
    /// catalog's hit/miss/rebuild behaviour, and per-stage wall-clock
    /// timings. The plan really executes — [`ExplainReport::frame`] is
    /// the frame [`QueryBuilder::collect_view`] would return, and every
    /// count is a measurement taken from that execution (plus one store
    /// probe of the same base fetch), not a planner estimate.
    pub fn explain(self) -> StoreResult<ExplainReport> {
        let before = self.flor.views.stats();
        let t0 = Instant::now();
        let frame = self.flor.run_plan(&self.plan)?;
        let serve_nanos = t0.elapsed().as_nanos() as u64;
        let after = self.flor.views.stats();
        // Probe the store with the same index query the view's build
        // performs, on a fresh snapshot, to surface the access path and
        // pruning behind the serve above.
        let names: Vec<Value> = self
            .plan
            .names
            .iter()
            .map(|n| Value::from(n.as_str()))
            .collect();
        let snap = self.flor.db.pin();
        let (_, store) = snap.explain(&Query::table("logs").filter_in("value_name", names))?;
        Ok(ExplainReport {
            store,
            view_hit: after.hits > before.hits,
            view_rebuilt: after.fallback_rebuilds > before.fallback_rebuilds,
            batches_applied: after.batches_applied.saturating_sub(before.batches_applied),
            serve_nanos,
            rows_returned: frame.n_rows(),
            plan: self.plan,
            frame,
        })
    }

    /// Execute from scratch (the correctness oracle): full re-pivot of
    /// the projected history, then the whole plan as a post-pass —
    /// equivalent to post-hoc filtering of `dataframe_full`.
    pub fn collect_full(self) -> StoreResult<DataFrame> {
        self.flor.run_plan_full(&self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> Flor {
        let flor = Flor::new("q");
        flor.set_filename("train.fl");
        for run in 0..4i64 {
            flor.for_each("epoch", 0..3, |flor, &e| {
                flor.log("loss", 1.0 / (run + e + 1) as f64);
                flor.log("lr", 0.01 * (run + 1) as f64);
            });
            flor.commit("run").unwrap();
        }
        flor
    }

    #[test]
    fn filter_order_limit_matches_oracle() {
        let flor = seeded();
        let build = || {
            flor.query(&["loss", "lr"])
                .filter("lr", CmpOp::Gt, 0.015)
                .filter("tstamp", CmpOp::Le, 3)
                .order_by("loss", true)
                .limit(4)
        };
        let inc = build().collect().unwrap();
        let full = build().collect_full().unwrap();
        assert_eq!(inc, full);
        assert_eq!(inc.n_rows(), 4);
    }

    #[test]
    fn latest_after_filter_matches_oracle() {
        let flor = seeded();
        let build = || {
            flor.query(&["loss", "lr"])
                .filter("lr", CmpOp::Lt, 0.035)
                .latest(&["epoch_iteration"])
        };
        let inc = build().collect().unwrap();
        let full = build().collect_full().unwrap();
        assert_eq!(inc, full);
        // Latest over the filtered rows: runs 1..3 survive the lr filter,
        // so the max surviving tstamp per epoch is run 3's.
        assert_eq!(inc.n_rows(), 3);
        for v in &inc.column("tstamp").unwrap().values {
            assert_eq!(v, &Value::Int(3));
        }
    }

    #[test]
    fn pushdown_views_refresh_incrementally() {
        let flor = seeded();
        let q = || {
            flor.query(&["loss"])
                .filter("tstamp", CmpOp::Ge, 3)
                .collect_view()
        };
        let first = q().unwrap();
        assert_eq!(first.n_rows(), 6);
        let before = flor.views.stats();
        flor.log("loss", 0.123);
        flor.commit("live").unwrap();
        let after = q().unwrap();
        assert_eq!(after.n_rows(), 7);
        let stats = flor.views.stats();
        assert_eq!(stats.misses, before.misses, "delta applied, no rebuild");
        // No post-pass → snapshot sharing.
        assert!(Arc::ptr_eq(&after, &q().unwrap()));
    }

    #[test]
    fn unknown_filter_column_matches_nothing_in_both_paths() {
        let flor = seeded();
        let inc = flor
            .query(&["loss"])
            .filter_eq("no_such", 1)
            .collect()
            .unwrap();
        let full = flor
            .query(&["loss"])
            .filter_eq("no_such", 1)
            .collect_full()
            .unwrap();
        assert_eq!(inc, full);
        assert_eq!(inc.n_rows(), 0);
        assert!(inc.n_cols() > 0, "columns survive an empty match");
    }

    #[test]
    fn run_plan_traces_and_captures_slow_queries() {
        let flor = seeded();
        flor.set_tracing(true);
        flor.set_slow_query_threshold(Some(std::time::Duration::ZERO));
        let df = flor.query(&["loss"]).collect().unwrap();
        assert!(df.n_rows() > 0);
        let traces = flor.traces();
        let t = traces.last().expect("trace recorded");
        assert_eq!(t.label, "query.collect");
        assert!(t.span("view.plan").is_some());
        assert_eq!(flor.find_trace(t.id).as_ref(), Some(t));
        let slow = flor.slow_queries();
        let rec = slow.last().expect("zero threshold captures everything");
        assert!(rec.explain.contains("QUERY logs"), "store probe rendered");
        assert!(rec.explain.contains("rows returned to caller"));
        assert_eq!(rec.trace.label, "query.collect");
        flor.set_tracing(false);
        flor.set_slow_query_threshold(None);
        let n = flor.traces().len();
        flor.query(&["loss"]).collect().unwrap();
        assert_eq!(flor.traces().len(), n, "disabled: nothing recorded");
    }

    #[test]
    fn traced_snapshot_execution_is_byte_identical() {
        let flor = seeded();
        let plan = flor
            .query(&["loss", "lr"])
            .filter("lr", CmpOp::Gt, 0.015)
            .order_by("loss", true)
            .limit(5)
            .into_plan();
        let snap = flor.db.pin();
        let plain = flor.run_plan_at(&snap, &plan).unwrap();
        let mut tr = flor_obs::ActiveTrace::start_detached(flor_obs::TraceId::generate(), "query");
        let (traced, explain) = flor.run_plan_at_traced(&snap, &plan, &mut tr).unwrap();
        assert_eq!(plain, traced);
        assert!(explain.rows_returned > 0);
        let trace = tr.into_trace();
        assert!(trace.span("store.scan").is_some());
        assert!(trace.span("pivot").is_some());
        assert!(trace.span("post_pass").is_some());
        let scan = trace.span("store.scan").unwrap();
        assert!(scan.events.iter().any(|e| e.message.contains("access=")));
    }

    #[test]
    fn plan_round_trip() {
        let flor = seeded();
        let plan = flor
            .query(&["loss"])
            .filter("tstamp", CmpOp::Gt, 1)
            .limit(2)
            .into_plan();
        let via_plan = flor.run_plan(&plan).unwrap();
        assert_eq!(via_plan.n_rows(), 2);
        assert_eq!(*via_plan, flor.run_plan_full(&plan).unwrap());
    }
}
