//! Multiversion hindsight logging: the paper's "magic trick" end to end.
//!
//! "Developers can add the desired logging statements to the latest version
//! of their code, and FlorDB will (a) inject these statements into the
//! correct locations in all prior versions of the code, and (b)
//! retroactively execute these statements across all those versions via
//! incremental replay, without the need for full re-execution." (§2)
//!
//! [`backfill`] does exactly that: for every prior run of a script missing
//! the requested values, it checks out that version's source, propagates
//! the new `flor.log` statements into it (`flor-diff`), replays only the
//! iterations that need to produce values (`flor-record`, restoring from
//! stored checkpoints, in parallel), and ingests the recovered values into
//! the `logs` table *at the original run's timestamp* — so the next
//! `flor.dataframe` call sees a complete history.
//!
//! Since the flor-jobs control plane landed, [`backfill`] is a thin
//! submit-then-wait wrapper over [`Flor::submit_backfill`]: the work is
//! decomposed into one unit per prior version (a pure compute phase and
//! a staging phase the runner commits atomically), scheduled by priority
//! across the kernel's worker pool, committed incrementally (live views
//! refresh as each version completes), cancellable, and resumed from the
//! `jobs` table after a crash. See [`crate::jobs`] for the kernel wiring.

use crate::kernel::Flor;
use crate::runtime::load_record;
use flor_df::Value;
use flor_diff::propagate_logs;
use flor_record::{iterations_logging, replay_with, LogRecord, ReplayControl};
use flor_script::{parse, Program};
use flor_store::{Query, StoreResult};
use std::collections::HashMap;

/// What happened for one prior version during backfill.
#[derive(Debug, Clone)]
pub struct VersionOutcome {
    /// The run's logical timestamp.
    pub tstamp: i64,
    /// Version id of the code that ran.
    pub vid: String,
    /// Log statements injected by propagation.
    pub injected: usize,
    /// Iterations replayed (vs. the loop's total).
    pub iterations_replayed: usize,
    /// Total iterations of the checkpoint loop.
    pub iterations_total: usize,
    /// Values recovered and ingested.
    pub values_recovered: usize,
    /// Why the version was skipped, if it was.
    pub skipped: Option<String>,
}

/// Aggregate result of a [`backfill`] call.
#[derive(Debug, Clone, Default)]
pub struct BackfillReport {
    /// Per-version outcomes (oldest first).
    pub versions: Vec<VersionOutcome>,
    /// Total values ingested.
    pub values_recovered: usize,
    /// Total iterations replayed across versions.
    pub iterations_replayed: usize,
    /// Total iterations that a naive full re-execution would have run.
    pub iterations_full: usize,
}

/// All recorded runs of `filename`: `(tstamp, vid)`, oldest first.
///
/// Served by indexed store scans (the PR 2 query layer) against one
/// pinned snapshot, so the run list and the commit windows reflect the
/// same epoch even while the writer is landing versions: the run tstamps
/// come from the `logs` table via its `filename` index projected down to
/// one column — not a full-width table scan — and each run is matched to
/// its commit window by binary search over the sorted `ts2vid` spans.
pub fn runs_of(flor: &Flor, filename: &str) -> StoreResult<Vec<(i64, String)>> {
    let snap = flor.db.pin();
    let ts = snap.query(
        &Query::table("logs")
            .filter_eq("filename", filename)
            .project(&["tstamp"]),
    )?;
    let mut tstamps: Vec<i64> = ts
        .column("tstamp")
        .map(|c| c.values.iter().filter_map(Value::as_i64).collect())
        .unwrap_or_default();
    tstamps.sort_unstable();
    tstamps.dedup();
    if tstamps.is_empty() {
        return Ok(Vec::new());
    }
    let windows = snap.query(
        &Query::table("ts2vid")
            .project(&["ts_start", "ts_end", "vid"])
            .order_by("ts_start", true),
    )?;
    let spans: Vec<(i64, i64, String)> = windows
        .rows()
        .map(|r| {
            (
                r.get("ts_start")
                    .and_then(Value::as_i64)
                    .unwrap_or(i64::MAX),
                r.get("ts_end").and_then(Value::as_i64).unwrap_or(i64::MIN),
                r.get("vid").map(|v| v.to_text()).unwrap_or_default(),
            )
        })
        .collect();
    let mut out = Vec::new();
    for t in tstamps {
        // Last window opening at or before t; commit windows are disjoint.
        let idx = spans.partition_point(|(s, _, _)| *s <= t);
        if idx > 0 {
            let (s, e, vid) = &spans[idx - 1];
            if *s <= t && t <= *e {
                out.push((t, vid.clone()));
            }
        }
    }
    Ok(out)
}

/// The contents of `filename` at version `vid`: from the in-memory gitlite
/// repository when it has the commit, else from the durable `git` table —
/// the fallback that makes backfill *resumable*: a reopened kernel has an
/// empty repository, but the `git` rows written at commit time survive.
pub(crate) fn source_at(flor: &Flor, vid: &str, filename: &str) -> StoreResult<Option<String>> {
    if let Ok(Some(src)) = flor.repo.file_at(&flor_git::Oid(vid.to_string()), filename) {
        return Ok(Some(src));
    }
    let rows = flor.db.lookup("git", "vid", &Value::from(vid))?;
    let found = rows
        .rows()
        .find(|r| r.get("filename").map(|v| v.to_text()).as_deref() == Some(filename))
        .and_then(|r| r.get("contents").map(|v| v.to_text()));
    Ok(found)
}

/// One backfill unit's full result: the human-facing [`VersionOutcome`]
/// plus the recovered log records the staging phase writes and the
/// full-reexecution iteration count the report aggregates. This is the
/// per-unit outcome type the kernel's `JobRunner` carries.
#[derive(Debug, Clone)]
pub struct VersionResult {
    /// The per-version outcome.
    pub outcome: VersionOutcome,
    /// Recovered log records (filtered to the requested names), pending
    /// ingestion at the original run's timestamp.
    pub new_logs: Vec<LogRecord>,
    /// Iterations a naive full re-execution of this version would run
    /// (0 when the version was skipped).
    pub full_iterations: usize,
}

/// The unit-independent half of a backfill job: what every version of
/// one request shares (the script, the requested names, the per-version
/// replay parallelism, and the parsed new source).
pub(crate) struct BackfillTask<'a> {
    pub filename: &'a str,
    pub names: &'a [String],
    pub parallelism: usize,
    pub new_prog: &'a Program,
}

/// The compute phase of one backfill unit: load the run's record, find
/// the iterations lacking the requested names, propagate the new log
/// statements into that version's source, and incrementally replay only
/// what is needed. Pure with respect to the store — nothing is staged or
/// committed — so any number of versions can compute concurrently while
/// readers keep flowing; [`stage_version`] applies the results.
pub(crate) fn compute_version(
    flor: &Flor,
    task: &BackfillTask<'_>,
    tstamp: i64,
    vid: &str,
    ctl: &ReplayControl,
) -> StoreResult<VersionResult> {
    let BackfillTask {
        filename,
        names,
        parallelism,
        new_prog,
    } = *task;
    let mut result = VersionResult {
        outcome: VersionOutcome {
            tstamp,
            vid: vid.to_string(),
            injected: 0,
            iterations_replayed: 0,
            iterations_total: 0,
            values_recovered: 0,
            skipped: None,
        },
        new_logs: Vec::new(),
        full_iterations: 0,
    };
    let outcome = &mut result.outcome;
    let record = load_record(flor, filename, tstamp)?;
    let Some((_, total)) = record.ckpt_loop.clone() else {
        outcome.skipped = Some("run had no checkpoint loop".to_string());
        return Ok(result);
    };
    outcome.iterations_total = total;
    // Which iterations lack which names?
    let mut needed: Vec<usize> = Vec::new();
    for name in names {
        let have = iterations_logging(&record.logs, name);
        for i in 0..total {
            if !have.contains(&i) {
                needed.push(i);
            }
        }
    }
    needed.sort_unstable();
    needed.dedup();
    if needed.is_empty() {
        outcome.skipped = Some("all requested values already logged".to_string());
        return Ok(result);
    }
    result.full_iterations = total;
    // The old source at that version (repo, or the durable git table).
    let Some(old_source) = source_at(flor, vid, filename)? else {
        outcome.skipped = Some("source missing at that version".to_string());
        return Ok(result);
    };
    let Ok(old_prog) = parse(&old_source) else {
        outcome.skipped = Some("old source failed to parse".to_string());
        return Ok(result);
    };
    // (a) inject the new statements into the old version.
    let prop = propagate_logs(&old_prog, new_prog);
    outcome.injected = prop.injected.len();
    // (b) incremental replay of only the needed iterations, with the
    // job's cancellation token and progress counter threaded through.
    match replay_with(&prop.patched, &record, &needed, parallelism, ctl) {
        Ok(replayed) if replayed.cancelled => {
            // Partial logs must not be ingested; the executor surfaces
            // the cancellation from the control flag.
        }
        Ok(replayed) => {
            outcome.iterations_replayed = replayed.iterations_executed;
            result.new_logs = replayed
                .new_logs
                .into_iter()
                .filter(|l| names.iter().any(|n| n == &l.name))
                .collect();
            outcome.values_recovered = result.new_logs.len();
        }
        Err(e) => {
            outcome.skipped = Some(format!("replay failed: {e}"));
        }
    }
    Ok(result)
}

/// The staging phase of one backfill unit: write the recovered values
/// into `logs`/`loops` at the original run's timestamp. Inserts only —
/// the job runner commits them atomically with the job's progress
/// transition, which is what makes a crash between versions recoverable.
pub(crate) fn stage_version(flor: &Flor, filename: &str, result: &VersionResult) {
    let mut ingestor = Ingestor::new(flor, filename, result.outcome.tstamp);
    for log in &result.new_logs {
        ingestor.ingest(log);
    }
}

/// Assemble the aggregate report from per-version results, oldest first
/// (results arrive in completion order, which under multiple workers is
/// not submission order).
pub(crate) fn assemble_report(mut results: Vec<VersionResult>) -> BackfillReport {
    results.sort_by_key(|r| r.outcome.tstamp);
    let mut report = BackfillReport::default();
    for r in results {
        report.values_recovered += r.outcome.values_recovered;
        report.iterations_replayed += r.outcome.iterations_replayed;
        report.iterations_full += r.full_iterations;
        report.versions.push(r.outcome);
    }
    report
}

/// Backfill `names` for every prior run of `filename`, using the *current
/// working-tree* source as the version carrying the new log statements.
///
/// `parallelism` caps replay worker threads per version.
///
/// Since flor-jobs, this is submit-then-wait over the kernel's background
/// scheduler ([`Flor::submit_backfill_with`]): identical results, but the
/// work is durable (resumed after a crash), prioritized, and ingested
/// per-version — a concurrent reader sees values land incrementally
/// rather than all at once. Callers who want the asynchronous form use
/// [`Flor::submit_backfill`] directly.
pub fn backfill(
    flor: &Flor,
    filename: &str,
    names: &[&str],
    parallelism: usize,
) -> StoreResult<BackfillReport> {
    let handle = flor.submit_backfill_with(filename, names, 0, parallelism)?;
    let report = handle.wait();
    if handle.state() == flor_jobs::JobState::Failed {
        let detail = handle.detail();
        // Legacy contract: a missing or unparseable new script yields an
        // empty report, not an error...
        if detail.starts_with("script missing") || detail.starts_with("new source failed to parse")
        {
            return Ok(report);
        }
        // ...but store/replay failures propagate, as they always did.
        return Err(flor_store::StoreError::Invalid(format!(
            "backfill failed: {detail}"
        )));
    }
    Ok(report)
}

/// Writes replayed log records into `logs`/`loops` at a historical
/// timestamp, minting fresh ctx chains that mirror the replayed loop
/// frames.
struct Ingestor<'f> {
    flor: &'f Flor,
    filename: String,
    tstamp: i64,
    chains: HashMap<Vec<(String, usize, String)>, i64>,
}

impl<'f> Ingestor<'f> {
    fn new(flor: &'f Flor, filename: &str, tstamp: i64) -> Ingestor<'f> {
        Ingestor {
            flor,
            filename: filename.to_string(),
            tstamp,
            chains: HashMap::new(),
        }
    }

    fn ctx_for(&mut self, frames: &[flor_script::LoopFrame]) -> i64 {
        if frames.is_empty() {
            return 0;
        }
        let key: Vec<(String, usize, String)> = frames
            .iter()
            .map(|f| (f.name.clone(), f.iteration, f.value.clone()))
            .collect();
        if let Some(&id) = self.chains.get(&key) {
            return id;
        }
        let parent = self.ctx_for(&frames[..frames.len() - 1]);
        // audit: allow(panic) — the is_empty early-return above makes
        // `last()` infallible here.
        let last = frames.last().expect("non-empty");
        let ctx_id = {
            let mut st = self.flor.state.lock();
            let id = st.next_ctx;
            st.next_ctx += 1;
            id
        };
        self.flor
            .db
            .insert(
                "loops",
                vec![
                    Value::from(self.flor.projid.as_str()),
                    Value::Int(self.tstamp),
                    Value::from(self.filename.as_str()),
                    Value::Int(ctx_id),
                    Value::Int(parent),
                    Value::from(last.name.as_str()),
                    Value::Int(last.iteration as i64),
                    Value::from(last.value.as_str()),
                ],
            )
            // audit: allow(panic) — the kernel created `loops` with this
            // exact schema at open; the row is built to it right here.
            .expect("loops schema fixed");
        self.chains.insert(key, ctx_id);
        ctx_id
    }

    fn ingest(&mut self, log: &LogRecord) {
        let ctx = self.ctx_for(&log.loops);
        // Replayed values arrive as display text; store as Str (value_type
        // reflects text) unless it parses as a number.
        let value = if let Ok(i) = log.value.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(f) = log.value.parse::<f64>() {
            Value::Float(f)
        } else {
            Value::from(log.value.as_str())
        };
        self.flor
            .log_at(&log.name, &value, self.tstamp, &self.filename, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_script;
    use flor_record::CheckpointPolicy;

    const TRAIN_V1: &str = r#"
let data = load_dataset("first_page", 60, 42);
let epochs = flor.arg("epochs", 4);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
    }
}
"#;

    const TRAIN_V2: &str = r#"
let data = load_dataset("first_page", 60, 42);
let epochs = flor.arg("epochs", 4);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
        flor.log("recall", m[1]);
    }
}
"#;

    #[test]
    fn full_hindsight_workflow() {
        let flor = Flor::new("demo");
        // Two runs of v1 (no acc/recall logging).
        flor.fs.write("train.fl", TRAIN_V1);
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        flor.set_cli_arg("epochs", "3");
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        flor.clear_cli_args();
        // Developer regrets not logging acc/recall; writes v2 and runs it.
        flor.fs.write("train.fl", TRAIN_V2);
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        // The dataframe has holes for the two old runs.
        let before = flor.dataframe(&["loss", "acc", "recall"]).unwrap();
        let holes = before
            .column("acc")
            .map(|c| c.values.iter().filter(|v| v.is_null()).count())
            .unwrap_or(0);
        assert_eq!(holes, 7); // 4 + 3 old-epoch rows lack acc
                              // Backfill.
        let report = backfill(&flor, "train.fl", &["acc", "recall"], 2).unwrap();
        assert_eq!(report.versions.len(), 3);
        // v3 already has values → skipped; v1/v2 replayed fully (new stmt in
        // every iteration).
        assert_eq!(report.values_recovered, 14); // (4+3) × 2 names
        assert!(report.versions[2].skipped.is_some());
        assert_eq!(report.versions[0].injected, 3); // let m + 2 logs? no: logs only
                                                    // After: no holes.
        let after = flor.dataframe(&["loss", "acc", "recall"]).unwrap();
        let holes: usize = after
            .column("acc")
            .map(|c| c.values.iter().filter(|v| v.is_null()).count())
            .unwrap_or(99);
        assert_eq!(holes, 0);
        assert_eq!(after.n_rows(), 11); // 4 + 3 + 4 epoch rows
    }

    #[test]
    fn backfilled_values_match_foresight() {
        // Ground truth: run v2 from scratch (same seeds) and compare accs.
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", TRAIN_V1);
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        flor.fs.write("train.fl", TRAIN_V2);
        backfill(&flor, "train.fl", &["acc"], 1).unwrap();
        let hindsight = flor.dataframe(&["acc"]).unwrap();
        let hindsight_accs: Vec<String> = hindsight
            .column("acc")
            .unwrap()
            .values
            .iter()
            .map(|v| v.to_text())
            .collect();

        let truth = Flor::new("truth");
        truth.fs.write("train.fl", TRAIN_V2);
        run_script(&truth, "train.fl", CheckpointPolicy::None).unwrap();
        let truth_df = truth.dataframe(&["acc"]).unwrap();
        let truth_accs: Vec<String> = truth_df
            .column("acc")
            .unwrap()
            .values
            .iter()
            .map(|v| v.to_text())
            .collect();
        assert_eq!(hindsight_accs, truth_accs);
    }

    #[test]
    fn backfill_flows_into_live_views() {
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", TRAIN_V1);
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        flor.fs.write("train.fl", TRAIN_V2);
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        // Materialize the view while it still has holes.
        let before = flor.dataframe(&["loss", "acc"]).unwrap();
        let holes = before
            .column("acc")
            .map(|c| c.values.iter().filter(|v| v.is_null()).count())
            .unwrap_or(0);
        assert_eq!(holes, 4);
        // Backfill commits through the same feed: the next query applies
        // the recovered values as deltas into the already-built view.
        backfill(&flor, "train.fl", &["acc", "recall"], 2).unwrap();
        let after = flor.dataframe(&["loss", "acc"]).unwrap();
        assert_eq!(
            after
                .column("acc")
                .unwrap()
                .values
                .iter()
                .filter(|v| v.is_null())
                .count(),
            0,
            "hindsight values must flow into the live view"
        );
        // And incrementally-maintained still equals the from-scratch oracle.
        assert_eq!(after, flor.dataframe_full(&["loss", "acc"]).unwrap());
        assert_eq!(flor.views.stats().fallback_rebuilds, 0);
        assert_eq!(flor.views.stats().misses, 1);
    }

    #[test]
    fn runs_of_lists_versions() {
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", TRAIN_V1);
        let a = run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
        let b = run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
        let runs = runs_of(&flor, "train.fl").unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, a.tstamp);
        assert_eq!(runs[1].0, b.tstamp);
        assert_eq!(runs[0].1, a.vid.0);
        assert_eq!(runs[1].1, b.vid.0);
    }

    #[test]
    fn backfill_skips_complete_versions() {
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", TRAIN_V2);
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        let report = backfill(&flor, "train.fl", &["acc"], 1).unwrap();
        assert_eq!(report.values_recovered, 0);
        assert_eq!(report.versions.len(), 1);
        assert!(report.versions[0].skipped.is_some());
    }

    #[test]
    fn backfill_replays_less_than_full_when_partial() {
        // v1 logs acc only on even epochs; backfill needs odd epochs only.
        let partial = r#"
let data = load_dataset("first_page", 60, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 6)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
        if e % 2 == 0 {
            let m = eval_model(net, data);
            flor.log("acc", m[0]);
        }
    }
}
"#;
        let full = r#"
let data = load_dataset("first_page", 60, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 6)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
    }
}
"#;
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", partial);
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        flor.fs.write("train.fl", full);
        let report = backfill(&flor, "train.fl", &["acc"], 1).unwrap();
        let v = &report.versions[0];
        assert_eq!(v.iterations_total, 6);
        assert_eq!(v.iterations_replayed, 3); // only odd epochs
        assert_eq!(v.values_recovered, 3);
        // All 6 epochs now have acc.
        let df = flor.dataframe(&["acc"]).unwrap();
        let nulls = df
            .column("acc")
            .unwrap()
            .values
            .iter()
            .filter(|v| v.is_null())
            .count();
        assert_eq!(nulls, 0);
    }
}
