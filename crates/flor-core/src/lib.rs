//! # flor-core — the FlorDB kernel
//!
//! The public face of the reproduction: the paper's API (CIDR 2025, §2.1)
//! over the Fig. 1 relational data model, wired to every substrate.
//!
//! * [`Flor`] — `log` / `arg` / loop contexts (`for_each`, `iteration`) /
//!   `commit` / `query` / `dataframe` / `dataframe_latest`, writing the
//!   `logs`, `loops`, `ts2vid`, `git`, `obj_store` and `build_deps`
//!   tables;
//! * [`QueryBuilder`] — the lazy query surface behind [`Flor::query`]:
//!   filters, `latest` dedup, ordering and limits, lowered onto
//!   incrementally maintained views with predicate pushdown (the legacy
//!   `dataframe*` entrypoints are one-line wrappers over it);
//! * [`run_script`] — execute a versioned florscript file under full
//!   instrumentation with a checkpoint policy, persisting replay metadata;
//! * [`backfill`] — multiversion hindsight logging: propagate new log
//!   statements into prior versions and incrementally replay only what is
//!   needed, filling the dataframe's holes with values bit-identical to
//!   what foresight logging would have produced;
//! * [`Flor::submit_backfill`] — the same work as a durable background
//!   job ([`flor_jobs`]): prioritized per-version units, results landing
//!   incrementally in live views, cancellation, live progress on a
//!   [`BackfillHandle`], and crash-resume on [`Flor::open`] (the
//!   synchronous [`backfill`] is submit-then-wait over this).
//!
//! ```
//! use flor_core::Flor;
//! let flor = Flor::new("quickstart");
//! flor.set_filename("train.fl");
//! flor.log("acc", 0.91);
//! flor.log("recall", 0.84);
//! flor.commit("first run").unwrap();
//! let df = flor.dataframe(&["acc", "recall"]).unwrap();
//! assert_eq!(df.n_rows(), 1);
//! ```

#![warn(missing_docs)]

pub mod hindsight;
pub mod jobs;
pub mod kernel;
pub mod query;
pub mod runtime;

pub use hindsight::{backfill, runs_of, BackfillReport, VersionOutcome, VersionResult};
pub use jobs::{
    BackfillHandle, CheckpointHandle, CompactionHandle, JobOutcome, MaintenanceHandle,
    CHECKPOINT_PRIORITY, COMPACTION_PRIORITY, DEFAULT_REPLAY_PARALLELISM,
};
pub use kernel::{Flor, BLOB_SPILL_BYTES, DEFAULT_CHECKPOINT_THRESHOLD_BYTES, DEFAULT_JOB_WORKERS};
pub use query::{ExplainReport, QueryBuilder};
pub use runtime::{load_record, persist_record, run_script, RunError, RunOutcome, ScriptRuntime};
