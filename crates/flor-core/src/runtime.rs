//! Bridge between florscript execution and the Flor kernel.
//!
//! [`ScriptRuntime`] implements the interpreter's hook trait twice over:
//! it forwards everything to a `flor-record` [`Recorder`] (checkpoints,
//! replay metadata) *and* writes the live rows of the Fig. 1 data model
//! through the kernel (logs, loops, obj_store). [`run_script`] is the
//! "python train.py" equivalent: execute a versioned script under full
//! FlorDB instrumentation and commit the run.

use crate::kernel::Flor;
use flor_df::Value;
use flor_git::Oid;
use flor_record::{CheckpointPolicy, LogRecord, Recorder, RunRecord};
use flor_script::{
    parse, Directive, FlorRuntime, Interpreter, LoopFrame, RtError, RtResult, RtValue,
};
use flor_store::StoreResult;

/// Convert an interpreter value to a storable dataframe value.
pub fn rt_to_value(v: &RtValue) -> Value {
    match v {
        RtValue::None => Value::Null,
        RtValue::Int(i) => Value::Int(*i),
        RtValue::Float(f) => Value::Float(*f),
        RtValue::Bool(b) => Value::Bool(*b),
        other => Value::from(other.display_text()),
    }
}

/// The combined kernel + recorder runtime.
pub struct ScriptRuntime<'f> {
    flor: &'f Flor,
    /// Inner recorder capturing replay metadata.
    pub recorder: Recorder,
    /// Depth of kernel contexts currently pushed (mirrors the interpreter's
    /// loop stack; the kernel pops lazily when the stack shrinks).
    depth: usize,
}

impl<'f> ScriptRuntime<'f> {
    /// Build a runtime for one script execution.
    pub fn new(flor: &'f Flor, policy: CheckpointPolicy) -> ScriptRuntime<'f> {
        let mut recorder = Recorder::new(policy);
        // CLI args configured on the kernel flow into the recorder.
        for (name, text) in flor.state.lock().cli_args.iter() {
            recorder
                .arg_overrides
                .insert(name.clone(), parse_arg_text(text));
        }
        ScriptRuntime {
            flor,
            recorder,
            depth: 0,
        }
    }

    /// Synchronise the kernel's ctx stack with the interpreter's: pop until
    /// kernel depth equals `target`.
    fn sync_depth(&mut self, target: usize) {
        while self.depth > target {
            self.flor.loop_end();
            self.depth -= 1;
        }
    }
}

/// Parse a CLI argument's text into the most specific runtime value.
fn parse_arg_text(text: &str) -> RtValue {
    if let Ok(i) = text.parse::<i64>() {
        return RtValue::Int(i);
    }
    if let Ok(f) = text.parse::<f64>() {
        return RtValue::Float(f);
    }
    match text {
        "true" => RtValue::Bool(true),
        "false" => RtValue::Bool(false),
        _ => RtValue::Str(text.to_string()),
    }
}

impl FlorRuntime for ScriptRuntime<'_> {
    fn arg(&mut self, name: &str, default: RtValue) -> RtValue {
        let v = self.recorder.arg(name, default);
        self.flor.log(&format!("arg::{name}"), rt_to_value(&v));
        v
    }

    fn log(&mut self, name: &str, value: &RtValue, loops: &[LoopFrame]) {
        self.recorder.log(name, value, loops);
        self.flor.log(name, rt_to_value(value));
    }

    fn loop_begin(&mut self, name: &str, length: usize, loops: &[LoopFrame]) {
        self.recorder.loop_begin(name, length, loops);
    }

    fn loop_iter(&mut self, name: &str, iteration: usize, value: &RtValue, loops: &[LoopFrame]) {
        // `loops` includes the frame for this iteration; the kernel should
        // hold every *enclosing* frame plus this one.
        self.sync_depth(loops.len().saturating_sub(1));
        self.flor.loop_iter(name, iteration, &rt_to_value(value));
        self.depth += 1;
        self.recorder.loop_iter(name, iteration, value, loops);
    }

    fn loop_end(&mut self, name: &str, loops: &[LoopFrame]) {
        self.sync_depth(loops.len());
        self.recorder.loop_end(name, loops);
    }

    fn commit(&mut self) {
        self.recorder.commit();
        let _ = self.flor.commit("flor.commit()");
    }

    fn plan(&mut self, loop_name: &str, iteration: usize) -> Directive {
        self.recorder.plan(loop_name, iteration)
    }

    fn on_checkpoint_boundary(
        &mut self,
        loop_name: &str,
        iteration: usize,
        snapshot: &mut dyn FnMut() -> RtResult<String>,
    ) {
        self.recorder
            .on_checkpoint_boundary(loop_name, iteration, snapshot);
    }
}

/// Errors from running a script under FlorDB.
#[derive(Debug)]
pub enum RunError {
    /// Script file not found in the working tree.
    MissingFile(String),
    /// Parse failure.
    Parse(flor_script::ParseError),
    /// Runtime failure.
    Runtime(RtError),
    /// Store failure.
    Store(flor_store::StoreError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::MissingFile(p) => write!(f, "no such script in working tree: {p}"),
            RunError::Parse(e) => write!(f, "{e}"),
            RunError::Runtime(e) => write!(f, "{e}"),
            RunError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Result of [`run_script`].
#[derive(Debug)]
pub struct RunOutcome {
    /// The record captured for replay (logs, args, checkpoints).
    pub record: RunRecord,
    /// The version id committed after the run.
    pub vid: Oid,
    /// The run's logical timestamp (key for querying its logs).
    pub tstamp: i64,
}

/// Execute `filename` from the working tree under full instrumentation,
/// persist checkpoints to `obj_store`, and commit. The paper's equivalent
/// of `make train` running `python train.py` with FlorDB imported.
pub fn run_script(
    flor: &Flor,
    filename: &str,
    policy: CheckpointPolicy,
) -> Result<RunOutcome, RunError> {
    let source = flor
        .fs
        .read(filename)
        .ok_or_else(|| RunError::MissingFile(filename.to_string()))?;
    let prog = parse(&source).map_err(RunError::Parse)?;
    flor.set_filename(filename);
    let tstamp = flor.tstamp();
    let mut rt = ScriptRuntime::new(flor, policy);
    let mut interp = Interpreter::new();
    let stats = interp.run(&prog, &mut rt).map_err(RunError::Runtime)?;
    rt.sync_depth(0);
    let mut record = rt.recorder.record;
    record.stats = stats;
    persist_record(flor, filename, tstamp, &record).map_err(RunError::Store)?;
    let vid = flor
        .commit(&format!("run {filename}"))
        .map_err(RunError::Store)?;
    Ok(RunOutcome {
        record,
        vid,
        tstamp,
    })
}

/// Persist a run's replay metadata: checkpoints into `obj_store`, the
/// checkpoint-loop descriptor as a log row.
pub fn persist_record(
    flor: &Flor,
    filename: &str,
    tstamp: i64,
    record: &RunRecord,
) -> StoreResult<()> {
    for (iter, snap) in &record.checkpoints {
        flor.put_blob(&format!("ckpt::{iter}"), snap, tstamp, filename, 0);
    }
    if let Some((name, len)) = &record.ckpt_loop {
        flor.log_at(
            "ckpt_loop::meta",
            &Value::from(format!("{name}\n{len}")),
            tstamp,
            filename,
            0,
        );
    }
    Ok(())
}

/// Reconstruct the [`RunRecord`] of a past run from the data model:
/// logs + loop contexts from `logs`/`loops`, checkpoints from `obj_store`,
/// args from `arg::` log rows.
pub fn load_record(flor: &Flor, filename: &str, tstamp: i64) -> StoreResult<RunRecord> {
    let mut record = RunRecord::default();
    // Loop contexts for frame reconstruction.
    let loops = flor.db.scan("loops")?;
    let mut ctx: std::collections::HashMap<i64, (i64, String, usize, String)> =
        std::collections::HashMap::new();
    for r in loops.rows() {
        let id = r.get("ctx_id").and_then(Value::as_i64).unwrap_or(0);
        ctx.insert(
            id,
            (
                r.get("parent_ctx_id").and_then(Value::as_i64).unwrap_or(0),
                r.get("loop_name").map(|v| v.to_text()).unwrap_or_default(),
                r.get("loop_iteration").and_then(Value::as_i64).unwrap_or(0) as usize,
                r.get("iteration_value")
                    .map(|v| v.to_text())
                    .unwrap_or_default(),
            ),
        );
    }
    let frames_of = |leaf: i64| -> Vec<LoopFrame> {
        let mut chain = Vec::new();
        let mut cur = leaf;
        while cur != 0 {
            let Some((parent, name, iteration, value)) = ctx.get(&cur) else {
                break;
            };
            chain.push(LoopFrame {
                name: name.clone(),
                iteration: *iteration,
                value: value.clone(),
            });
            cur = *parent;
        }
        chain.reverse();
        chain
    };
    // Logs of this run.
    let logs = flor
        .db
        .lookup("logs", "tstamp", &Value::Int(tstamp))?
        .filter_eq("filename", &Value::from(filename));
    for r in logs.rows() {
        let name = r.get("value_name").map(|v| v.to_text()).unwrap_or_default();
        let value = r.get("value").map(|v| v.to_text()).unwrap_or_default();
        if let Some(arg) = name.strip_prefix("arg::") {
            record.args.push((arg.to_string(), value));
            continue;
        }
        if name == "ckpt_loop::meta" {
            let mut lines = value.lines();
            let lname = lines.next().unwrap_or_default().to_string();
            let len: usize = lines.next().and_then(|l| l.parse().ok()).unwrap_or(0);
            record.ckpt_loop = Some((lname, len));
            continue;
        }
        let leaf = r.get("ctx_id").and_then(Value::as_i64).unwrap_or(0);
        record.logs.push(LogRecord {
            name,
            value,
            loops: frames_of(leaf),
        });
    }
    // Checkpoints from obj_store.
    let objs = flor
        .db
        .lookup("obj_store", "tstamp", &Value::Int(tstamp))?
        .filter_eq("filename", &Value::from(filename));
    for r in objs.rows() {
        let name = r.get("value_name").map(|v| v.to_text()).unwrap_or_default();
        if let Some(iter) = name.strip_prefix("ckpt::") {
            if let Ok(i) = iter.parse::<usize>() {
                let contents = r.get("contents").map(|v| v.to_text()).unwrap_or_default();
                record.checkpoints.insert(i, contents);
            }
        }
    }
    record.ckpt_count = record.checkpoints.len();
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = r#"
let data = load_dataset("first_page", 60, 42);
let epochs = flor.arg("epochs", 3);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
    }
}
"#;

    #[test]
    fn run_script_records_and_commits() {
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", TRAIN);
        let out = run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        assert_eq!(out.record.values_of("loss").len(), 3);
        assert_eq!(out.record.checkpoints.len(), 3);
        assert_eq!(out.tstamp, 1);
        // Rows are committed and visible.
        let df = flor.dataframe(&["loss"]).unwrap();
        assert_eq!(df.n_rows(), 3);
        // Checkpoints landed in obj_store.
        let objs = flor.db.scan("obj_store").unwrap();
        assert!(objs.n_rows() >= 3);
        // The commit captured the source.
        assert_eq!(
            flor.repo.file_at(&out.vid, "train.fl").unwrap().unwrap(),
            TRAIN
        );
    }

    #[test]
    fn cli_args_flow_through() {
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", TRAIN);
        flor.set_cli_arg("epochs", "5");
        let out = run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
        assert_eq!(out.record.values_of("loss").len(), 5);
        assert_eq!(out.record.arg("epochs"), Some("5"));
    }

    #[test]
    fn load_record_round_trips() {
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", TRAIN);
        let out = run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        let loaded = load_record(&flor, "train.fl", out.tstamp).unwrap();
        assert_eq!(loaded.values_of("loss"), out.record.values_of("loss"));
        assert_eq!(loaded.arg("epochs"), Some("3"));
        assert_eq!(loaded.ckpt_loop, Some(("epoch".to_string(), 3)));
        assert_eq!(
            loaded.checkpoints.keys().collect::<Vec<_>>(),
            out.record.checkpoints.keys().collect::<Vec<_>>()
        );
        // Frames reconstructed from loops table.
        let last = loaded.logs.iter().rfind(|l| l.name == "loss").unwrap();
        assert_eq!(last.outer_iteration(), Some(2));
    }

    #[test]
    fn two_runs_get_distinct_tstamps() {
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", TRAIN);
        let a = run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
        let b = run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
        assert!(b.tstamp > a.tstamp);
        let df = flor.dataframe(&["loss"]).unwrap();
        assert_eq!(df.n_rows(), 6);
    }

    #[test]
    fn missing_file_errors() {
        let flor = Flor::new("demo");
        assert!(matches!(
            run_script(&flor, "ghost.fl", CheckpointPolicy::None),
            Err(RunError::MissingFile(_))
        ));
    }

    #[test]
    fn parse_error_reported() {
        let flor = Flor::new("demo");
        flor.fs.write("bad.fl", "let = ;");
        assert!(matches!(
            run_script(&flor, "bad.fl", CheckpointPolicy::None),
            Err(RunError::Parse(_))
        ));
    }

    #[test]
    fn arg_text_parsing() {
        assert_eq!(parse_arg_text("7"), RtValue::Int(7));
        assert_eq!(parse_arg_text("0.5"), RtValue::Float(0.5));
        assert_eq!(parse_arg_text("true"), RtValue::Bool(true));
        assert_eq!(parse_arg_text("adam"), RtValue::Str("adam".into()));
    }
}
