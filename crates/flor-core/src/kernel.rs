//! The Flor kernel: the paper's API (§2.1) over the Fig. 1 data model.
//!
//! A [`Flor`] instance owns the relational store, the gitlite repository
//! and the virtual working tree, plus the session state the paper says is
//! "captured at the time of import and embedded within every log entry":
//! `projid`, logical `tstamp`, executing `filename`, and the nested
//! loop-context (`ctx_id`) stack.

use crate::jobs::JobOutcome;
use flor_df::{DataFrame, DataType, Value};
use flor_git::{Oid, Repository, VirtualFs};
use flor_jobs::{JobBoard, JobRunner};
use flor_obs::{MetricsRegistry, MetricsSnapshot};
use flor_store::{
    flor_schema, CompactionTrigger, Database, Snapshot, StoreError, StoreResult, TailProgress,
};
use flor_view::ViewCatalog;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Values longer than this spill to `obj_store` (Fig. 1), leaving a stub in
/// `logs.value`.
pub const BLOB_SPILL_BYTES: usize = 4096;

/// How many materialized views a kernel's catalog keeps before LRU
/// eviction kicks in.
pub const VIEW_CACHE_CAPACITY: usize = 8;

/// Default background-job worker-pool size (per-version backfill units
/// executing concurrently); tune with `JobRunner::set_workers` via
/// [`Flor::job_runner`] or open with [`Flor::open_with_workers`].
pub const DEFAULT_JOB_WORKERS: usize = 2;

/// Default WAL-bytes threshold past which any store commit — a
/// foreground [`Flor::commit`] or a background job's per-unit
/// transaction — spawns a background checkpoint (see
/// [`Flor::set_checkpoint_threshold`]). Sized so interactive sessions
/// never trip it accidentally while long-running drivers keep their
/// logs — and therefore their reopen times — bounded.
pub const DEFAULT_CHECKPOINT_THRESHOLD_BYTES: u64 = 8 * 1024 * 1024;

/// Kernel session state.
#[derive(Debug)]
pub(crate) struct KernelState {
    /// Logical timestamp; bumped by every [`Flor::commit`].
    pub tstamp: i64,
    /// tstamp at which the current transaction window opened.
    pub ts_start: i64,
    /// Next `ctx_id` to mint.
    pub next_ctx: i64,
    /// Currently executing filename.
    pub filename: String,
    /// Stack of open loop contexts: `(ctx_id, loop_name)`.
    pub ctx_stack: Vec<(i64, String)>,
    /// CLI-style argument overrides served by [`Flor::arg`].
    pub cli_args: HashMap<String, String>,
}

/// A FlorDB instance: "a unified and robust framework" for ML metadata
/// (paper §1.2), spanning application, behavioral and change context.
#[derive(Clone)]
pub struct Flor {
    /// The relational store holding the six Fig. 1 tables.
    pub db: Database,
    /// Change context: the gitlite repository.
    pub repo: Repository,
    /// The versioned working tree (script sources live here).
    pub fs: VirtualFs,
    /// Project id stamped on every record.
    pub projid: String,
    /// Incrementally maintained dataframe views (see [`flor_view`]):
    /// [`Flor::dataframe`] serves from here, applying change-feed deltas
    /// instead of re-pivoting history on every call.
    pub views: ViewCatalog,
    /// The background-job control plane (see [`flor_jobs`]):
    /// [`Flor::submit_backfill`] schedules per-version replay units (and
    /// [`Flor::submit_checkpoint`] WAL checkpoints) here.
    pub(crate) runner: JobRunner<JobOutcome>,
    /// Incrementally maintained `jobs`-table listing behind
    /// [`Flor::jobs`] / [`Flor::job_stats`].
    pub(crate) board: JobBoard,
    pub(crate) state: Arc<Mutex<KernelState>>,
}

impl Flor {
    /// In-memory FlorDB for project `projid`.
    pub fn new(projid: &str) -> Flor {
        Flor::with_db(
            projid,
            Database::in_memory(flor_schema()),
            DEFAULT_JOB_WORKERS,
        )
    }

    /// Durable FlorDB backed by a WAL file. Incomplete background jobs
    /// found in the `jobs` table are resumed from their last completed
    /// version (see [`Flor::resume_jobs`]).
    pub fn open(projid: &str, wal_path: &Path) -> StoreResult<Flor> {
        Flor::open_with_workers(projid, wal_path, DEFAULT_JOB_WORKERS)
    }

    /// [`Flor::open`] with an explicit background-job worker-pool size
    /// (1 makes job scheduling fully deterministic — what the
    /// crash-recovery tests use).
    pub fn open_with_workers(projid: &str, wal_path: &Path, workers: usize) -> StoreResult<Flor> {
        let db = Database::open(wal_path, flor_schema())?;
        let flor = Flor::with_db(projid, db, workers);
        flor.resume_clocks();
        flor.resume_jobs()?;
        Ok(flor)
    }

    /// Open a **read-only follower** over another process's WAL file: the
    /// kernel bootstraps from the checkpoint sidecar, then each
    /// [`Flor::poll_follower`] call tails newly committed transactions,
    /// so this handle serves the writer's data with staleness bounded by
    /// its poll interval. Every query path works unchanged; every write
    /// ([`Flor::log`], [`Flor::commit`], job submission, …) fails with
    /// [`StoreError::ReadOnly`] — in particular [`Flor::log`] *panics*
    /// (it expects logging to be infallible), so don't log on a follower
    /// handle. Unlike [`Flor::open`], no background jobs are resumed and
    /// no auto-checkpoint/compaction threads are armed.
    pub fn open_follower(projid: &str, wal_path: &Path) -> StoreResult<Flor> {
        let db = Database::open_follower(wal_path, flor_schema())?;
        let flor = Flor::with_db(projid, db, DEFAULT_JOB_WORKERS);
        flor.resume_clocks();
        Ok(flor)
    }

    /// Apply WAL frames the writer committed since the last poll (or
    /// re-bootstrap from the sidecar if a checkpoint truncated the log
    /// under us). Only valid on handles from [`Flor::open_follower`].
    pub fn poll_follower(&self) -> StoreResult<TailProgress> {
        self.db.poll_tail()
    }

    /// `true` when this handle came from [`Flor::open_follower`] and will
    /// refuse every write with [`StoreError::ReadOnly`].
    pub fn is_follower(&self) -> bool {
        self.db.is_read_only()
    }

    /// Resume the logical clock past anything recorded, reading both
    /// tables from one pinned snapshot.
    fn resume_clocks(&self) {
        let snap = self.db.pin();
        let max_ts = snap
            .scan("logs")
            .ok()
            .and_then(|df| {
                df.column("tstamp")
                    .map(|c| c.values.iter().filter_map(Value::as_i64).max().unwrap_or(0))
            })
            .unwrap_or(0);
        // And the ctx-id allocator past every recorded loop context, so
        // post-reopen logging (and hindsight ingestion) mints fresh ids
        // instead of colliding with history.
        let max_ctx = snap
            .scan("loops")
            .ok()
            .and_then(|df| {
                df.column("ctx_id")
                    .map(|c| c.values.iter().filter_map(Value::as_i64).max().unwrap_or(0))
            })
            .unwrap_or(0);
        drop(snap);
        let mut st = self.state.lock();
        st.tstamp = max_ts + 1;
        st.ts_start = max_ts + 1;
        st.next_ctx = max_ctx + 1;
    }

    fn with_db(projid: &str, db: Database, workers: usize) -> Flor {
        // Auto-checkpointing and auto-compaction are enforced at the
        // store commit layer, so background-job transactions trip them
        // too, not only the kernel's own commits.
        db.set_auto_checkpoint(Some(DEFAULT_CHECKPOINT_THRESHOLD_BYTES));
        db.set_auto_compact(Some(CompactionTrigger::default()));
        Flor {
            views: ViewCatalog::new(db.clone(), VIEW_CACHE_CAPACITY),
            runner: JobRunner::new(db.clone(), workers),
            board: JobBoard::new(db.clone()),
            db,
            repo: Repository::new(),
            fs: VirtualFs::new(),
            projid: projid.to_string(),
            state: Arc::new(Mutex::new(KernelState {
                tstamp: 1,
                ts_start: 1,
                next_ctx: 1,
                filename: String::new(),
                ctx_stack: Vec::new(),
                cli_args: HashMap::new(),
            })),
        }
    }

    /// Set (or disable, with `None`) the WAL-bytes threshold past which
    /// a commit spawns a background checkpoint. Enforced at the store
    /// layer, so background jobs' per-unit commits count too. Defaults
    /// to [`DEFAULT_CHECKPOINT_THRESHOLD_BYTES`].
    pub fn set_checkpoint_threshold(&self, bytes: Option<u64>) {
        self.db.set_auto_checkpoint(bytes);
    }

    /// Set (or disable, with `None`) the commit-layer compaction trigger:
    /// every `check_every_rows` appended rows a background pass evaluates
    /// dead-row ratios and compacts tables past the policy thresholds.
    /// Enforced at the store layer like auto-checkpointing; defaults to
    /// [`CompactionTrigger::default`]. For a one-off, board-visible pass
    /// use [`Flor::submit_compaction`] instead.
    pub fn set_compaction_trigger(&self, trigger: Option<CompactionTrigger>) {
        self.db.set_auto_compact(trigger);
    }

    /// One consistent snapshot of every metric this instance records —
    /// commit/WAL/checkpoint/compaction latency histograms, zone-map
    /// prune ratios, feed queue depth and shed counts, per-job
    /// queue-wait vs run time, view hit/miss/rebuild counters — across
    /// the storage, jobs and view layers at once. See [`flor_obs`] for
    /// the metric-name registry and the snapshot's text/JSON renderers.
    ///
    /// Collection is on by default and costs almost nothing (relaxed
    /// atomics, no hot-path allocation); turn it off entirely via
    /// [`Flor::metrics_registry`]'s `set_enabled(false)`.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.db.metrics_registry().snapshot()
    }

    /// The shared [`MetricsRegistry`] every layer of this instance
    /// records into (the store hands one registry to the job runner and
    /// the view catalog, so [`Flor::metrics`] sees all three). Use it to
    /// enable/disable collection or to register embedder-side metrics
    /// alongside the built-in ones.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.db.metrics_registry()
    }

    /// Turn per-request tracing on or off (off by default). While on,
    /// instrumented paths ([`Flor::run_plan`], `flor-serve` requests)
    /// publish completed [`flor_obs::Trace`]s into the registry's
    /// bounded ring, retrievable via [`Flor::traces`].
    pub fn set_tracing(&self, on: bool) {
        self.metrics_registry().traces().set_enabled(on);
    }

    /// Whether per-request tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.metrics_registry().traces().enabled()
    }

    /// Every retained completed trace, oldest first.
    pub fn traces(&self) -> Vec<flor_obs::Trace> {
        self.metrics_registry().traces().snapshot()
    }

    /// The retained trace with identity `id`, if it has not fallen off
    /// the ring.
    pub fn find_trace(&self, id: flor_obs::TraceId) -> Option<flor_obs::Trace> {
        self.metrics_registry().traces().find(id)
    }

    /// Arm (or with `None` disarm) the slow-query log: any
    /// [`Flor::run_plan`] or served query strictly slower than
    /// `threshold` captures its measured explain report + trace into a
    /// bounded ring, regardless of whether tracing is enabled.
    pub fn set_slow_query_threshold(&self, threshold: Option<std::time::Duration>) {
        self.metrics_registry()
            .slow_queries()
            .set_threshold(threshold);
    }

    /// Every retained slow-query record, oldest first.
    pub fn slow_queries(&self) -> Vec<flor_obs::SlowQueryRecord> {
        self.metrics_registry().slow_queries().snapshot()
    }

    /// Follower lag estimate — committed transactions durable in the
    /// writer's log but not yet applied here. `Ok(None)` on a writer
    /// handle (see [`flor_store::Database::follower_lag`]).
    pub fn follower_lag(&self) -> StoreResult<Option<u64>> {
        self.db.follower_lag()
    }

    /// Set the executing filename (the paper profiles this automatically at
    /// import time; embedders set it per script run).
    pub fn set_filename(&self, filename: &str) {
        self.state.lock().filename = filename.to_string();
    }

    /// Current logical timestamp.
    pub fn tstamp(&self) -> i64 {
        self.state.lock().tstamp
    }

    /// Provide a CLI-style argument override for [`Flor::arg`].
    pub fn set_cli_arg(&self, name: &str, value: &str) {
        self.state
            .lock()
            .cli_args
            .insert(name.to_string(), value.to_string());
    }

    /// Clear all CLI-style argument overrides (a new "invocation").
    pub fn clear_cli_args(&self) {
        self.state.lock().cli_args.clear();
    }

    /// `flor.log(name, value) -> value` (§2.1): records a `logs` row with
    /// `projid, tstamp, filename, ctx_id`; oversized values spill to
    /// `obj_store`.
    pub fn log(&self, name: &str, value: impl Into<Value>) -> Value {
        let value = value.into();
        let (tstamp, filename, ctx_id) = {
            let st = self.state.lock();
            (
                st.tstamp,
                st.filename.clone(),
                st.ctx_stack.last().map(|(c, _)| *c).unwrap_or(0),
            )
        };
        self.log_at(name, &value, tstamp, &filename, ctx_id);
        value
    }

    /// Internal: write a log row with explicit coordinates (used by live
    /// logging and by hindsight ingestion alike).
    pub(crate) fn log_at(
        &self,
        name: &str,
        value: &Value,
        tstamp: i64,
        filename: &str,
        ctx_id: i64,
    ) {
        let text = value.to_text();
        let (stored, spilled) = if text.len() > BLOB_SPILL_BYTES {
            (format!("<blob {} bytes>", text.len()), true)
        } else {
            (text.clone(), false)
        };
        let row = vec![
            Value::from(self.projid.as_str()),
            Value::Int(tstamp),
            Value::from(filename),
            Value::Int(ctx_id),
            Value::from(name),
            Value::from(stored),
            Value::Int(value.data_type().tag()),
        ];
        // audit: allow(panic) — `logs` was created with this schema at
        // open and the row above is built to it field by field.
        self.db.insert("logs", row).expect("logs schema fixed");
        if spilled {
            self.put_blob(name, &text, tstamp, filename, ctx_id);
        }
    }

    /// Write an `obj_store` row.
    pub(crate) fn put_blob(
        &self,
        name: &str,
        contents: &str,
        tstamp: i64,
        filename: &str,
        ctx_id: i64,
    ) {
        self.db
            .insert(
                "obj_store",
                vec![
                    Value::from(self.projid.as_str()),
                    Value::Int(tstamp),
                    Value::from(filename),
                    Value::Int(ctx_id),
                    Value::from(name),
                    Value::from(contents),
                ],
            )
            // audit: allow(panic) — `obj_store` was created with this
            // schema at open; the row is built to it right above.
            .expect("obj_store schema fixed");
    }

    /// Log a large artifact directly to `obj_store` (Fig. 1), leaving a
    /// `<blob N bytes>` stub in `logs.value` — used for model checkpoints
    /// and other registry artifacts regardless of size.
    pub fn log_blob(&self, name: &str, contents: &str) {
        let (tstamp, filename, ctx_id) = {
            let st = self.state.lock();
            (
                st.tstamp,
                st.filename.clone(),
                st.ctx_stack.last().map(|(c, _)| *c).unwrap_or(0),
            )
        };
        let stub = Value::from(format!("<blob {} bytes>", contents.len()));
        self.log_at(name, &stub, tstamp, &filename, ctx_id);
        self.put_blob(name, contents, tstamp, &filename, ctx_id);
    }

    /// `flor.arg(name, default)` (§2.1): CLI override or default; the
    /// resolved value is logged so replay can retrieve it.
    pub fn arg(&self, name: &str, default: impl Into<Value>) -> Value {
        let default = default.into();
        let override_text = self.state.lock().cli_args.get(name).cloned();
        let value = match override_text {
            Some(text) => Value::from_text(&text, default.data_type()),
            None => default,
        };
        self.log(&format!("arg::{name}"), value.clone());
        value
    }

    /// Begin one loop iteration: mints a `ctx_id`, writes a `loops` row,
    /// pushes the context. Pair with [`Flor::loop_end`].
    pub fn loop_iter(&self, loop_name: &str, iteration: usize, value: &Value) -> i64 {
        let mut st = self.state.lock();
        let ctx_id = st.next_ctx;
        st.next_ctx += 1;
        let parent = st.ctx_stack.last().map(|(c, _)| *c).unwrap_or(0);
        let row = vec![
            Value::from(self.projid.as_str()),
            Value::Int(st.tstamp),
            Value::from(st.filename.as_str()),
            Value::Int(ctx_id),
            Value::Int(parent),
            Value::from(loop_name),
            Value::Int(iteration as i64),
            Value::from(value.to_text()),
        ];
        st.ctx_stack.push((ctx_id, loop_name.to_string()));
        drop(st);
        // audit: allow(panic) — `loops` was created with this schema at
        // open; the row above matches it by construction.
        self.db.insert("loops", row).expect("loops schema fixed");
        ctx_id
    }

    /// End the innermost loop iteration (pops the context stack).
    pub fn loop_end(&self) {
        self.state.lock().ctx_stack.pop();
    }

    /// `flor.iteration(name, value)` (Fig. 6): run `body` inside a single
    /// named iteration context — how the feedback UI attaches human labels
    /// to a specific document.
    pub fn iteration<R>(
        &self,
        loop_name: &str,
        value: impl Into<Value>,
        body: impl FnOnce(&Flor) -> R,
    ) -> R {
        self.loop_iter(loop_name, 0, &value.into());
        let out = body(self);
        self.loop_end();
        out
    }

    /// Iterate `items` under a named loop context, Fig. 3 style:
    /// `for doc_name in flor.loop("document", ...)`.
    pub fn for_each<T>(
        &self,
        loop_name: &str,
        items: impl IntoIterator<Item = T>,
        mut body: impl FnMut(&Flor, &T),
    ) where
        T: Clone + Into<Value>,
    {
        for (i, item) in items.into_iter().enumerate() {
            self.loop_iter(loop_name, i, &item.clone().into());
            body(self, &item);
            self.loop_end();
        }
    }

    /// `flor.commit()` (§2.1): "writes a log file, commits changes to git,
    /// and increments the tstamp" — flushes the store transaction, snapshots
    /// the working tree, records `ts2vid` and `git` rows, bumps the clock.
    pub fn commit(&self, message: &str) -> StoreResult<Oid> {
        // Refuse before touching the in-process repo: a follower commit
        // must leave no trace anywhere, not even in gitlite.
        if self.db.is_read_only() {
            return Err(StoreError::ReadOnly);
        }
        let (ts_start, tstamp, filename) = {
            let st = self.state.lock();
            (st.ts_start, st.tstamp, st.filename.clone())
        };
        let parent = self.repo.head();
        let vid = self
            .repo
            .commit(&self.fs, message, tstamp as u64, &self.projid);
        // ts2vid: map the transaction's tstamp window to the new vid.
        self.db.insert(
            "ts2vid",
            vec![
                Value::from(self.projid.as_str()),
                Value::Int(ts_start),
                Value::Int(tstamp),
                Value::from(vid.0.as_str()),
                Value::from(filename.as_str()),
            ],
        )?;
        // git table: one row per file at this vid (Fig. 1's
        // git(vid, filename, parent_vid, contents)).
        let parent_text = parent.map(|p| p.0).unwrap_or_default();
        for (path, entry) in self.fs.snapshot() {
            self.db.insert(
                "git",
                vec![
                    Value::from(vid.0.as_str()),
                    Value::from(path.as_str()),
                    Value::from(parent_text.as_str()),
                    Value::from(entry.contents),
                ],
            )?;
        }
        self.db.commit()?;
        let mut st = self.state.lock();
        st.tstamp += 1;
        st.ts_start = st.tstamp;
        Ok(vid)
    }

    /// Record a `build_deps` row (Fig. 1) for a build-system target.
    pub fn record_build_dep(
        &self,
        vid: &str,
        target: &str,
        deps: &[String],
        cmds: &[String],
        cached: bool,
    ) -> StoreResult<()> {
        self.db.insert(
            "build_deps",
            vec![
                Value::from(vid),
                Value::from(target),
                Value::from(deps.join("\n")),
                Value::from(cmds.join("\n")),
                Value::Bool(cached),
            ],
        )
    }

    /// `flor.dataframe(*names)` (§2.1): the pivoted view. One row per
    /// distinct `(projid, tstamp, filename, loop dims...)` context, one
    /// column per requested name, plus `{loop}_iteration` / `{loop}_value`
    /// dimension columns — the layout of the paper's Figs. 2/3/5
    /// dataframes.
    ///
    /// A one-line wrapper over [`Flor::query`] — served from the
    /// incremental view catalog: the first call builds the view, later
    /// calls apply only the deltas committed since (paper §1: incremental
    /// context maintenance). [`Flor::dataframe_full`] is the from-scratch
    /// equivalent and the correctness oracle.
    pub fn dataframe(&self, names: &[&str]) -> StoreResult<DataFrame> {
        self.query(names).collect()
    }

    /// From-scratch `flor.dataframe`: re-fetches, re-joins and re-pivots
    /// the base tables on every call. Kept as the incremental path's
    /// correctness oracle and fallback; `flor-bench`'s `view_maintenance`
    /// benchmark measures the two against each other. A one-line wrapper
    /// over [`Flor::query`]'s `collect_full`.
    pub fn dataframe_full(&self, names: &[&str]) -> StoreResult<DataFrame> {
        self.query(names).collect_full()
    }

    /// The from-scratch pivot every `collect_full` oracle starts from:
    /// fetch the projected log rows, resolve loop-context chains, and
    /// pivot long → wide.
    pub(crate) fn pivot_from_scratch(&self, names: &[&str]) -> StoreResult<DataFrame> {
        // Pin one snapshot so the log fetch and the loop-context
        // resolution reflect the same epoch.
        Flor::pivot_at(&self.db.pin(), names)
    }

    /// The same from-scratch pivot against a **caller-pinned** snapshot:
    /// the log fetch and loop-context resolution both read `snap`, so
    /// the frame reflects exactly `snap.epoch()` no matter how many
    /// commits land meanwhile. This is how a server session answers
    /// every request at the epoch it pinned at open.
    pub(crate) fn pivot_at(snap: &Snapshot, names: &[&str]) -> StoreResult<DataFrame> {
        // 1. Fetch matching log rows via the value_name index, in log
        //    insertion order — the same order the change feed delivers
        //    deltas, so both paths produce identical frames. All reads
        //    here are lock-free.
        let values: Vec<Value> = names.iter().map(|n| Value::from(*n)).collect();
        let logs = snap.lookup_many("logs", "value_name", &values)?;
        Flor::pivot_logs(snap, logs)
    }

    /// Steps 2–4 of the pivot, split out so the traced serve path can
    /// fetch the log rows through the *measured* store query (for an
    /// explain/zone-prune span) and still share the exact join + pivot —
    /// the store returns rows in the same order either way, so frames
    /// stay byte-identical.
    pub(crate) fn pivot_logs(snap: &Snapshot, logs: DataFrame) -> StoreResult<DataFrame> {
        // 2. Resolve ctx chains from the loops table.
        let loops = snap.scan("loops")?;
        #[derive(Clone)]
        struct CtxRow {
            parent: i64,
            loop_name: String,
            iteration: i64,
            value: String,
        }
        let mut ctx: HashMap<i64, CtxRow> = HashMap::new();
        for r in loops.rows() {
            let id = r.get("ctx_id").and_then(Value::as_i64).unwrap_or(0);
            ctx.insert(
                id,
                CtxRow {
                    parent: r.get("parent_ctx_id").and_then(Value::as_i64).unwrap_or(0),
                    loop_name: r.get("loop_name").map(|v| v.to_text()).unwrap_or_default(),
                    iteration: r.get("loop_iteration").and_then(Value::as_i64).unwrap_or(0),
                    value: r
                        .get("iteration_value")
                        .map(|v| v.to_text())
                        .unwrap_or_default(),
                },
            );
        }
        // 3. Long frame with dimension columns.
        let mut long = DataFrame::new();
        for r in logs.rows() {
            let mut entries: Vec<(String, Value)> = vec![
                (
                    "projid".to_string(),
                    r.get("projid").cloned().unwrap_or(Value::Null),
                ),
                (
                    "tstamp".to_string(),
                    r.get("tstamp").cloned().unwrap_or(Value::Null),
                ),
                (
                    "filename".to_string(),
                    r.get("filename").cloned().unwrap_or(Value::Null),
                ),
            ];
            // Walk the ctx chain outward, then reverse to outermost-first.
            let mut chain = Vec::new();
            let mut cur = r.get("ctx_id").and_then(Value::as_i64).unwrap_or(0);
            while cur != 0 {
                let Some(row) = ctx.get(&cur) else { break };
                chain.push(row.clone());
                cur = row.parent;
            }
            chain.reverse();
            for c in &chain {
                entries.push((
                    format!("{}_iteration", c.loop_name),
                    Value::Int(c.iteration),
                ));
                entries.push((
                    format!("{}_value", c.loop_name),
                    Value::from(c.value.as_str()),
                ));
            }
            // Decode the stored value via its type tag.
            let tag = r.get("value_type").and_then(Value::as_i64).unwrap_or(4);
            let text = r.get("value").map(|v| v.to_text()).unwrap_or_default();
            let value = Value::from_text(&text, DataType::from_tag(tag));
            entries.push((
                "value_name".to_string(),
                r.get("value_name").cloned().unwrap_or(Value::Null),
            ));
            entries.push(("value".to_string(), value));
            let refs: Vec<(&str, Value)> = entries
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            long.push_row(&refs);
        }
        if long.n_rows() == 0 {
            return Ok(DataFrame::new());
        }
        // 4. Pivot: index = all columns except value_name/value.
        let index: Vec<&str> = long
            .column_names()
            .into_iter()
            .filter(|c| *c != "value_name" && *c != "value")
            .collect();
        long.pivot(&index, "value_name", "value")
            .map_err(StoreError::Df)
    }

    /// Convenience: dataframe + `latest` (paper Fig. 6's
    /// `flor.utils.latest`), as a one-line wrapper over [`Flor::query`].
    /// Incrementally maintained like [`Flor::dataframe`];
    /// [`Flor::dataframe_latest_full`] is the oracle.
    pub fn dataframe_latest(&self, names: &[&str], group: &[&str]) -> StoreResult<DataFrame> {
        self.query(names).latest(group).collect()
    }

    /// From-scratch `dataframe` + `latest`: the incremental path's
    /// oracle, as a one-line wrapper over [`Flor::query`]'s
    /// `collect_full`.
    pub fn dataframe_latest_full(&self, names: &[&str], group: &[&str]) -> StoreResult<DataFrame> {
        self.query(names).latest(group).collect_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_writes_full_coordinates() {
        let flor = Flor::new("demo");
        flor.set_filename("train.fl");
        flor.log("loss", 0.5f64);
        flor.commit("run").unwrap();
        let df = flor.db.scan("logs").unwrap();
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.get(0, "projid"), Some(&Value::from("demo")));
        assert_eq!(df.get(0, "filename"), Some(&Value::from("train.fl")));
        assert_eq!(df.get(0, "value_name"), Some(&Value::from("loss")));
        assert_eq!(df.get(0, "value_type"), Some(&Value::Int(3)));
    }

    #[test]
    fn logs_invisible_before_commit() {
        let flor = Flor::new("demo");
        flor.log("x", 1);
        assert_eq!(flor.db.row_count("logs").unwrap(), 0);
        flor.commit("c").unwrap();
        assert_eq!(flor.db.row_count("logs").unwrap(), 1);
    }

    #[test]
    fn commit_bumps_tstamp_and_records_ts2vid() {
        let flor = Flor::new("demo");
        flor.fs.write("train.fl", "let x = 1;");
        assert_eq!(flor.tstamp(), 1);
        let vid = flor.commit("first").unwrap();
        assert_eq!(flor.tstamp(), 2);
        let ts2vid = flor.db.scan("ts2vid").unwrap();
        assert_eq!(ts2vid.n_rows(), 1);
        assert_eq!(ts2vid.get(0, "vid"), Some(&Value::from(vid.0.as_str())));
        let git = flor.db.scan("git").unwrap();
        assert_eq!(git.n_rows(), 1);
        assert_eq!(git.get(0, "filename"), Some(&Value::from("train.fl")));
    }

    #[test]
    fn nested_loops_record_ctx_chain() {
        let flor = Flor::new("demo");
        flor.set_filename("featurize.fl");
        flor.for_each("document", ["d1", "d2"], |flor, _doc| {
            flor.for_each("page", [0, 1, 2], |flor, page| {
                flor.log("page_text", format!("text{page}"));
            });
        });
        flor.commit("featurized").unwrap();
        let loops = flor.db.scan("loops").unwrap();
        // 2 document iterations + 2*3 page iterations
        assert_eq!(loops.n_rows(), 8);
        // Page rows have non-zero parents.
        let pages = loops.filter_eq("loop_name", &Value::from("page"));
        assert!(pages
            .column("parent_ctx_id")
            .unwrap()
            .values
            .iter()
            .all(|v| v.as_i64().unwrap() > 0));
    }

    #[test]
    fn dataframe_pivots_with_loop_dims() {
        let flor = Flor::new("demo");
        flor.set_filename("featurize.fl");
        flor.for_each("document", ["a.pdf", "b.pdf"], |flor, doc| {
            flor.for_each("page", [0, 1], |flor, page| {
                flor.log("text_src", if *page == 0 { "OCR" } else { "TXT" });
                flor.log("page_text", format!("{doc}:{page}"));
            });
        });
        flor.commit("run").unwrap();
        let df = flor.dataframe(&["text_src", "page_text"]).unwrap();
        assert_eq!(df.n_rows(), 4); // 2 docs × 2 pages
        let cols = df.column_names();
        for expected in [
            "projid",
            "tstamp",
            "filename",
            "document_iteration",
            "document_value",
            "page_iteration",
            "page_value",
            "text_src",
            "page_text",
        ] {
            assert!(cols.contains(&expected), "missing {expected} in {cols:?}");
        }
        // Fig. 6-style filter: document_value == "b.pdf".
        let b = df.filter_eq("document_value", &Value::from("b.pdf"));
        assert_eq!(b.n_rows(), 2);
    }

    #[test]
    fn dataframe_spans_multiple_versions() {
        let flor = Flor::new("demo");
        flor.set_filename("train.fl");
        for (i, acc) in [0.8f64, 0.85, 0.95].iter().enumerate() {
            flor.log("acc", *acc);
            flor.log("recall", 0.7 + i as f64 / 10.0);
            flor.commit(&format!("run {i}")).unwrap();
        }
        let df = flor.dataframe(&["acc", "recall"]).unwrap();
        assert_eq!(df.n_rows(), 3);
        // Best-checkpoint-by-recall query from §4.2.
        let sorted = df.sort_by(&[("recall", false)]).unwrap();
        assert_eq!(sorted.get(0, "acc"), Some(&Value::Float(0.95)));
    }

    #[test]
    fn arg_logs_and_overrides() {
        let flor = Flor::new("demo");
        let v = flor.arg("epochs", 5);
        assert_eq!(v, Value::Int(5));
        flor.set_cli_arg("epochs", "9");
        let v = flor.arg("epochs", 5);
        assert_eq!(v, Value::Int(9));
        flor.commit("c").unwrap();
        let df = flor.dataframe(&["arg::epochs"]).unwrap();
        assert_eq!(df.n_rows(), 1); // same (tstamp, ctx) → last write wins
    }

    #[test]
    fn iteration_context_manager() {
        let flor = Flor::new("demo");
        flor.set_filename("app.fl");
        flor.iteration("document", "report.pdf", |flor| {
            flor.for_each("page", [0, 1], |flor, p| {
                flor.log("page_color", *p);
            });
        });
        flor.commit("feedback").unwrap();
        let df = flor.dataframe(&["page_color"]).unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(
            df.get(0, "document_value"),
            Some(&Value::from("report.pdf"))
        );
    }

    #[test]
    fn big_values_spill_to_obj_store() {
        let flor = Flor::new("demo");
        let big = "x".repeat(BLOB_SPILL_BYTES + 10);
        flor.log("page_text", big.as_str());
        flor.commit("c").unwrap();
        let logs = flor.db.scan("logs").unwrap();
        assert!(logs.get(0, "value").unwrap().to_text().starts_with("<blob"));
        let objs = flor.db.scan("obj_store").unwrap();
        assert_eq!(objs.n_rows(), 1);
        assert_eq!(objs.get(0, "contents").unwrap().to_text(), big);
    }

    #[test]
    fn dataframe_latest_dedupes_versions() {
        let flor = Flor::new("demo");
        flor.set_filename("app.fl");
        for round in 0..3 {
            flor.iteration("document", "d.pdf", |flor| {
                flor.log("page_color", round);
            });
            flor.commit("round").unwrap();
        }
        let latest = flor
            .dataframe_latest(&["page_color"], &["document_value"])
            .unwrap();
        assert_eq!(latest.n_rows(), 1);
        assert_eq!(latest.get(0, "page_color"), Some(&Value::Int(2)));
    }

    #[test]
    fn build_deps_rows() {
        let flor = Flor::new("demo");
        flor.record_build_dep(
            "vid1",
            "train",
            &["featurize".into(), "train.py".into()],
            &["python train.py".into()],
            false,
        )
        .unwrap();
        flor.commit("built").unwrap();
        let df = flor.db.scan("build_deps").unwrap();
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.get(0, "deps").unwrap().to_text(), "featurize\ntrain.py");
    }

    #[test]
    fn incremental_dataframe_matches_full_recompute() {
        let flor = Flor::new("demo");
        flor.set_filename("train.fl");
        for round in 0..4 {
            flor.for_each("epoch", 0..3, |flor, &e| {
                flor.log("loss", 1.0 / (round + e + 1) as f64);
                if e % 2 == 0 {
                    flor.log("acc", 0.8 + e as f64 / 10.0);
                }
            });
            flor.commit("round").unwrap();
            // After every commit the maintained view must equal a rebuild,
            // cell for cell.
            let inc = flor.dataframe(&["loss", "acc"]).unwrap();
            let full = flor.dataframe_full(&["loss", "acc"]).unwrap();
            assert_eq!(inc, full, "round {round}");
        }
        // Repeated reads with no new commits share one snapshot.
        let a = flor.query(&["loss", "acc"]).collect_view().unwrap();
        let b = flor.query(&["loss", "acc"]).collect_view().unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn incremental_latest_matches_full_recompute() {
        let flor = Flor::new("demo");
        flor.set_filename("app.fl");
        for round in 0..3 {
            flor.iteration("document", "d.pdf", |flor| {
                flor.log("page_color", round);
            });
            flor.commit("round").unwrap();
            let inc = flor
                .dataframe_latest(&["page_color"], &["document_value"])
                .unwrap();
            let full = flor
                .dataframe_latest_full(&["page_color"], &["document_value"])
                .unwrap();
            assert_eq!(inc, full, "round {round}");
        }
        assert_eq!(
            flor.dataframe_latest(&["page_color"], &["document_value"])
                .unwrap()
                .get(0, "page_color"),
            Some(&Value::Int(2))
        );
    }

    #[test]
    fn view_catalog_applies_deltas_not_rebuilds() {
        let flor = Flor::new("demo");
        flor.set_filename("train.fl");
        flor.log("loss", 0.5f64);
        flor.commit("r0").unwrap();
        flor.dataframe(&["loss"]).unwrap();
        for i in 0..5 {
            flor.log("loss", 0.5 / (i + 1) as f64);
            flor.commit("r").unwrap();
            flor.dataframe(&["loss"]).unwrap();
        }
        let stats = flor.views.stats();
        assert_eq!(stats.misses, 1, "one build, then deltas only");
        assert_eq!(stats.fallback_rebuilds, 0);
        assert!(stats.batches_applied >= 5);
    }
}
