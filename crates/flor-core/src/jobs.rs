//! Kernel wiring for the flor-jobs control plane: hindsight backfill as
//! durable, prioritized, cancellable background work.
//!
//! [`Flor::submit_backfill`] decomposes one backfill request into
//! per-version replay units executed by the kernel's shared
//! [`JobRunner`]: each unit computes off-thread (incremental replay with
//! the job's cancellation token and progress counter threaded into
//! `flor_record::replay_with`), then stages its recovered values and
//! commits them atomically with a progress transition in the `jobs`
//! table. Queries keep flowing while the job runs, and live materialized
//! views pick the recovered values up through the change feed as each
//! version completes. On [`Flor::open`], incomplete jobs found in the
//! `jobs` table are resumed from their persisted `done_keys` cursor.
//!
//! ```
//! use flor_core::Flor;
//! use flor_record::CheckpointPolicy;
//!
//! let v1 = r#"
//! let net = make_model(5, 4, 2, 7);
//! with flor.checkpointing(net) {
//!     for e in flor.loop("epoch", range(0, 3)) {
//!         flor.log("loss", e);
//!     }
//! }
//! "#;
//! let v2 = r#"
//! let net = make_model(5, 4, 2, 7);
//! with flor.checkpointing(net) {
//!     for e in flor.loop("epoch", range(0, 3)) {
//!         flor.log("loss", e);
//!         flor.log("double", e * 2);
//!     }
//! }
//! "#;
//! let flor = Flor::new("demo");
//! flor.fs.write("t.fl", v1);
//! flor_core::run_script(&flor, "t.fl", CheckpointPolicy::EveryK(1)).unwrap();
//! flor.fs.write("t.fl", v2);
//! let handle = flor.submit_backfill("t.fl", &["double"]).unwrap();
//! let report = handle.wait();
//! assert_eq!(report.values_recovered, 3);
//! assert_eq!(flor.job_stats().unwrap().done, 1);
//! ```

use crate::hindsight::{assemble_report, compute_version, runs_of, stage_version, BackfillTask};
use crate::hindsight::{BackfillReport, VersionOutcome, VersionResult};
use crate::kernel::Flor;
use flor_jobs::{
    recover_records, JobControl, JobExecutor, JobHandle, JobId, JobProgress, JobRecord, JobRunner,
    JobSpec, JobState, JobStats, UnitSpec,
};
use flor_record::ReplayControl;
use flor_script::parse;
use flor_store::{CheckpointStats, CompactionStats, Database, StoreResult};
use std::sync::Arc;

/// Replay worker threads per version when submitting via the plain
/// [`Flor::submit_backfill`].
pub const DEFAULT_REPLAY_PARALLELISM: usize = 2;

/// The `jobs.kind` tag for backfill jobs.
pub const BACKFILL_KIND: &str = "backfill";

/// The `jobs.kind` tag for WAL-checkpoint jobs.
pub const CHECKPOINT_KIND: &str = "checkpoint";

/// The `jobs.kind` tag for segment-compaction jobs.
pub const COMPACTION_KIND: &str = "compaction";

/// Priority checkpoint jobs are submitted at: above default backfill
/// priority (0), so a queued checkpoint is not starved behind a long
/// backfill's remaining versions.
pub const CHECKPOINT_PRIORITY: i64 = 100;

/// Priority compaction jobs are submitted at: above backfill (scans get
/// faster for everyone) but below checkpoints (durability first; the two
/// are serialized at the store layer regardless).
pub const COMPACTION_PRIORITY: i64 = 50;

/// The per-unit outcome type the kernel's shared [`JobRunner`] carries —
/// one variant per job kind it schedules.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// One backfill version's result.
    Version(VersionResult),
    /// One completed store checkpoint.
    Checkpoint(CheckpointStats),
    /// One completed segment-compaction pass.
    Compaction(CompactionStats),
}

/// The persisted description of one backfill job. Carries the *submit
/// time* working-tree source so a resumed job replays exactly what was
/// requested, even if the working tree has moved on (or, after a process
/// restart, is empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BackfillPayload {
    pub filename: String,
    pub names: Vec<String>,
    pub parallelism: usize,
    pub source: String,
}

/// Field separator for the payload encoding: the ASCII unit separator,
/// which cannot appear in florscript source or log names.
const SEP: char = '\u{1f}';

impl BackfillPayload {
    pub fn encode(&self) -> String {
        format!(
            "{}{SEP}{}{SEP}{}{SEP}{}",
            self.filename,
            self.names.join(","),
            self.parallelism,
            self.source
        )
    }

    pub fn decode(payload: &str) -> Result<BackfillPayload, String> {
        let mut parts = payload.splitn(4, SEP);
        let (Some(filename), Some(names), Some(par), Some(source)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err("malformed backfill payload".to_string());
        };
        Ok(BackfillPayload {
            filename: filename.to_string(),
            names: names
                .split(',')
                .filter(|n| !n.is_empty())
                .map(str::to_string)
                .collect(),
            parallelism: par.parse().map_err(|_| "bad parallelism".to_string())?,
            source: source.to_string(),
        })
    }
}

/// The [`JobExecutor`] for hindsight backfill: plans one unit per prior
/// run of the script, computes each unit by incremental replay, and
/// stages recovered values for the runner's atomic per-unit commit.
struct BackfillExecutor {
    flor: Flor,
}

impl JobExecutor<JobOutcome> for BackfillExecutor {
    fn plan(&self, spec: &JobSpec) -> Result<Vec<UnitSpec>, String> {
        let payload = BackfillPayload::decode(&spec.payload)?;
        if payload.source.is_empty() {
            return Err(format!(
                "script missing from working tree: {}",
                payload.filename
            ));
        }
        parse(&payload.source).map_err(|e| format!("new source failed to parse: {e}"))?;
        let runs = runs_of(&self.flor, &payload.filename).map_err(|e| e.to_string())?;
        Ok(runs
            .into_iter()
            .map(|(tstamp, vid)| UnitSpec {
                key: tstamp,
                label: vid,
            })
            .collect())
    }

    fn run_unit(
        &self,
        spec: &JobSpec,
        unit: &UnitSpec,
        ctl: &JobControl,
    ) -> Result<JobOutcome, String> {
        let payload = BackfillPayload::decode(&spec.payload)?;
        let new_prog =
            parse(&payload.source).map_err(|e| format!("new source failed to parse: {e}"))?;
        // Share the job's cancellation flag and progress counter with the
        // replay workers: cancelling the job halts every version at its
        // next iteration boundary, and JobHandle::progress ticks live.
        let replay_ctl = ReplayControl::shared(ctl.cancel_flag(), ctl.tick_counter());
        let task = BackfillTask {
            filename: &payload.filename,
            names: &payload.names,
            parallelism: payload.parallelism.max(1),
            new_prog: &new_prog,
        };
        let result = compute_version(&self.flor, &task, unit.key, &unit.label, &replay_ctl)
            .map_err(|e| e.to_string())?;
        if ctl.is_cancelled() {
            return Err("cancelled".to_string());
        }
        Ok(JobOutcome::Version(result))
    }

    fn stage_unit(
        &self,
        spec: &JobSpec,
        _unit: &UnitSpec,
        outcome: &JobOutcome,
    ) -> Result<(), String> {
        let JobOutcome::Version(result) = outcome else {
            return Err("backfill executor handed a non-version outcome".to_string());
        };
        let payload = BackfillPayload::decode(&spec.payload)?;
        stage_version(&self.flor, &payload.filename, result);
        Ok(())
    }
}

/// The [`JobExecutor`] for store checkpoints: one unit that serializes
/// the committed state to the WAL sidecar and truncates the log. The
/// serialization runs against a pinned snapshot (no store writes), so it
/// obeys the executor contract: nothing is staged; the runner's progress
/// transition is the only row the unit commits.
struct CheckpointExecutor {
    db: Database,
}

impl JobExecutor<JobOutcome> for CheckpointExecutor {
    fn plan(&self, _spec: &JobSpec) -> Result<Vec<UnitSpec>, String> {
        Ok(vec![UnitSpec {
            key: 0,
            label: "checkpoint".to_string(),
        }])
    }

    fn run_unit(
        &self,
        _spec: &JobSpec,
        _unit: &UnitSpec,
        _ctl: &JobControl,
    ) -> Result<JobOutcome, String> {
        self.db
            .checkpoint()
            .map(JobOutcome::Checkpoint)
            .map_err(|e| e.to_string())
    }

    fn stage_unit(&self, _: &JobSpec, _: &UnitSpec, _: &JobOutcome) -> Result<(), String> {
        Ok(())
    }
}

/// The [`JobExecutor`] for segment compaction: one unit that merges cold
/// sealed segments and drops latest-wins dead rows
/// ([`Database::compact`]). Like checkpoints, the pass reads a pinned
/// snapshot and publishes by pointer swap — nothing is staged, so the
/// runner's progress transition is the only row the unit commits, and an
/// interrupted job is simply re-run on resume (the pass is idempotent:
/// re-compacting a compacted table is a no-op).
struct CompactionExecutor {
    db: Database,
}

impl JobExecutor<JobOutcome> for CompactionExecutor {
    fn plan(&self, _spec: &JobSpec) -> Result<Vec<UnitSpec>, String> {
        Ok(vec![UnitSpec {
            key: 0,
            label: "compact".to_string(),
        }])
    }

    fn run_unit(
        &self,
        _spec: &JobSpec,
        _unit: &UnitSpec,
        _ctl: &JobControl,
    ) -> Result<JobOutcome, String> {
        self.db
            .compact()
            .map(JobOutcome::Compaction)
            .map_err(|e| e.to_string())
    }

    fn stage_unit(&self, _: &JobSpec, _: &UnitSpec, _: &JobOutcome) -> Result<(), String> {
        Ok(())
    }
}

/// A handle on one background backfill job: status, live progress,
/// per-version outcomes streaming in as versions complete, a blocking
/// `wait`, and durable cancellation. Cloneable.
#[derive(Clone)]
pub struct BackfillHandle {
    inner: JobHandle<JobOutcome>,
}

impl BackfillHandle {
    /// The job's durable id (its key in the `jobs` table).
    pub fn job_id(&self) -> JobId {
        self.inner.job_id()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.inner.state()
    }

    /// Progress snapshot: versions done / total, plus live replayed
    /// iteration count (`ticks`) even mid-version.
    pub fn progress(&self) -> JobProgress {
        self.inner.progress()
    }

    /// Per-version outcomes completed so far, oldest run first — the
    /// incremental view of what [`BackfillReport::versions`] will hold.
    pub fn outcomes(&self) -> Vec<VersionOutcome> {
        let mut out: Vec<VersionOutcome> = self
            .inner
            .outcomes()
            .into_iter()
            .filter_map(|r| match r {
                JobOutcome::Version(v) => Some(v.outcome),
                _ => None,
            })
            .collect();
        out.sort_by_key(|o| o.tstamp);
        out
    }

    /// Request cancellation: pending versions are dropped, the running
    /// replay halts at its next iteration boundary, and the cancellation
    /// is persisted (a restart will not revive the job).
    pub fn cancel(&self) {
        self.inner.cancel();
    }

    /// Block until the job is terminal, then assemble the aggregate
    /// report (empty if planning failed — e.g. the script is missing).
    pub fn wait(&self) -> BackfillReport {
        let report = self.inner.wait();
        assemble_report(
            report
                .outcomes
                .into_iter()
                .filter_map(|r| match r {
                    JobOutcome::Version(v) => Some(v),
                    _ => None,
                })
                .collect(),
        )
    }

    /// Failure detail, if the job failed.
    pub fn detail(&self) -> String {
        self.inner.detail()
    }
}

/// A handle on one single-unit background maintenance job (checkpoint,
/// compaction) whose success yields one stats value of type `T`.
/// Cloneable; all clones observe the same job.
pub struct MaintenanceHandle<T> {
    inner: JobHandle<JobOutcome>,
    /// Pulls this job kind's stats out of the shared outcome enum.
    extract: fn(JobOutcome) -> Option<T>,
}

impl<T> Clone for MaintenanceHandle<T> {
    fn clone(&self) -> Self {
        MaintenanceHandle {
            inner: self.inner.clone(),
            extract: self.extract,
        }
    }
}

impl<T> MaintenanceHandle<T> {
    /// The job's durable id (its key in the `jobs` table).
    pub fn job_id(&self) -> JobId {
        self.inner.job_id()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.inner.state()
    }

    /// Block until the job is terminal; `Some(stats)` on success, `None`
    /// if it failed or was cancelled (see [`MaintenanceHandle::detail`]).
    pub fn wait(&self) -> Option<T> {
        self.inner
            .wait()
            .outcomes
            .into_iter()
            .find_map(self.extract)
    }

    /// Failure detail, if the job failed.
    pub fn detail(&self) -> String {
        self.inner.detail()
    }
}

/// A handle on one background checkpoint job.
pub type CheckpointHandle = MaintenanceHandle<CheckpointStats>;

/// A handle on one background segment-compaction job.
pub type CompactionHandle = MaintenanceHandle<CompactionStats>;

impl Flor {
    /// Submit a background backfill of `names` over every prior run of
    /// `filename` (default priority and replay parallelism). Returns
    /// immediately; query through [`BackfillHandle`].
    ///
    /// Concurrency contract: readers (`Flor::query` and friends) are
    /// never blocked and always see committed state. *Writes*, however,
    /// share the store's single logical write transaction — each
    /// completed version commits it, flushing any rows another thread
    /// has staged but not yet committed. Keep foreground `flor.log` /
    /// `flor.commit` sequences on one thread (the paper's one-driver
    /// model) or commit them before submitting background work.
    pub fn submit_backfill(&self, filename: &str, names: &[&str]) -> StoreResult<BackfillHandle> {
        self.submit_backfill_with(filename, names, 0, DEFAULT_REPLAY_PARALLELISM)
    }

    /// [`Flor::submit_backfill`] with an explicit scheduling `priority`
    /// (higher runs first) and per-version replay `parallelism`.
    pub fn submit_backfill_with(
        &self,
        filename: &str,
        names: &[&str],
        priority: i64,
        parallelism: usize,
    ) -> StoreResult<BackfillHandle> {
        let payload = BackfillPayload {
            filename: filename.to_string(),
            names: names.iter().map(|s| s.to_string()).collect(),
            parallelism,
            source: self.fs.read(filename).unwrap_or_default(),
        };
        let spec = JobSpec {
            kind: BACKFILL_KIND.to_string(),
            priority,
            payload: payload.encode(),
        };
        let executor = Arc::new(BackfillExecutor { flor: self.clone() });
        let inner = self.runner.submit(spec, executor)?;
        Ok(BackfillHandle { inner })
    }

    /// Submit a background checkpoint: serialize the committed state to
    /// the WAL sidecar and truncate the log, scheduled on the kernel's
    /// job runner (so it shows up on the jobs board like any other job)
    /// at [`CHECKPOINT_PRIORITY`]. Returns immediately.
    ///
    /// [`Flor::commit`] submits one automatically whenever the WAL grows
    /// past the configured threshold (see
    /// [`Flor::set_checkpoint_threshold`]).
    pub fn submit_checkpoint(&self) -> StoreResult<CheckpointHandle> {
        let spec = JobSpec {
            kind: CHECKPOINT_KIND.to_string(),
            priority: CHECKPOINT_PRIORITY,
            payload: String::new(),
        };
        let executor = Arc::new(CheckpointExecutor {
            db: self.db.clone(),
        });
        let inner = self.runner.submit(spec, executor)?;
        Ok(CheckpointHandle {
            inner,
            extract: |o| match o {
                JobOutcome::Checkpoint(stats) => Some(stats),
                _ => None,
            },
        })
    }

    /// Checkpoint synchronously: submit and wait. `Err` if the job
    /// failed.
    pub fn checkpoint(&self) -> StoreResult<CheckpointStats> {
        let handle = self.submit_checkpoint()?;
        handle.wait().ok_or_else(|| {
            flor_store::StoreError::Invalid(format!("checkpoint failed: {}", handle.detail()))
        })
    }

    /// Submit a background segment compaction: merge cold sealed
    /// segments and drop latest-wins dead rows (superseded `jobs`
    /// transitions), scheduled on the kernel's job runner at
    /// [`COMPACTION_PRIORITY`] so it is board-visible and resumed on
    /// reopen like any other job. Returns immediately.
    ///
    /// The store also auto-triggers compaction from the commit layer when
    /// a table's dead-row ratio crosses the configured threshold (see
    /// [`Flor::set_compaction_trigger`]).
    pub fn submit_compaction(&self) -> StoreResult<CompactionHandle> {
        let spec = JobSpec {
            kind: COMPACTION_KIND.to_string(),
            priority: COMPACTION_PRIORITY,
            payload: String::new(),
        };
        let executor = Arc::new(CompactionExecutor {
            db: self.db.clone(),
        });
        let inner = self.runner.submit(spec, executor)?;
        Ok(CompactionHandle {
            inner,
            extract: |o| match o {
                JobOutcome::Compaction(stats) => Some(stats),
                _ => None,
            },
        })
    }

    /// Compact synchronously: submit and wait. `Err` if the job failed.
    pub fn compact(&self) -> StoreResult<CompactionStats> {
        let handle = self.submit_compaction()?;
        handle.wait().ok_or_else(|| {
            flor_store::StoreError::Invalid(format!("compaction failed: {}", handle.detail()))
        })
    }

    /// Resume every incomplete job found in the `jobs` table from its
    /// last completed version. Called automatically by [`Flor::open`];
    /// public so embedders constructing kernels differently can opt in.
    pub fn resume_jobs(&self) -> StoreResult<Vec<BackfillHandle>> {
        let mut out = Vec::new();
        for rec in recover_records(&self.db)? {
            if rec.state.is_terminal() || self.runner.handle(rec.job_id).is_some() {
                continue; // finished, or already live in this process
            }
            match rec.kind.as_str() {
                BACKFILL_KIND => {
                    let executor = Arc::new(BackfillExecutor { flor: self.clone() });
                    let inner = self.runner.resume(&rec, executor)?;
                    out.push(BackfillHandle { inner });
                }
                // An interrupted checkpoint is simply re-run: the
                // operation is idempotent (pin, serialize, truncate).
                CHECKPOINT_KIND => {
                    let executor = Arc::new(CheckpointExecutor {
                        db: self.db.clone(),
                    });
                    self.runner.resume(&rec, executor)?;
                }
                // Likewise for compaction: re-running over an already
                // compacted store is a cheap no-op pass.
                COMPACTION_KIND => {
                    let executor = Arc::new(CompactionExecutor {
                        db: self.db.clone(),
                    });
                    self.runner.resume(&rec, executor)?;
                }
                _ => {}
            }
        }
        Ok(out)
    }

    /// Every job's latest durable state, ordered by job id — served from
    /// the incrementally maintained [`flor_jobs::JobBoard`].
    pub fn jobs(&self) -> StoreResult<Vec<JobRecord>> {
        self.board.list()
    }

    /// Job counts by state (queued/running/done/failed/cancelled).
    pub fn job_stats(&self) -> StoreResult<JobStats> {
        self.board.stats()
    }

    /// The kernel's shared background-job runner (worker-pool sizing,
    /// idle waits, crash instrumentation for tests and benches).
    pub fn job_runner(&self) -> &JobRunner<JobOutcome> {
        &self.runner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_script;
    use flor_record::CheckpointPolicy;

    const V1: &str = r#"
let data = load_dataset("first_page", 60, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 4)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
    }
}
"#;

    const V2: &str = r#"
let data = load_dataset("first_page", 60, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 4)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
    }
}
"#;

    fn seeded(versions: usize) -> Flor {
        let flor = Flor::new("jobs");
        flor.fs.write("train.fl", V1);
        for _ in 0..versions {
            run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        }
        flor.fs.write("train.fl", V2);
        flor
    }

    #[test]
    fn payload_round_trips() {
        let p = BackfillPayload {
            filename: "train.fl".into(),
            names: vec!["acc".into(), "recall".into()],
            parallelism: 3,
            source: "let x = 1;\nflor.log(\"x\", x);".into(),
        };
        assert_eq!(BackfillPayload::decode(&p.encode()), Ok(p));
        assert!(BackfillPayload::decode("nonsense").is_err());
    }

    #[test]
    fn submitted_backfill_reports_incrementally_and_lands_in_views() {
        let flor = seeded(3);
        // Materialize the view while the history has no acc values yet.
        let before = flor.dataframe(&["loss", "acc"]).unwrap();
        assert!(before.column("acc").is_none(), "no acc logged yet");
        assert_eq!(before.n_rows(), 12);
        let handle = flor.submit_backfill("train.fl", &["acc"]).unwrap();
        let report = handle.wait();
        assert_eq!(report.versions.len(), 3);
        assert_eq!(report.values_recovered, 12);
        // Outcomes stream on the handle too, oldest run first.
        let outcomes = handle.outcomes();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.windows(2).all(|w| w[0].tstamp < w[1].tstamp));
        assert!(handle.progress().ticks >= 12, "live iteration counter");
        // The recovered values flowed into the live view via the feed.
        let after = flor.dataframe(&["loss", "acc"]).unwrap();
        assert_eq!(
            after
                .column("acc")
                .unwrap()
                .values
                .iter()
                .filter(|v| v.is_null())
                .count(),
            0
        );
        assert_eq!(after, flor.dataframe_full(&["loss", "acc"]).unwrap());
        // Durable observability.
        assert_eq!(flor.job_stats().unwrap().done, 1);
        assert_eq!(flor.jobs().unwrap()[0].state, JobState::Done);
        assert_eq!(flor.jobs().unwrap()[0].units_done, 3);
    }

    #[test]
    fn checkpoint_job_truncates_wal_and_lands_on_the_board() {
        let flor = seeded(2);
        let wal_before = flor.db.wal_bytes();
        assert!(wal_before > 0);
        let stats = flor.checkpoint().unwrap();
        assert!(stats.rows > 0);
        assert!(flor.db.wal_bytes() < wal_before, "log compacted");
        flor.job_runner().wait_idle();
        // The checkpoint shows up as a first-class job.
        let jobs = flor.jobs().unwrap();
        assert!(jobs
            .iter()
            .any(|j| j.kind == CHECKPOINT_KIND && j.state == JobState::Done));
        assert_eq!(flor.db.stats().checkpoints, 1);
        // Reads are unaffected.
        assert_eq!(
            flor.dataframe(&["loss"]).unwrap(),
            flor.dataframe_full(&["loss"]).unwrap()
        );
    }

    #[test]
    fn commit_auto_spawns_checkpoint_past_wal_threshold() {
        let flor = Flor::new("autockpt");
        flor.set_filename("train.fl");
        flor.set_checkpoint_threshold(Some(1)); // every commit trips it
        flor.log("loss", 0.5f64);
        flor.commit("run").unwrap();
        // The store spawns the checkpoint off-thread; wait for it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while flor.db.stats().checkpoints == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "auto-checkpoint never ran"
            );
            std::thread::yield_now();
        }
        assert!(flor.db.stats().checkpoints >= 1);
        // Disabled threshold stops the trigger.
        let quiet = Flor::new("nockpt");
        quiet.set_checkpoint_threshold(None);
        quiet.log("loss", 0.5f64);
        quiet.commit("run").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(quiet.db.stats().checkpoints, 0);
    }

    #[test]
    fn compaction_job_drops_dead_rows_and_lands_on_the_board() {
        let flor = seeded(3);
        flor.submit_backfill("train.fl", &["acc"]).unwrap().wait();
        // Re-log the same value name at the same coordinates: the pivot
        // only ever shows the last write, but `logs` declares no
        // latest-wins policy (replay needs every row), so compaction must
        // keep all five rows while still dropping dead `jobs` transitions.
        flor.set_filename("train.fl");
        for round in 0..5 {
            flor.log("status", format!("round {round}"));
        }
        flor.commit("re-log").unwrap();
        flor.job_runner().wait_idle();
        let logs_rows = flor.db.row_count("logs").unwrap();
        assert_eq!(flor.db.dead_rows("logs").unwrap(), 0, "logs has no policy");
        assert!(
            flor.db.dead_rows("jobs").unwrap() > 0,
            "job transitions leave dead rows"
        );
        let before_inc = flor.dataframe(&["loss", "acc"]).unwrap();
        let stats = flor.compact().unwrap();
        assert!(stats.rows_dropped > 0);
        assert_eq!(
            flor.db.row_count("logs").unwrap(),
            logs_rows,
            "every raw log row survives — replay depends on them"
        );
        flor.job_runner().wait_idle();
        // Board-visible like any other job.
        assert!(flor
            .jobs()
            .unwrap()
            .iter()
            .any(|j| j.kind == COMPACTION_KIND && j.state == JobState::Done));
        // Query results are unchanged: the incremental view, the
        // from-scratch oracle (over the compacted scan), and the
        // pre-compaction frame all agree.
        let after_inc = flor.dataframe(&["loss", "acc"]).unwrap();
        let after_full = flor.dataframe_full(&["loss", "acc"]).unwrap();
        assert_eq!(after_inc, before_inc);
        assert_eq!(after_full, before_inc);
        // The jobs fold still resolves every payload/state.
        let recs = flor_jobs::recover_records(&flor.db).unwrap();
        assert!(recs.iter().all(|r| r.state.is_terminal()));
        assert!(
            recs.iter()
                .filter(|r| r.kind == BACKFILL_KIND)
                .all(|r| !r.payload.is_empty()),
            "carry-forward payloads survive"
        );
    }

    #[test]
    fn unfinished_compaction_job_is_resumed_on_reopen() {
        let dir = std::env::temp_dir().join(format!("flor-compact-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("resume.wal");
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(flor_store::checkpoint::sidecar_path(&wal));
        {
            // Persist a Queued compaction transition without running it —
            // the on-disk shape a crash right after submit leaves behind.
            let flor = Flor::open("resume", &wal).unwrap();
            let rec = JobRecord {
                job_id: 77,
                seq: 1,
                kind: COMPACTION_KIND.to_string(),
                priority: COMPACTION_PRIORITY,
                state: JobState::Queued,
                payload: String::new(),
                units_total: 1,
                units_done: 0,
                done_keys: Vec::new(),
                detail: String::new(),
            };
            flor.db.insert("jobs", rec.row()).unwrap();
            flor.db.commit().unwrap();
            flor.job_runner().wait_idle();
        }
        {
            let flor = Flor::open_with_workers("resume", &wal, 1).unwrap();
            flor.job_runner().wait_idle();
            let rec = flor
                .jobs()
                .unwrap()
                .into_iter()
                .find(|j| j.job_id == 77)
                .expect("recovered job");
            assert_eq!(rec.state, JobState::Done, "resumed and completed");
        }
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(flor_store::checkpoint::sidecar_path(&wal));
    }

    #[test]
    fn cancelled_backfill_stops_and_persists() {
        // A heavier script so cancellation lands mid-run deterministically.
        let slow_v1 = V1.replace("range(0, 4)", "range(0, 12)");
        let slow_v2 = V2.replace("range(0, 4)", "range(0, 12)");
        let flor = Flor::new("jobs");
        flor.fs.write("train.fl", &slow_v1);
        for _ in 0..6 {
            run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        }
        flor.fs.write("train.fl", &slow_v2);
        flor.job_runner().set_workers(1);
        let handle = flor
            .submit_backfill_with("train.fl", &["acc"], 0, 1)
            .unwrap();
        // Wait for the replay to actually start, then cancel mid-flight.
        while handle.progress().ticks == 0 && !handle.state().is_terminal() {
            std::thread::yield_now();
        }
        handle.cancel();
        let report = handle.wait();
        assert_eq!(handle.state(), JobState::Cancelled);
        assert!(report.versions.len() < 6, "not all versions ran");
        flor.job_runner().wait_idle();
        assert_eq!(flor.job_stats().unwrap().cancelled, 1);
        // Whatever did land kept the view consistent with the oracle.
        assert_eq!(
            flor.dataframe(&["loss", "acc"]).unwrap(),
            flor.dataframe_full(&["loss", "acc"]).unwrap()
        );
    }

    #[test]
    fn missing_script_is_a_failed_job_and_empty_sync_report() {
        let flor = Flor::new("jobs");
        let handle = flor.submit_backfill("ghost.fl", &["acc"]).unwrap();
        let report = handle.wait();
        assert_eq!(handle.state(), JobState::Failed);
        assert!(handle.detail().contains("missing"));
        assert!(report.versions.is_empty());
        // The legacy sync API keeps its old contract: empty report.
        let report = crate::hindsight::backfill(&flor, "ghost.fl", &["acc"], 1).unwrap();
        assert!(report.versions.is_empty());
        assert_eq!(flor.job_stats().unwrap().failed, 2);
    }

    #[test]
    fn priorities_order_queued_jobs() {
        let flor = seeded(2);
        // One worker: the higher-priority job's versions run first once
        // the queue has both.
        flor.job_runner().set_workers(1);
        let low = flor
            .submit_backfill_with("train.fl", &["acc"], 0, 1)
            .unwrap();
        let high = flor
            .submit_backfill_with("train.fl", &["recall"], 5, 1)
            .unwrap();
        low.wait();
        high.wait();
        assert_eq!(flor.job_stats().unwrap().done, 2);
    }
}
