//! Server-side session state: a pinned snapshot per connection plus the
//! global in-flight admission gate.
//!
//! Every connection that completes the `Hello` handshake gets a
//! [`Session`] pinned at the epoch current at handshake time
//! ([`flor_store::Database::pin`] — O(1), lock-free). All of the
//! session's queries execute against that snapshot, so a client sees one
//! frozen world no matter how many commits land meanwhile; `Pin` re-pins
//! on demand. The [`Gate`] bounds how many requests execute at once
//! across *all* sessions — excess requests get a typed `Busy` error
//! instead of queueing unboundedly.

use flor_store::Snapshot;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One client session: identity, auth state, pinned snapshot, counters.
#[derive(Debug)]
pub struct Session {
    /// Server-unique session id.
    pub id: u64,
    /// Peer address, for logs.
    pub peer: String,
    /// Set once the `Hello` handshake (and any auth middleware) passed.
    pub authed: bool,
    /// Requests served so far on this session.
    pub requests: u64,
    /// When the session was opened.
    pub started: Instant,
    snap: Snapshot,
}

impl Session {
    /// Open a session pinned at `snap`.
    pub fn new(id: u64, peer: String, snap: Snapshot) -> Session {
        Session {
            id,
            peer,
            authed: false,
            requests: 0,
            started: Instant::now(),
            snap,
        }
    }

    /// The epoch this session is pinned at.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// The pinned snapshot every query of this session runs against.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// Re-pin to a fresh snapshot (the `Pin` verb).
    pub fn repin(&mut self, snap: Snapshot) {
        self.snap = snap;
    }
}

/// A bounded admission gate: at most `limit` permits are out at once.
///
/// Lock-free compare-and-swap acquire; the permit releases on drop, so a
/// panicking handler can't leak capacity.
#[derive(Debug)]
pub struct Gate {
    limit: usize,
    active: AtomicUsize,
}

impl Gate {
    /// A gate admitting at most `limit` concurrent holders (a limit of 0
    /// admits nobody).
    pub fn new(limit: usize) -> Arc<Gate> {
        Arc::new(Gate {
            limit,
            active: AtomicUsize::new(0),
        })
    }

    /// Try to take a permit; `None` when the gate is full.
    // audit: ordering — the initial load and the CAS failure ordering
    // are Relaxed because a stale count only costs one retry; success
    // is Acquire to pair with the Release in `GatePermit::drop` so a
    // reused slot's writes are visible to the new holder.
    pub fn try_enter(self: &Arc<Gate>) -> Option<GatePermit> {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                return None;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(GatePermit(Arc::clone(self))),
                Err(now) => cur = now,
            }
        }
    }

    /// Permits currently held.
    // audit: ordering — observational read for stats/health output.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }
}

/// An admission permit; returns its slot to the [`Gate`] on drop.
#[derive(Debug)]
pub struct GatePermit(Arc<Gate>);

impl Drop for GatePermit {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_bounds_and_releases() {
        let gate = Gate::new(2);
        let a = gate.try_enter().expect("first");
        let _b = gate.try_enter().expect("second");
        assert!(gate.try_enter().is_none(), "third must be refused");
        assert_eq!(gate.active(), 2);
        drop(a);
        assert!(gate.try_enter().is_some(), "slot freed on drop");
    }

    #[test]
    fn zero_gate_admits_nobody() {
        let gate = Gate::new(0);
        assert!(gate.try_enter().is_none());
    }
}
