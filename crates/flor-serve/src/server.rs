//! The blocking TCP server: bounded thread-per-connection accept pool,
//! session handshake, snapshot-pinned request execution, middleware
//! dispatch, and the follower poll loop.
//!
//! Concurrency model: the accept loop admits at most
//! [`ServerConfig::max_sessions`] live connections (excess connections
//! get a typed `Busy` error and are closed); each admitted connection is
//! served by its own thread, and a global [`Gate`] additionally bounds
//! how many requests *execute* at once. Every session's queries run
//! against the snapshot pinned at handshake (or last `Pin`), via
//! [`Flor::run_plan_at`] — lock-free reads, so a committing writer in
//! the same process never blocks serving.
//!
//! When the served handle is a follower ([`Flor::open_follower`]), the
//! server also runs a poll thread calling [`Flor::poll_follower`] every
//! [`ServerConfig::follower_poll`], which bounds the follower's
//! staleness by that interval.

use crate::middleware::Middleware;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, WireError, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use crate::session::{Gate, Session};
use flor_core::Flor;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tunables; [`ServerConfig::default`] is sized for tests and
/// small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Accept-pool bound: live sessions past this get `Busy` + close.
    pub max_sessions: usize,
    /// Global bound on concurrently *executing* requests.
    pub max_in_flight: usize,
    /// Per-session idle timeout; a session silent this long is dropped.
    pub idle_timeout: Duration,
    /// Per-frame size cap (both directions).
    pub max_frame_bytes: u32,
    /// Follower staleness bound: how often the poll thread tails the
    /// writer's WAL. Ignored for non-follower handles.
    pub follower_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 32,
            max_in_flight: 8,
            idle_timeout: Duration::from_secs(30),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            follower_poll: Duration::from_millis(20),
        }
    }
}

struct Shared {
    flor: Flor,
    cfg: ServerConfig,
    middleware: Vec<Arc<dyn Middleware>>,
    gate: Arc<Gate>,
    live_sessions: AtomicUsize,
    next_session: AtomicU64,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-running server. Configure middleware, then
/// either [`Server::run`] on this thread or [`Server::spawn`] one.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) serving `flor`.
    pub fn bind(
        flor: Flor,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let gate = Gate::new(cfg.max_in_flight);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                flor,
                cfg,
                middleware: Vec::new(),
                gate,
                live_sessions: AtomicUsize::new(0),
                next_session: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// Push a middleware onto the stack (dispatched in push order).
    ///
    /// # Panics
    /// If called after [`Server::spawn`] cloned the shared state (build
    /// the full stack before starting the server).
    pub fn with_middleware(mut self, mw: Arc<dyn Middleware>) -> Server {
        Arc::get_mut(&mut self.shared)
            .expect("add middleware before spawning")
            .middleware
            .push(mw);
        self
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve on a background thread; the returned handle stops the
    /// server on [`ServerHandle::stop`] or drop.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shared,
            join: Some(join),
        })
    }

    /// Serve on the calling thread until shut down.
    pub fn run(self) {
        let Server { listener, shared } = self;
        let poller = spawn_follower_poll(&shared);
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Bounded accept pool: admit or refuse with a typed error.
            if shared.live_sessions.fetch_add(1, Ordering::AcqRel) >= shared.cfg.max_sessions {
                shared.live_sessions.fetch_sub(1, Ordering::AcqRel);
                refuse_busy(stream);
                continue;
            }
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let _ = handle_conn(&shared, stream);
                shared.live_sessions.fetch_sub(1, Ordering::AcqRel);
            });
        }
        if let Some(p) = poller {
            let _ = p.join();
        }
    }
}

/// Handle to a spawned server; stops it on [`ServerHandle::stop`] or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live session count (admitted, not yet disconnected).
    pub fn live_sessions(&self) -> usize {
        self.shared.live_sessions.load(Ordering::Relaxed)
    }

    /// Stop accepting, wake the accept loop, and join the server thread.
    /// Connections already being served drain on their own (idle timeout
    /// at the latest).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Self-connect to wake the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// On a follower handle, tail the writer's WAL every `follower_poll` so
/// served epochs lag the writer by at most one interval.
fn spawn_follower_poll(shared: &Arc<Shared>) -> Option<JoinHandle<()>> {
    if !shared.flor.is_follower() {
        return None;
    }
    let shared = Arc::clone(shared);
    Some(thread::spawn(move || {
        while !shared.shutdown.load(Ordering::Relaxed) {
            // A poll error (e.g. the writer's directory vanished) is
            // retried next tick; the follower keeps serving its last
            // good state meanwhile.
            let _ = shared.flor.poll_follower();
            thread::sleep(shared.cfg.follower_poll);
        }
    }))
}

/// Refuse an over-capacity connection with `Busy` on a best-effort
/// write, then drop it.
fn refuse_busy(stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let resp = Response::Error {
        code: ErrorCode::Busy,
        message: "session pool exhausted; retry later".into(),
    };
    let _ = write_frame(&mut w, &resp.encode());
    let _ = w.flush();
}

/// Serve one connection: handshake, then the request loop. Protocol
/// violations answer a typed error and drop only this connection.
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(shared.cfg.idle_timeout)).ok();
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let max = shared.cfg.max_frame_bytes;

    // --- handshake: the first frame must be a version-matched Hello ---
    let hello = match read_request(&mut reader, max) {
        Ok(req) => req,
        Err(e) => return send_protocol_error(&mut writer, &e),
    };
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let mut session = Session::new(id, peer, shared.flor.db.pin());
    match &hello {
        Request::Hello { version, .. } if *version != PROTOCOL_VERSION => {
            return send_and_close(
                &mut writer,
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                    ),
                },
            );
        }
        Request::Hello { .. } => {}
        other => {
            return send_and_close(
                &mut writer,
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("expected hello, got {}", other.verb()),
                },
            );
        }
    }
    for mw in &shared.middleware {
        if let Err(resp) = mw.on_request(&session, &hello) {
            return send_and_close(&mut writer, resp);
        }
    }
    session.authed = true;
    write_frame(
        &mut writer,
        &Response::HelloOk {
            version: PROTOCOL_VERSION,
            epoch: session.epoch(),
        }
        .encode(),
    )?;

    // --- request loop ---
    loop {
        let req = match read_request(&mut reader, max) {
            Ok(req) => req,
            Err(WireError::Io(e)) => {
                // Peer gone or idle timeout: just drop the connection.
                return Err(WireError::Io(e));
            }
            Err(e) => return send_protocol_error(&mut writer, &e),
        };
        // Middleware veto: answer the prepared error. Auth failures end
        // the connection; admission failures leave it up for a retry.
        let veto = shared
            .middleware
            .iter()
            .find_map(|mw| mw.on_request(&session, &req).err());
        if let Some(resp) = veto {
            let fatal = matches!(
                resp,
                Response::Error {
                    code: ErrorCode::Unauthorized,
                    ..
                }
            );
            write_frame(&mut writer, &resp.encode())?;
            if fatal {
                return Ok(());
            }
            continue;
        }
        let start = Instant::now();
        let resp = match shared.gate.try_enter() {
            None => Response::Error {
                code: ErrorCode::Busy,
                message: "too many in-flight requests; retry later".into(),
            },
            Some(permit) => {
                let resp = execute(&shared.flor, &mut session, &req);
                drop(permit);
                resp
            }
        };
        session.requests += 1;
        for mw in &shared.middleware {
            mw.on_response(&session, &req, &resp, start.elapsed());
        }
        let bye = matches!(resp, Response::Bye);
        write_frame(&mut writer, &resp.encode())?;
        if bye {
            return Ok(());
        }
    }
}

fn read_request(reader: &mut BufReader<TcpStream>, max: u32) -> Result<Request, WireError> {
    Request::decode(read_frame(reader, max)?)
}

/// Send a typed error for a protocol violation, then drop the
/// connection (other sessions are untouched).
fn send_protocol_error(
    writer: &mut BufWriter<TcpStream>,
    err: &WireError,
) -> Result<(), WireError> {
    if let WireError::Io(e) = err {
        // Nothing to answer into a dead/idle socket.
        return Err(WireError::Io(std::io::Error::new(e.kind(), e.to_string())));
    }
    send_and_close(
        writer,
        Response::Error {
            code: ErrorCode::BadRequest,
            message: err.to_string(),
        },
    )
}

fn send_and_close(writer: &mut BufWriter<TcpStream>, resp: Response) -> Result<(), WireError> {
    write_frame(writer, &resp.encode())
}

/// Execute one admitted request against the session's pinned snapshot.
fn execute(flor: &Flor, session: &mut Session, req: &Request) -> Response {
    match req {
        Request::Hello { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "duplicate hello".into(),
        },
        Request::Query { plan } => match flor.run_plan_at(session.snapshot(), plan) {
            Ok(df) => Response::Frame {
                epoch: session.epoch(),
                df,
            },
            Err(e) => Response::Error {
                code: ErrorCode::Internal,
                message: e.to_string(),
            },
        },
        Request::Pin => {
            session.repin(flor.db.pin());
            Response::Pinned {
                epoch: session.epoch(),
            }
        }
        Request::Epoch => Response::Epochs {
            pinned: session.epoch(),
            latest: flor.db.pin().epoch(),
        },
        Request::Metrics => Response::Text {
            body: flor.metrics().render_text(),
        },
        Request::MetricsPrometheus => Response::Text {
            body: flor.metrics().render_prometheus(),
        },
        Request::Close => Response::Bye,
    }
}
