//! The blocking TCP server: bounded thread-per-connection accept pool,
//! session handshake, snapshot-pinned request execution, middleware
//! dispatch, and the follower poll loop.
//!
//! Concurrency model: the accept loop admits at most
//! [`ServerConfig::max_sessions`] live connections (excess connections
//! get a typed `Busy` error and are closed); each admitted connection is
//! served by its own thread, and a global [`Gate`] additionally bounds
//! how many requests *execute* at once. Every session's queries run
//! against the snapshot pinned at handshake (or last `Pin`), via
//! [`Flor::run_plan_at`] — lock-free reads, so a committing writer in
//! the same process never blocks serving.
//!
//! When the served handle is a follower ([`Flor::open_follower`]), the
//! server also runs a poll thread calling [`Flor::poll_follower`] every
//! [`ServerConfig::follower_poll`], which bounds the follower's
//! staleness by that interval.

use crate::middleware::Middleware;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, HealthReport, Request, Response, WireError,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::session::{Gate, Session};
use flor_core::Flor;
use flor_obs::{
    unix_micros, ActiveTrace, Counter, Gauge, Level, MetricsRegistry, SlowQueryRecord, TraceId,
};
use flor_store::QueryExplain;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tunables; [`ServerConfig::default`] is sized for tests and
/// small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Accept-pool bound: live sessions past this get `Busy` + close.
    pub max_sessions: usize,
    /// Global bound on concurrently *executing* requests.
    pub max_in_flight: usize,
    /// Per-session idle timeout; a session silent this long is dropped.
    pub idle_timeout: Duration,
    /// Per-frame size cap (both directions).
    pub max_frame_bytes: u32,
    /// Follower staleness bound: how often the poll thread tails the
    /// writer's WAL. Ignored for non-follower handles.
    pub follower_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 32,
            max_in_flight: 8,
            idle_timeout: Duration::from_secs(30),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            follower_poll: Duration::from_millis(20),
        }
    }
}

/// Server-level gauges and counters, resolved once at bind time so the
/// accept loop and request path never touch the registry map — they
/// land in the same [`MetricsRegistry`] the kernel records into, so the
/// Prometheus scrape carries them alongside the store/view/job metrics.
struct ServeMetrics {
    registry: MetricsRegistry,
    /// `serve.sessions.live`: admitted sessions not yet disconnected.
    live_sessions: Arc<Gauge>,
    /// `serve.inflight`: requests executing inside the gate right now.
    in_flight: Arc<Gauge>,
    /// `serve.busy`: refusals from the accept pool or the gate.
    busy: Arc<Counter>,
    /// `serve.error.<code>`: error responses per [`ErrorCode`].
    errors: [Arc<Counter>; ErrorCode::ALL.len()],
    /// `serve.follower.wal_lag`: commits behind the writer, updated by
    /// the poll thread (stays 0 on a writer).
    wal_lag: Arc<Gauge>,
}

impl ServeMetrics {
    fn new(registry: MetricsRegistry) -> ServeMetrics {
        let errors = ErrorCode::ALL.map(|c| registry.counter(&format!("serve.error.{c}")));
        ServeMetrics {
            live_sessions: registry.gauge("serve.sessions.live"),
            in_flight: registry.gauge("serve.inflight"),
            busy: registry.counter("serve.busy"),
            wal_lag: registry.gauge("serve.follower.wal_lag"),
            errors,
            registry,
        }
    }

    fn on_error(&self, code: ErrorCode) {
        self.errors[code.index()].inc();
    }
}

struct Shared {
    flor: Flor,
    cfg: ServerConfig,
    middleware: Vec<Arc<dyn Middleware>>,
    gate: Arc<Gate>,
    metrics: ServeMetrics,
    live_sessions: AtomicUsize,
    next_session: AtomicU64,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-running server. Configure middleware, then
/// either [`Server::run`] on this thread or [`Server::spawn`] one.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) serving `flor`.
    pub fn bind(
        flor: Flor,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let gate = Gate::new(cfg.max_in_flight);
        let metrics = ServeMetrics::new(flor.metrics_registry());
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                flor,
                cfg,
                middleware: Vec::new(),
                gate,
                metrics,
                live_sessions: AtomicUsize::new(0),
                next_session: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// Push a middleware onto the stack (dispatched in push order).
    ///
    /// # Panics
    /// If called after [`Server::spawn`] cloned the shared state (build
    /// the full stack before starting the server).
    pub fn with_middleware(mut self, mw: Arc<dyn Middleware>) -> Server {
        Arc::get_mut(&mut self.shared)
            // audit: allow(panic) — documented builder contract (see
            // `# Panics`): the stack is sealed once `spawn` clones the
            // shared state; misuse is a programming error, not input.
            .expect("add middleware before spawning")
            .middleware
            .push(mw);
        self
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve on a background thread; the returned handle stops the
    /// server on [`ServerHandle::stop`] or drop.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shared,
            join: Some(join),
        })
    }

    /// Serve on the calling thread until shut down.
    pub fn run(self) {
        let Server { listener, shared } = self;
        let poller = spawn_follower_poll(&shared);
        for stream in listener.incoming() {
            // audit: ordering — shutdown is a latch only ever flipped
            // false->true; the self-connect wake guarantees the accept
            // loop re-checks it, so Relaxed cannot lose the signal.
            if shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Bounded accept pool: admit or refuse with a typed error.
            if shared.live_sessions.fetch_add(1, Ordering::AcqRel) >= shared.cfg.max_sessions {
                shared.live_sessions.fetch_sub(1, Ordering::AcqRel);
                shared.metrics.busy.inc();
                shared.metrics.on_error(ErrorCode::Busy);
                refuse_busy(stream);
                continue;
            }
            shared.metrics.live_sessions.add(1);
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let _ = handle_conn(&shared, stream);
                shared.live_sessions.fetch_sub(1, Ordering::AcqRel);
                shared.metrics.live_sessions.add(-1);
            });
        }
        if let Some(p) = poller {
            let _ = p.join();
        }
    }
}

/// Handle to a spawned server; stops it on [`ServerHandle::stop`] or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live session count (admitted, not yet disconnected).
    // audit: ordering — observational statistic; staleness is fine.
    pub fn live_sessions(&self) -> usize {
        self.shared.live_sessions.load(Ordering::Relaxed)
    }

    /// Stop accepting, wake the accept loop, and join the server thread.
    /// Connections already being served drain on their own (idle timeout
    /// at the latest).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // audit: ordering — one-way latch; the subsequent self-connect
        // and thread join provide all the synchronization shutdown
        // needs, the flag itself publishes nothing.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Self-connect to wake the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// On a follower handle, tail the writer's WAL every `follower_poll` so
/// served epochs lag the writer by at most one interval.
fn spawn_follower_poll(shared: &Arc<Shared>) -> Option<JoinHandle<()>> {
    if !shared.flor.is_follower() {
        return None;
    }
    let shared = Arc::clone(shared);
    Some(thread::spawn(move || {
        // audit: ordering — shutdown latch polled every slice; seeing
        // the flip one 25ms slice late is within the drain budget.
        while !shared.shutdown.load(Ordering::Relaxed) {
            // A poll error (e.g. the writer's directory vanished) is
            // retried next tick; the follower keeps serving its last
            // good state meanwhile.
            let _ = shared.flor.poll_follower();
            // Refresh the scrape-visible lag estimate after applying;
            // an unknown estimate (writer just checkpointed) keeps the
            // previous value until the next successful peek.
            if let Ok(Some(lag)) = shared.flor.follower_lag() {
                shared.metrics.wal_lag.set(lag as i64);
            }
            // Sleep in short slices so a long poll interval doesn't hold
            // up shutdown for a whole tick.
            let mut remaining = shared.cfg.follower_poll;
            // audit: ordering — same latch as above, same slice bound.
            while !remaining.is_zero() && !shared.shutdown.load(Ordering::Relaxed) {
                let slice = remaining.min(Duration::from_millis(25));
                thread::sleep(slice);
                remaining -= slice;
            }
        }
    }))
}

/// Refuse an over-capacity connection with `Busy` on a best-effort
/// write, then drop it.
fn refuse_busy(stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let resp = Response::Error {
        code: ErrorCode::Busy,
        message: "session pool exhausted; retry later".into(),
    };
    let _ = write_frame(&mut w, &resp.encode());
    let _ = w.flush();
}

/// Serve one connection: handshake, then the request loop. Protocol
/// violations answer a typed error and drop only this connection.
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(shared.cfg.idle_timeout)).ok();
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let max = shared.cfg.max_frame_bytes;

    // --- handshake: the first frame must be a version-matched Hello ---
    let hello = match read_request(&mut reader, max) {
        Ok(req) => req,
        Err(e) => return send_protocol_error(&mut writer, &e),
    };
    // audit: ordering — id allocation needs only atomicity of the
    // increment; session state is confined to this thread.
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let mut session = Session::new(id, peer, shared.flor.db.pin());
    match &hello {
        Request::Hello { version, .. } if *version != PROTOCOL_VERSION => {
            return send_and_close(
                &mut writer,
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                    ),
                },
            );
        }
        Request::Hello { .. } => {}
        other => {
            return send_and_close(
                &mut writer,
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("expected hello, got {}", other.verb()),
                },
            );
        }
    }
    for mw in &shared.middleware {
        if let Err(resp) = mw.on_request(&session, &hello) {
            return send_and_close(&mut writer, resp);
        }
    }
    session.authed = true;
    shared.metrics.registry.event_at(
        Level::Debug,
        "session",
        format!("open id={} peer={}", session.id, session.peer),
    );
    write_frame(
        &mut writer,
        &Response::HelloOk {
            version: PROTOCOL_VERSION,
            epoch: session.epoch(),
        }
        .encode(),
    )?;

    // --- request loop ---
    let result = request_loop(shared, &mut session, &mut reader, &mut writer, max);
    shared.metrics.registry.event_at(
        Level::Debug,
        "session",
        format!(
            "close id={} peer={} requests={}",
            session.id, session.peer, session.requests
        ),
    );
    result
}

fn request_loop(
    shared: &Arc<Shared>,
    session: &mut Session,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    max: u32,
) -> Result<(), WireError> {
    loop {
        let req = match read_request(reader, max) {
            Ok(req) => req,
            Err(WireError::Io(e)) => {
                // Peer gone or idle timeout: just drop the connection.
                return Err(WireError::Io(e));
            }
            Err(e) => return send_protocol_error(writer, &e),
        };
        // Unwrap the optional client-originated trace context; the
        // wrapper is transport only, so everything below (middleware,
        // gate, execute, metrics) sees the inner request.
        let (req, ctx) = match req {
            Request::Traced { trace, inner } => (*inner, Some(trace)),
            other => (other, None),
        };
        let traces = shared.metrics.registry.traces();
        let slow = shared.metrics.registry.slow_queries();
        // Two relaxed loads decide the whole per-request overhead: with
        // tracing off and the slow log unarmed, no trace is allocated.
        let mut tr = (traces.enabled() || slow.armed()).then(|| {
            let mut t =
                ActiveTrace::start_detached(ctx.unwrap_or_else(TraceId::generate), req.verb());
            t.set_detail(format!("session {} peer {}", session.id, session.peer));
            t.begin("request");
            t
        });

        // Middleware: every verdict becomes a span event. Auth failures
        // end the connection; admission failures leave it up for retry.
        let mut veto = None;
        if let Some(t) = tr.as_mut() {
            let mw_span = t.begin("middleware");
            for mw in &shared.middleware {
                match mw.on_request(session, &req) {
                    Ok(()) => t.event(format!("{}: ok", mw.name())),
                    Err(resp) => {
                        t.event(format!("{}: veto", mw.name()));
                        veto = Some(resp);
                        break;
                    }
                }
            }
            t.end(mw_span);
        } else {
            veto = shared
                .middleware
                .iter()
                .find_map(|mw| mw.on_request(session, &req).err());
        }
        if let Some(resp) = veto {
            let fatal = matches!(
                resp,
                Response::Error {
                    code: ErrorCode::Unauthorized,
                    ..
                }
            );
            if let Response::Error { code, .. } = &resp {
                shared.metrics.on_error(*code);
            }
            if let Some(t) = tr.take() {
                t.finish(traces);
            }
            write_frame(writer, &resp.encode())?;
            if fatal {
                return Ok(());
            }
            continue;
        }

        let start = Instant::now();
        let mut explain = None;
        let gate_span = tr.as_mut().map(|t| t.begin("gate"));
        let permit = shared.gate.try_enter();
        if let (Some(t), Some(gs)) = (tr.as_mut(), gate_span) {
            t.event(if permit.is_some() {
                "admitted"
            } else {
                "busy: in-flight limit reached"
            });
            t.end(gs);
        }
        let resp = match permit {
            None => {
                shared.metrics.busy.inc();
                Response::Error {
                    code: ErrorCode::Busy,
                    message: "too many in-flight requests; retry later".into(),
                }
            }
            Some(permit) => {
                shared.metrics.in_flight.add(1);
                let ex_span = tr.as_mut().map(|t| t.begin("execute"));
                let (resp, ex) = execute(shared, session, &req, tr.as_mut());
                explain = ex;
                if let (Some(t), Some(es)) = (tr.as_mut(), ex_span) {
                    t.end(es);
                }
                shared.metrics.in_flight.add(-1);
                drop(permit);
                resp
            }
        };
        session.requests += 1;
        if let Response::Error { code, .. } = &resp {
            shared.metrics.on_error(*code);
        }
        for mw in &shared.middleware {
            mw.on_response(session, &req, &resp, start.elapsed());
        }
        // Publish the trace, and capture a slow-query record when a
        // Query breached the armed threshold — the measured explain
        // from the traced execution rides along.
        if let Some(t) = tr.take() {
            let total = t.elapsed_nanos();
            let trace = t.finish(traces);
            if let Some(threshold) = slow.threshold_nanos() {
                if total > threshold {
                    if let Request::Query { plan } = &req {
                        slow.record(SlowQueryRecord {
                            trace,
                            verb: "query".into(),
                            plan: format!("{:?}", plan.names),
                            explain: explain.map(|e| e.to_string()).unwrap_or_default(),
                            total_nanos: total,
                            threshold_nanos: threshold,
                            at_unix_micros: unix_micros(),
                        });
                    }
                }
            }
        }
        let bye = matches!(resp, Response::Bye);
        write_frame(writer, &resp.encode())?;
        if bye {
            return Ok(());
        }
    }
}

fn read_request(reader: &mut BufReader<TcpStream>, max: u32) -> Result<Request, WireError> {
    Request::decode(read_frame(reader, max)?)
}

/// Send a typed error for a protocol violation, then drop the
/// connection (other sessions are untouched).
fn send_protocol_error(
    writer: &mut BufWriter<TcpStream>,
    err: &WireError,
) -> Result<(), WireError> {
    if let WireError::Io(e) = err {
        // Nothing to answer into a dead/idle socket.
        return Err(WireError::Io(std::io::Error::new(e.kind(), e.to_string())));
    }
    send_and_close(
        writer,
        Response::Error {
            code: ErrorCode::BadRequest,
            message: err.to_string(),
        },
    )
}

fn send_and_close(writer: &mut BufWriter<TcpStream>, resp: Response) -> Result<(), WireError> {
    write_frame(writer, &resp.encode())
}

/// Execute one admitted request against the session's pinned snapshot.
/// With an active trace, queries run through the measured store path
/// (child spans for scan/pivot/post-pass) and return their
/// [`QueryExplain`] for slow-query capture — the frame stays
/// byte-identical to the untraced path's.
fn execute(
    shared: &Shared,
    session: &mut Session,
    req: &Request,
    tr: Option<&mut ActiveTrace>,
) -> (Response, Option<QueryExplain>) {
    let flor = &shared.flor;
    let resp = match req {
        Request::Hello { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "duplicate hello".into(),
        },
        Request::Query { plan } => {
            let result = match tr {
                Some(t) => flor
                    .run_plan_at_traced(session.snapshot(), plan, t)
                    .map(|(df, ex)| (df, Some(ex))),
                None => flor
                    .run_plan_at(session.snapshot(), plan)
                    .map(|df| (df, None)),
            };
            return match result {
                Ok((df, ex)) => (
                    Response::Frame {
                        epoch: session.epoch(),
                        df,
                    },
                    ex,
                ),
                Err(e) => (
                    Response::Error {
                        code: ErrorCode::Internal,
                        message: e.to_string(),
                    },
                    None,
                ),
            };
        }
        Request::Pin => {
            session.repin(flor.db.pin());
            Response::Pinned {
                epoch: session.epoch(),
            }
        }
        Request::Epoch => Response::Epochs {
            pinned: session.epoch(),
            latest: flor.db.pin().epoch(),
        },
        Request::Metrics => Response::Text {
            body: flor.metrics().render_text(),
        },
        Request::MetricsPrometheus => Response::Text {
            body: flor.metrics().render_prometheus(),
        },
        Request::Close => Response::Bye,
        // The loop unwraps trace contexts before execution; a nested one
        // is a protocol violation the decoder already rejects.
        Request::Traced { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "nested trace context".into(),
        },
        Request::Health => Response::Health(health_report(shared)),
        Request::Traces { limit } => Response::Traces {
            traces: shared.metrics.registry.traces().recent(*limit as usize),
        },
        Request::SlowQueries { limit } => Response::SlowQueries {
            records: shared
                .metrics
                .registry
                .slow_queries()
                .recent(*limit as usize),
        },
    };
    (resp, None)
}

/// One consistent liveness/readiness picture: store watermarks from
/// [`flor_store::DbStats`], occupancy from the accept pool and the
/// gate, and (on a follower) a fresh lag estimate peeked from the
/// writer's log.
fn health_report(shared: &Shared) -> HealthReport {
    let stats = shared.flor.db.stats();
    let follower = shared.flor.is_follower();
    let follower_lag = if follower {
        shared.flor.follower_lag().ok().flatten()
    } else {
        None
    };
    HealthReport {
        follower,
        epoch: stats.wal_epoch,
        wal_offset_bytes: stats.wal_offset_bytes,
        last_checkpoint_epoch: stats.last_checkpoint_epoch,
        checkpoints: stats.checkpoints,
        compactions: stats.compactions,
        total_rows: stats.total_rows as u64,
        // audit: ordering — stats snapshot; cross-field consistency is
        // not promised by the health verb.
        live_sessions: shared.live_sessions.load(Ordering::Relaxed) as u64,
        max_sessions: shared.cfg.max_sessions as u64,
        in_flight: shared.gate.active() as u64,
        max_in_flight: shared.cfg.max_in_flight as u64,
        follower_lag,
    }
}
