//! The blocking client: connect, handshake, then typed calls that
//! mirror the protocol verbs one-to-one.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, HealthReport, Request, Response, WireError,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use flor_df::DataFrame;
use flor_obs::{SlowQueryRecord, Trace, TraceId};
use flor_view::QueryPlan;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: a wire problem or a typed server refusal.
#[derive(Debug)]
pub enum ServeError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a typed error.
    Remote {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response of the wrong kind.
    Unexpected(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Remote { code, message } => write!(f, "server refused: {code}: {message}"),
            ServeError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Wire(WireError::Io(e))
    }
}

/// A connected session. Every [`Client::query`] answers from the
/// snapshot pinned at connect (or the last [`Client::pin`]), so results
/// are repeatable no matter what the writer does meanwhile.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    epoch: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Client {
    /// Connect and perform the `Hello` handshake (with `token` when the
    /// server demands one). On success the session is pinned at
    /// [`Client::epoch`].
    pub fn connect(addr: impl ToSocketAddrs, token: Option<&str>) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            epoch: 0,
        };
        let resp = client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
            token: token.map(str::to_string),
        })?;
        match resp {
            Response::HelloOk { epoch, .. } => {
                client.epoch = epoch;
                Ok(client)
            }
            other => Err(refused(other)),
        }
    }

    /// The epoch this session is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Run `plan` at the pinned epoch; returns `(epoch, frame)`.
    pub fn query(&mut self, plan: &QueryPlan) -> Result<(u64, DataFrame), ServeError> {
        match self.call(&Request::Query { plan: plan.clone() })? {
            Response::Frame { epoch, df } => Ok((epoch, df)),
            other => Err(refused(other)),
        }
    }

    /// Run `plan` like [`Client::query`], but originate a trace context:
    /// the server executes the request under a trace carrying the
    /// returned [`TraceId`], retrievable afterwards with
    /// [`Client::trace`] (when the server has tracing enabled).
    pub fn query_traced(
        &mut self,
        plan: &QueryPlan,
    ) -> Result<(TraceId, u64, DataFrame), ServeError> {
        let trace = TraceId::generate();
        let req = Request::Traced {
            trace,
            inner: Box::new(Request::Query { plan: plan.clone() }),
        };
        match self.call(&req)? {
            Response::Frame { epoch, df } => Ok((trace, epoch, df)),
            other => Err(refused(other)),
        }
    }

    /// One-stop operational health: epoch, WAL position, follower lag,
    /// session and in-flight occupancy.
    pub fn health(&mut self) -> Result<HealthReport, ServeError> {
        match self.call(&Request::Health)? {
            Response::Health(report) => Ok(report),
            other => Err(refused(other)),
        }
    }

    /// Up to `limit` recent request traces, newest first. Empty unless
    /// the server has tracing enabled.
    pub fn traces(&mut self, limit: u32) -> Result<Vec<Trace>, ServeError> {
        match self.call(&Request::Traces { limit })? {
            Response::Traces { traces } => Ok(traces),
            other => Err(refused(other)),
        }
    }

    /// Fetch one trace by id, if it is still in the server's ring.
    pub fn trace(&mut self, id: TraceId) -> Result<Option<Trace>, ServeError> {
        Ok(self.traces(u32::MAX)?.into_iter().find(|t| t.id == id))
    }

    /// Up to `limit` recent slow-query captures, newest first. Empty
    /// unless the server has a slow-query threshold armed.
    pub fn slow_queries(&mut self, limit: u32) -> Result<Vec<SlowQueryRecord>, ServeError> {
        match self.call(&Request::SlowQueries { limit })? {
            Response::SlowQueries { records } => Ok(records),
            other => Err(refused(other)),
        }
    }

    /// Re-pin the session to the server's current epoch.
    pub fn pin(&mut self) -> Result<u64, ServeError> {
        match self.call(&Request::Pin)? {
            Response::Pinned { epoch } => {
                self.epoch = epoch;
                Ok(epoch)
            }
            other => Err(refused(other)),
        }
    }

    /// `(pinned, latest)` epochs as the server sees them.
    pub fn epochs(&mut self) -> Result<(u64, u64), ServeError> {
        match self.call(&Request::Epoch)? {
            Response::Epochs { pinned, latest } => Ok((pinned, latest)),
            other => Err(refused(other)),
        }
    }

    /// Human-readable metrics dump.
    pub fn metrics_text(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::Text { body } => Ok(body),
            other => Err(refused(other)),
        }
    }

    /// Prometheus exposition-format scrape.
    pub fn metrics_prometheus(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::MetricsPrometheus)? {
            Response::Text { body } => Ok(body),
            other => Err(refused(other)),
        }
    }

    /// Orderly goodbye.
    pub fn close(mut self) -> Result<(), ServeError> {
        match self.call(&Request::Close)? {
            Response::Bye => Ok(()),
            other => Err(refused(other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader, DEFAULT_MAX_FRAME_BYTES)?;
        Ok(Response::decode(payload)?)
    }
}

fn refused(resp: Response) -> ServeError {
    match resp {
        Response::Error { code, message } => ServeError::Remote { code, message },
        Response::HelloOk { .. } => ServeError::Unexpected("hello-ok"),
        Response::Frame { .. } => ServeError::Unexpected("frame"),
        Response::Pinned { .. } => ServeError::Unexpected("pinned"),
        Response::Epochs { .. } => ServeError::Unexpected("epochs"),
        Response::Text { .. } => ServeError::Unexpected("text"),
        Response::Bye => ServeError::Unexpected("bye"),
        Response::Health(_) => ServeError::Unexpected("health"),
        Response::Traces { .. } => ServeError::Unexpected("traces"),
        Response::SlowQueries { .. } => ServeError::Unexpected("slow-queries"),
    }
}
