//! The flor-serve wire protocol: length-prefixed, CRC-guarded frames
//! carrying typed request/response payloads.
//!
//! A frame on the wire is `[len: u32][crc: u64][payload]` (big-endian),
//! where `crc` is the FNV-1a hash of the payload — the same checksum the
//! WAL uses ([`flor_store::codec::fnv1a`]), so a flipped bit anywhere in
//! the payload is caught before decoding starts. The payload's first
//! byte is a kind tag; the rest is the variant body, encoded with the
//! store's value codec ([`flor_store::codec::encode_value`]) so the
//! dataframe cells a server ships are byte-identical to what the WAL
//! would persist.
//!
//! Robustness contract (exercised by the `protocol_robustness` test):
//! a malformed, truncated or oversized frame decodes to a typed
//! [`WireError`] — never a panic — and the server answers with a typed
//! [`Response::Error`] before dropping that connection only.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use flor_df::{Column, DataFrame, Value};
use flor_obs::{SlowQueryRecord, SpanEvent, SpanId, Trace, TraceId, TraceSpan};
use flor_store::codec::{decode_value, encode_value, fnv1a, CodecError};
use flor_store::{CmpOp, Predicate};
use flor_view::QueryPlan;
use std::io::{Read, Write};

/// Protocol version carried by [`Request::Hello`]; the server refuses
/// anything else.
pub const PROTOCOL_VERSION: u16 = 1;

/// Default per-frame size cap (64 MiB): a frame announcing more than
/// this is rejected as [`WireError::TooLarge`] without allocating.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 1 << 26;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes idle-timeout and peer-gone).
    Io(std::io::Error),
    /// Payload failed to decode (truncated, bad tag, malformed).
    Codec(CodecError),
    /// Frame header announced a payload larger than the cap.
    TooLarge {
        /// Announced payload length.
        len: u32,
        /// The enforced cap.
        max: u32,
    },
    /// Frame checksum mismatch: the payload was corrupted in flight.
    BadChecksum,
    /// Unknown request/response kind tag.
    UnknownKind(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Codec(e) => write!(f, "codec: {e}"),
            WireError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> WireError {
        WireError::Codec(e)
    }
}

fn trunc() -> WireError {
    WireError::Codec(CodecError::Truncated)
}

fn malformed(m: impl Into<String>) -> WireError {
    WireError::Codec(CodecError::Malformed(m.into()))
}

/// Typed error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or protocol-violating request.
    BadRequest,
    /// Auth token missing or wrong.
    Unauthorized,
    /// Accept pool or in-flight limit exhausted; retry later.
    Busy,
    /// Per-session admission rate exceeded; retry later.
    RateLimited,
    /// The server refused a write (read-only follower).
    ReadOnly,
    /// Request was valid but execution failed server-side.
    Internal,
}

impl ErrorCode {
    /// Every code, in tag order — lets the server pre-register one
    /// response counter per code.
    pub(crate) const ALL: [ErrorCode; 6] = [
        ErrorCode::BadRequest,
        ErrorCode::Unauthorized,
        ErrorCode::Busy,
        ErrorCode::RateLimited,
        ErrorCode::ReadOnly,
        ErrorCode::Internal,
    ];

    /// Position in [`ErrorCode::ALL`].
    pub(crate) fn index(self) -> usize {
        self.to_u8() as usize
    }

    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::Unauthorized => 1,
            ErrorCode::Busy => 2,
            ErrorCode::RateLimited => 3,
            ErrorCode::ReadOnly => 4,
            ErrorCode::Internal => 5,
        }
    }

    fn from_u8(b: u8) -> Result<ErrorCode, WireError> {
        Ok(match b {
            0 => ErrorCode::BadRequest,
            1 => ErrorCode::Unauthorized,
            2 => ErrorCode::Busy,
            3 => ErrorCode::RateLimited,
            4 => ErrorCode::ReadOnly,
            5 => ErrorCode::Internal,
            k => return Err(WireError::UnknownKind(k)),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Unauthorized => "unauthorized",
            ErrorCode::Busy => "busy",
            ErrorCode::RateLimited => "rate-limited",
            ErrorCode::ReadOnly => "read-only",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// A client request. The first request on a connection must be
/// [`Request::Hello`]; everything after executes against the session's
/// pinned snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session: protocol version check plus optional auth token.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u16,
        /// Auth token, when the server's middleware demands one.
        token: Option<String>,
    },
    /// Execute a [`QueryPlan`] at the session's pinned epoch.
    Query {
        /// The plan to run.
        plan: QueryPlan,
    },
    /// Re-pin the session to the server's current epoch.
    Pin,
    /// Report the session's pinned epoch and the server's latest.
    Epoch,
    /// Human-readable metrics dump ([`flor_obs::MetricsSnapshot::render_text`]).
    Metrics,
    /// Prometheus scrape ([`flor_obs::MetricsSnapshot::render_prometheus`]).
    MetricsPrometheus,
    /// Orderly goodbye; the server answers [`Response::Bye`] and hangs up.
    Close,
    /// A request wrapped with a client-originated trace context: the
    /// server instruments `inner`'s execution under this [`TraceId`], so
    /// the client can retrieve the server-side trace afterwards via
    /// [`Request::Traces`]. Wrapping never changes `inner`'s result.
    /// Old-style clients simply never send this tag — absent context is
    /// always fine.
    Traced {
        /// The trace identity to record under.
        trace: TraceId,
        /// The request to execute (itself never `Traced`).
        inner: Box<Request>,
    },
    /// Liveness/readiness probe: epoch, WAL position, follower lag,
    /// session and in-flight occupancy ([`Response::Health`]).
    Health,
    /// Retrieve up to `limit` most recent completed traces, newest
    /// first ([`Response::Traces`]).
    Traces {
        /// Maximum traces to return.
        limit: u32,
    },
    /// Retrieve up to `limit` most recent slow-query records, newest
    /// first ([`Response::SlowQueries`]).
    SlowQueries {
        /// Maximum records to return.
        limit: u32,
    },
}

impl Request {
    /// Stable lowercase verb name (metric labels, logs). A traced
    /// request reports its inner verb — the wrapper is transport, not
    /// semantics.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Query { .. } => "query",
            Request::Pin => "pin",
            Request::Epoch => "epoch",
            Request::Metrics => "metrics",
            Request::MetricsPrometheus => "metrics_prometheus",
            Request::Close => "close",
            Request::Traced { inner, .. } => inner.verb(),
            Request::Health => "health",
            Request::Traces { .. } => "traces",
            Request::SlowQueries { .. } => "slow_queries",
        }
    }

    /// Encode into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Request::Hello { version, token } => {
                buf.put_u8(1);
                buf.put_u16(*version);
                match token {
                    None => buf.put_u8(0),
                    Some(t) => {
                        buf.put_u8(1);
                        put_str(&mut buf, t);
                    }
                }
            }
            Request::Query { plan } => {
                buf.put_u8(2);
                encode_plan(plan, &mut buf);
            }
            Request::Pin => buf.put_u8(3),
            Request::Epoch => buf.put_u8(4),
            Request::Metrics => buf.put_u8(5),
            Request::MetricsPrometheus => buf.put_u8(6),
            Request::Close => buf.put_u8(7),
            Request::Traced { trace, inner } => {
                buf.put_u8(8);
                buf.put_u64(trace.0);
                buf.put_slice(&inner.encode());
            }
            Request::Health => buf.put_u8(9),
            Request::Traces { limit } => {
                buf.put_u8(10);
                buf.put_u32(*limit);
            }
            Request::SlowQueries { limit } => {
                buf.put_u8(11);
                buf.put_u32(*limit);
            }
        }
        buf.freeze()
    }

    /// Decode a frame payload; trailing bytes are a protocol violation.
    pub fn decode(mut buf: Bytes) -> Result<Request, WireError> {
        if buf.remaining() < 1 {
            return Err(trunc());
        }
        let req = match buf.get_u8() {
            1 => {
                if buf.remaining() < 3 {
                    return Err(trunc());
                }
                let version = buf.get_u16();
                let token = match buf.get_u8() {
                    0 => None,
                    _ => Some(get_str(&mut buf)?),
                };
                Request::Hello { version, token }
            }
            2 => Request::Query {
                plan: decode_plan(&mut buf)?,
            },
            3 => Request::Pin,
            4 => Request::Epoch,
            5 => Request::Metrics,
            6 => Request::MetricsPrometheus,
            7 => Request::Close,
            8 => {
                if buf.remaining() < 8 {
                    return Err(trunc());
                }
                let trace = TraceId(buf.get_u64());
                // The recursive decode consumes the rest of the payload
                // and enforces the no-trailing-bytes contract itself.
                let inner = Request::decode(buf)?;
                if matches!(inner, Request::Traced { .. }) {
                    return Err(malformed("nested trace context"));
                }
                return Ok(Request::Traced {
                    trace,
                    inner: Box::new(inner),
                });
            }
            9 => Request::Health,
            10 => Request::Traces {
                limit: get_count(&mut buf)? as u32,
            },
            11 => Request::SlowQueries {
                limit: get_count(&mut buf)? as u32,
            },
            k => return Err(WireError::UnknownKind(k)),
        };
        if buf.remaining() > 0 {
            return Err(malformed("trailing bytes after request"));
        }
        Ok(req)
    }
}

/// The [`Response::Health`] body: one consistent liveness/readiness
/// picture of the serving instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Whether this instance is a read-only follower.
    pub follower: bool,
    /// Latest committed epoch visible to new sessions.
    pub epoch: u64,
    /// Byte length of the write-ahead log (the follower's applied
    /// cursor position on a follower).
    pub wal_offset_bytes: u64,
    /// Epoch covered by the last completed checkpoint (0 = never).
    pub last_checkpoint_epoch: u64,
    /// Checkpoints completed since open.
    pub checkpoints: u64,
    /// Compaction passes completed since open.
    pub compactions: u64,
    /// Total live rows across tables.
    pub total_rows: u64,
    /// Sessions currently open on the server.
    pub live_sessions: u64,
    /// The accept pool's session cap.
    pub max_sessions: u64,
    /// Requests executing right now (gate occupancy).
    pub in_flight: u64,
    /// The gate's in-flight cap.
    pub max_in_flight: u64,
    /// Follower lag estimate: committed transactions durable in the
    /// writer's log but not applied here. `None` on a writer, and on a
    /// follower whose cursor was just truncated by a writer checkpoint.
    pub follower_lag: Option<u64>,
}

impl HealthReport {
    /// Multi-line operator rendering.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health: {} epoch={}",
            if self.follower { "follower" } else { "writer" },
            self.epoch
        );
        let _ = writeln!(
            out,
            "  wal: offset={}B checkpoints={} (last epoch {}) compactions={}",
            self.wal_offset_bytes, self.checkpoints, self.last_checkpoint_epoch, self.compactions
        );
        let _ = writeln!(out, "  rows: {}", self.total_rows);
        let _ = writeln!(
            out,
            "  sessions: {}/{} in-flight: {}/{}",
            self.live_sessions, self.max_sessions, self.in_flight, self.max_in_flight
        );
        match self.follower_lag {
            Some(lag) => {
                let _ = writeln!(out, "  follower lag: {lag} commit(s) behind");
            }
            None if self.follower => {
                let _ = writeln!(out, "  follower lag: unknown (writer checkpointed)");
            }
            None => {}
        }
        out
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.follower as u8);
        buf.put_u64(self.epoch);
        buf.put_u64(self.wal_offset_bytes);
        buf.put_u64(self.last_checkpoint_epoch);
        buf.put_u64(self.checkpoints);
        buf.put_u64(self.compactions);
        buf.put_u64(self.total_rows);
        buf.put_u64(self.live_sessions);
        buf.put_u64(self.max_sessions);
        buf.put_u64(self.in_flight);
        buf.put_u64(self.max_in_flight);
        match self.follower_lag {
            None => buf.put_u8(0),
            Some(lag) => {
                buf.put_u8(1);
                buf.put_u64(lag);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<HealthReport, WireError> {
        if buf.remaining() < 1 + 8 * 10 + 1 {
            return Err(trunc());
        }
        let follower = buf.get_u8() != 0;
        let epoch = buf.get_u64();
        let wal_offset_bytes = buf.get_u64();
        let last_checkpoint_epoch = buf.get_u64();
        let checkpoints = buf.get_u64();
        let compactions = buf.get_u64();
        let total_rows = buf.get_u64();
        let live_sessions = buf.get_u64();
        let max_sessions = buf.get_u64();
        let in_flight = buf.get_u64();
        let max_in_flight = buf.get_u64();
        let follower_lag = match buf.get_u8() {
            0 => None,
            _ => {
                if buf.remaining() < 8 {
                    return Err(trunc());
                }
                Some(buf.get_u64())
            }
        };
        Ok(HealthReport {
            follower,
            epoch,
            wal_offset_bytes,
            last_checkpoint_epoch,
            checkpoints,
            compactions,
            total_rows,
            live_sessions,
            max_sessions,
            in_flight,
            max_in_flight,
            follower_lag,
        })
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

/// A server response; every result frame carries the epoch it was
/// computed at.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened, pinned at `epoch`.
    HelloOk {
        /// Server's protocol version.
        version: u16,
        /// The epoch this session is pinned at.
        epoch: u64,
    },
    /// A query result: the dataframe as of the session's pinned epoch.
    Frame {
        /// Epoch the result was computed at.
        epoch: u64,
        /// The result dataframe.
        df: DataFrame,
    },
    /// The session re-pinned to `epoch`.
    Pinned {
        /// New pinned epoch.
        epoch: u64,
    },
    /// Epoch report.
    Epochs {
        /// The session's pinned epoch.
        pinned: u64,
        /// The server's latest committed epoch.
        latest: u64,
    },
    /// A text body (metrics dumps).
    Text {
        /// The rendered body.
        body: String,
    },
    /// A typed failure; the connection stays up unless the error was a
    /// protocol violation.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Orderly goodbye.
    Bye,
    /// The server's liveness/readiness picture ([`Request::Health`]).
    Health(HealthReport),
    /// Recent completed traces, newest first ([`Request::Traces`]).
    Traces {
        /// The retrieved traces.
        traces: Vec<Trace>,
    },
    /// Recent slow-query records, newest first
    /// ([`Request::SlowQueries`]).
    SlowQueries {
        /// The retrieved records.
        records: Vec<SlowQueryRecord>,
    },
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Response::HelloOk { version, epoch } => {
                buf.put_u8(1);
                buf.put_u16(*version);
                buf.put_u64(*epoch);
            }
            Response::Frame { epoch, df } => {
                buf.put_u8(2);
                buf.put_u64(*epoch);
                encode_frame(df, &mut buf);
            }
            Response::Pinned { epoch } => {
                buf.put_u8(3);
                buf.put_u64(*epoch);
            }
            Response::Epochs { pinned, latest } => {
                buf.put_u8(4);
                buf.put_u64(*pinned);
                buf.put_u64(*latest);
            }
            Response::Text { body } => {
                buf.put_u8(5);
                put_str(&mut buf, body);
            }
            Response::Error { code, message } => {
                buf.put_u8(6);
                buf.put_u8(code.to_u8());
                put_str(&mut buf, message);
            }
            Response::Bye => buf.put_u8(7),
            Response::Health(report) => {
                buf.put_u8(8);
                report.encode(&mut buf);
            }
            Response::Traces { traces } => {
                buf.put_u8(9);
                buf.put_u32(traces.len() as u32);
                for t in traces {
                    encode_trace(t, &mut buf);
                }
            }
            Response::SlowQueries { records } => {
                buf.put_u8(10);
                buf.put_u32(records.len() as u32);
                for r in records {
                    encode_slow_query(r, &mut buf);
                }
            }
        }
        buf.freeze()
    }

    /// Decode a frame payload; trailing bytes are a protocol violation.
    pub fn decode(mut buf: Bytes) -> Result<Response, WireError> {
        if buf.remaining() < 1 {
            return Err(trunc());
        }
        let resp = match buf.get_u8() {
            1 => {
                if buf.remaining() < 10 {
                    return Err(trunc());
                }
                Response::HelloOk {
                    version: buf.get_u16(),
                    epoch: buf.get_u64(),
                }
            }
            2 => {
                if buf.remaining() < 8 {
                    return Err(trunc());
                }
                let epoch = buf.get_u64();
                Response::Frame {
                    epoch,
                    df: decode_frame(&mut buf)?,
                }
            }
            3 => {
                if buf.remaining() < 8 {
                    return Err(trunc());
                }
                Response::Pinned {
                    epoch: buf.get_u64(),
                }
            }
            4 => {
                if buf.remaining() < 16 {
                    return Err(trunc());
                }
                Response::Epochs {
                    pinned: buf.get_u64(),
                    latest: buf.get_u64(),
                }
            }
            5 => Response::Text {
                body: get_str(&mut buf)?,
            },
            6 => {
                if buf.remaining() < 1 {
                    return Err(trunc());
                }
                let code = ErrorCode::from_u8(buf.get_u8())?;
                Response::Error {
                    code,
                    message: get_str(&mut buf)?,
                }
            }
            7 => Response::Bye,
            8 => Response::Health(HealthReport::decode(&mut buf)?),
            9 => {
                let n = get_count(&mut buf)?;
                let mut traces = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    traces.push(decode_trace(&mut buf)?);
                }
                Response::Traces { traces }
            }
            10 => {
                let n = get_count(&mut buf)?;
                let mut records = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    records.push(decode_slow_query(&mut buf)?);
                }
                Response::SlowQueries { records }
            }
            k => return Err(WireError::UnknownKind(k)),
        };
        if buf.remaining() > 0 {
            return Err(malformed("trailing bytes after response"));
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------------- frame io

/// Write one `[len][crc][payload]` frame and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let mut head = [0u8; 12];
    head[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    head[4..].copy_from_slice(&fnv1a(payload).to_be_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, enforcing the size cap *before* allocating and the
/// checksum *before* returning the payload.
pub fn read_frame(r: &mut impl Read, max_bytes: u32) -> Result<Bytes, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > max_bytes {
        return Err(WireError::TooLarge {
            len,
            max: max_bytes,
        });
    }
    let mut crc_buf = [0u8; 8];
    r.read_exact(&mut crc_buf)?;
    let crc = u64::from_be_bytes(crc_buf);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if fnv1a(&payload) != crc {
        return Err(WireError::BadChecksum);
    }
    Ok(Bytes::from(payload))
}

// ------------------------------------------------------------- primitives

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    if buf.remaining() < 4 {
        return Err(trunc());
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(trunc());
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|e| malformed(e.to_string()))
}

fn cmp_to_u8(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from_u8(b: u8) -> Result<CmpOp, WireError> {
    Ok(match b {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        k => return Err(WireError::UnknownKind(k)),
    })
}

// ------------------------------------------------------------- query plan

fn encode_plan(plan: &QueryPlan, buf: &mut BytesMut) {
    buf.put_u32(plan.names.len() as u32);
    for n in &plan.names {
        put_str(buf, n);
    }
    buf.put_u32(plan.predicates.len() as u32);
    for p in &plan.predicates {
        put_str(buf, &p.col);
        buf.put_u8(cmp_to_u8(p.op));
        encode_value(&p.value, buf);
    }
    match &plan.latest_group {
        None => buf.put_u8(0),
        Some(group) => {
            buf.put_u8(1);
            buf.put_u32(group.len() as u32);
            for g in group {
                put_str(buf, g);
            }
        }
    }
    buf.put_u32(plan.order_by.len() as u32);
    for (col, asc) in &plan.order_by {
        put_str(buf, col);
        buf.put_u8(*asc as u8);
    }
    match plan.limit {
        None => buf.put_u8(0),
        Some(n) => {
            buf.put_u8(1);
            buf.put_u64(n as u64);
        }
    }
}

fn decode_plan(buf: &mut Bytes) -> Result<QueryPlan, WireError> {
    let mut plan = QueryPlan::new(&[]);
    let n_names = get_count(buf)?;
    for _ in 0..n_names {
        plan.names.push(get_str(buf)?);
    }
    let n_preds = get_count(buf)?;
    for _ in 0..n_preds {
        let col = get_str(buf)?;
        let op = {
            if buf.remaining() < 1 {
                return Err(trunc());
            }
            cmp_from_u8(buf.get_u8())?
        };
        let value = decode_value(buf)?;
        plan.predicates.push(Predicate { col, op, value });
    }
    if buf.remaining() < 1 {
        return Err(trunc());
    }
    if buf.get_u8() != 0 {
        let n = get_count(buf)?;
        let mut group = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            group.push(get_str(buf)?);
        }
        plan.latest_group = Some(group);
    }
    let n_order = get_count(buf)?;
    for _ in 0..n_order {
        let col = get_str(buf)?;
        if buf.remaining() < 1 {
            return Err(trunc());
        }
        plan.order_by.push((col, buf.get_u8() != 0));
    }
    if buf.remaining() < 1 {
        return Err(trunc());
    }
    if buf.get_u8() != 0 {
        if buf.remaining() < 8 {
            return Err(trunc());
        }
        plan.limit = Some(buf.get_u64() as usize);
    }
    Ok(plan)
}

fn get_count(buf: &mut Bytes) -> Result<usize, WireError> {
    if buf.remaining() < 4 {
        return Err(trunc());
    }
    Ok(buf.get_u32() as usize)
}

// ----------------------------------------------------------------- traces

fn encode_trace(t: &Trace, buf: &mut BytesMut) {
    buf.put_u64(t.id.0);
    put_str(buf, &t.label);
    put_str(buf, &t.detail);
    buf.put_u64(t.started_unix_micros);
    buf.put_u64(t.total_nanos);
    buf.put_u32(t.spans.len() as u32);
    for s in &t.spans {
        buf.put_u32(s.id.0);
        match s.parent {
            None => buf.put_u8(0),
            Some(p) => {
                buf.put_u8(1);
                buf.put_u32(p.0);
            }
        }
        put_str(buf, &s.name);
        buf.put_u64(s.start_nanos);
        buf.put_u64(s.duration_nanos);
        buf.put_u32(s.events.len() as u32);
        for e in &s.events {
            buf.put_u64(e.at_nanos);
            put_str(buf, &e.message);
        }
    }
}

fn decode_trace(buf: &mut Bytes) -> Result<Trace, WireError> {
    if buf.remaining() < 8 {
        return Err(trunc());
    }
    let id = TraceId(buf.get_u64());
    let label = get_str(buf)?;
    let detail = get_str(buf)?;
    if buf.remaining() < 16 {
        return Err(trunc());
    }
    let started_unix_micros = buf.get_u64();
    let total_nanos = buf.get_u64();
    let n_spans = get_count(buf)?;
    let mut spans = Vec::with_capacity(n_spans.min(1024));
    for _ in 0..n_spans {
        if buf.remaining() < 5 {
            return Err(trunc());
        }
        let id = SpanId(buf.get_u32());
        let parent = match buf.get_u8() {
            0 => None,
            _ => {
                if buf.remaining() < 4 {
                    return Err(trunc());
                }
                Some(SpanId(buf.get_u32()))
            }
        };
        let name = get_str(buf)?;
        if buf.remaining() < 16 {
            return Err(trunc());
        }
        let start_nanos = buf.get_u64();
        let duration_nanos = buf.get_u64();
        let n_events = get_count(buf)?;
        let mut events = Vec::with_capacity(n_events.min(1024));
        for _ in 0..n_events {
            if buf.remaining() < 8 {
                return Err(trunc());
            }
            let at_nanos = buf.get_u64();
            events.push(SpanEvent {
                at_nanos,
                message: get_str(buf)?,
            });
        }
        spans.push(TraceSpan {
            id,
            parent,
            name,
            start_nanos,
            duration_nanos,
            events,
        });
    }
    Ok(Trace {
        id,
        label,
        detail,
        started_unix_micros,
        total_nanos,
        spans,
    })
}

fn encode_slow_query(r: &SlowQueryRecord, buf: &mut BytesMut) {
    encode_trace(&r.trace, buf);
    put_str(buf, &r.verb);
    put_str(buf, &r.plan);
    put_str(buf, &r.explain);
    buf.put_u64(r.total_nanos);
    buf.put_u64(r.threshold_nanos);
    buf.put_u64(r.at_unix_micros);
}

fn decode_slow_query(buf: &mut Bytes) -> Result<SlowQueryRecord, WireError> {
    let trace = decode_trace(buf)?;
    let verb = get_str(buf)?;
    let plan = get_str(buf)?;
    let explain = get_str(buf)?;
    if buf.remaining() < 24 {
        return Err(trunc());
    }
    Ok(SlowQueryRecord {
        trace,
        verb,
        plan,
        explain,
        total_nanos: buf.get_u64(),
        threshold_nanos: buf.get_u64(),
        at_unix_micros: buf.get_u64(),
    })
}

// -------------------------------------------------------------- dataframe

/// Encode a dataframe column-by-column with the store's value codec, so
/// two servers at the same epoch produce byte-identical frames.
fn encode_frame(df: &DataFrame, buf: &mut BytesMut) {
    buf.put_u32(df.columns().len() as u32);
    for col in df.columns() {
        put_str(buf, &col.name);
        buf.put_u32(col.values.len() as u32);
        for v in &col.values {
            encode_value(v, buf);
        }
    }
}

fn decode_frame(buf: &mut Bytes) -> Result<DataFrame, WireError> {
    let n_cols = get_count(buf)?;
    let mut cols = Vec::with_capacity(n_cols.min(1024));
    for _ in 0..n_cols {
        let name = get_str(buf)?;
        let n_rows = get_count(buf)?;
        let mut values: Vec<Value> = Vec::with_capacity(n_rows.min(4096));
        for _ in 0..n_rows {
            values.push(decode_value(buf)?);
        }
        cols.push(Column::new(name, values));
    }
    DataFrame::from_columns(cols).map_err(|e| malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let decoded = Request::decode(req.encode()).expect("decode");
        assert_eq!(decoded, req);
    }

    fn roundtrip_resp(resp: Response) {
        let decoded = Response::decode(resp.encode()).expect("decode");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
            token: None,
        });
        roundtrip_req(Request::Hello {
            version: 9,
            token: Some("s3cret".into()),
        });
        let plan = QueryPlan::with_latest(&["loss", "acc"], &["filename"])
            .filter("tstamp", CmpOp::Ge, 3i64)
            .filter("loss", CmpOp::Lt, 0.5f64);
        let mut plan = plan;
        plan.order_by.push(("tstamp".into(), false));
        plan.limit = Some(10);
        roundtrip_req(Request::Query { plan });
        roundtrip_req(Request::Pin);
        roundtrip_req(Request::Epoch);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::MetricsPrometheus);
        roundtrip_req(Request::Close);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::HelloOk {
            version: 1,
            epoch: 42,
        });
        let df = DataFrame::from_rows(
            vec!["a", "b"],
            vec![
                vec![Value::Int(1), Value::from("x")],
                vec![Value::Null, Value::Float(2.5)],
            ],
        )
        .expect("frame");
        roundtrip_resp(Response::Frame { epoch: 7, df });
        roundtrip_resp(Response::Pinned { epoch: 3 });
        roundtrip_resp(Response::Epochs {
            pinned: 3,
            latest: 9,
        });
        roundtrip_resp(Response::Text {
            body: "# TYPE x counter\nx 1\n".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::RateLimited,
            message: "slow down".into(),
        });
        roundtrip_resp(Response::Bye);
    }

    fn sample_trace() -> Trace {
        Trace {
            id: TraceId(0xdead_beef),
            label: "query".into(),
            detail: "session 3 peer 127.0.0.1:9".into(),
            started_unix_micros: 1_700_000_000_000_000,
            total_nanos: 123_456,
            spans: vec![
                TraceSpan {
                    id: SpanId(0),
                    parent: None,
                    name: "request".into(),
                    start_nanos: 0,
                    duration_nanos: 123_000,
                    events: vec![],
                },
                TraceSpan {
                    id: SpanId(1),
                    parent: Some(SpanId(0)),
                    name: "store.scan".into(),
                    start_nanos: 10,
                    duration_nanos: 99,
                    events: vec![SpanEvent {
                        at_nanos: 12,
                        message: "access=index-in(value_name)".into(),
                    }],
                },
            ],
        }
    }

    #[test]
    fn ops_requests_roundtrip() {
        roundtrip_req(Request::Health);
        roundtrip_req(Request::Traces { limit: 16 });
        roundtrip_req(Request::SlowQueries { limit: 0 });
        roundtrip_req(Request::Traced {
            trace: TraceId(42),
            inner: Box::new(Request::Query {
                plan: QueryPlan::new(&["loss"]),
            }),
        });
        roundtrip_req(Request::Traced {
            trace: TraceId(7),
            inner: Box::new(Request::Pin),
        });
    }

    #[test]
    fn nested_trace_context_is_rejected() {
        let inner = Request::Traced {
            trace: TraceId(1),
            inner: Box::new(Request::Pin),
        };
        let bad = Request::Traced {
            trace: TraceId(2),
            inner: Box::new(inner),
        };
        assert!(Request::decode(bad.encode()).is_err());
    }

    #[test]
    fn ops_responses_roundtrip() {
        roundtrip_resp(Response::Health(HealthReport {
            follower: true,
            epoch: 9,
            wal_offset_bytes: 4096,
            last_checkpoint_epoch: 5,
            checkpoints: 2,
            compactions: 1,
            total_rows: 1234,
            live_sessions: 3,
            max_sessions: 32,
            in_flight: 1,
            max_in_flight: 8,
            follower_lag: Some(4),
        }));
        roundtrip_resp(Response::Health(HealthReport {
            follower: false,
            epoch: 0,
            wal_offset_bytes: 0,
            last_checkpoint_epoch: 0,
            checkpoints: 0,
            compactions: 0,
            total_rows: 0,
            live_sessions: 0,
            max_sessions: 0,
            in_flight: 0,
            max_in_flight: 0,
            follower_lag: None,
        }));
        roundtrip_resp(Response::Traces {
            traces: vec![sample_trace(), sample_trace()],
        });
        roundtrip_resp(Response::Traces { traces: vec![] });
        roundtrip_resp(Response::SlowQueries {
            records: vec![SlowQueryRecord {
                trace: sample_trace(),
                verb: "query".into(),
                plan: "[\"loss\"]".into(),
                explain: "QUERY logs via index-in(value_name)\n  rows: 3".into(),
                total_nanos: 5_000_000,
                threshold_nanos: 1_000_000,
                at_unix_micros: 1_700_000_000_000_001,
            }],
        });
    }

    #[test]
    fn truncated_ops_payloads_yield_typed_errors() {
        let traced = Request::Traced {
            trace: TraceId(3),
            inner: Box::new(Request::Query {
                plan: QueryPlan::new(&["loss"]).filter("tstamp", CmpOp::Ge, 1i64),
            }),
        }
        .encode();
        for cut in 0..traced.len() {
            assert!(
                Request::decode(traced.slice(..cut)).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let resp = Response::Traces {
            traces: vec![sample_trace()],
        }
        .encode();
        for cut in 0..resp.len() {
            assert!(
                Response::decode(resp.slice(..cut)).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn frame_io_roundtrips_and_checks_crc() {
        let payload = Request::Pin.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let got = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES).expect("read");
        assert_eq!(got, payload);

        // Flip one payload byte: the checksum must catch it.
        let mut corrupt = wire.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert!(matches!(
            read_frame(&mut corrupt.as_slice(), DEFAULT_MAX_FRAME_BYTES),
            Err(WireError::BadChecksum)
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(&0u64.to_be_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(WireError::TooLarge { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn truncated_payloads_yield_typed_errors() {
        // Every prefix of a valid encoding must fail cleanly, not panic.
        let plan =
            QueryPlan::with_latest(&["loss"], &["filename"]).filter("tstamp", CmpOp::Ge, 3i64);
        let full = Request::Query { plan }.encode();
        for cut in 0..full.len() {
            let res = Request::decode(full.slice(..cut));
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
        // And trailing garbage is rejected too.
        let mut extended = BytesMut::new();
        extended.put_slice(&full);
        extended.put_u8(0);
        assert!(Request::decode(extended.freeze()).is_err());
    }

    #[test]
    fn unknown_kind_is_typed() {
        let mut buf = BytesMut::new();
        buf.put_u8(200);
        assert!(matches!(
            Request::decode(buf.freeze()),
            Err(WireError::UnknownKind(200))
        ));
    }
}
