//! # flor-serve — a multi-client dataframe server over FlorDB
//!
//! The paper's deployments put many readers (dashboards, notebooks,
//! pipeline stages) behind one FlorDB instance. This crate is that
//! serving layer: a session-oriented, length-prefixed wire protocol
//! over TCP — std-only, thread-per-connection with a bounded accept
//! pool — where concurrent clients open sessions, submit serialized
//! [`flor_view::QueryPlan`]s, and receive dataframe result frames.
//!
//! The core guarantee: **every request is served from a pinned
//! snapshot**. A session pins the current epoch at handshake
//! ([`flor_store::Database::pin`] — O(1), lock-free) and all its queries
//! execute at exactly that epoch via [`Flor::run_plan_at`], so results
//! are repeatable and byte-identical to a local `collect_full` at the
//! same epoch, no matter how many commits land while the session is
//! open. `Pin` re-pins on demand.
//!
//! * [`protocol`] — the frame codec: versioned `Hello`, typed
//!   request/response enums, CRC-guarded `[len][crc][payload]` frames
//!   reusing the store's value codec;
//! * [`session`] — per-connection pinned-snapshot state plus the global
//!   in-flight admission [`session::Gate`];
//! * [`middleware`] — composable hooks: [`middleware::AuthToken`],
//!   per-session [`middleware::RateLimit`], and
//!   [`middleware::RequestLog`] recording into `flor-obs` (whose
//!   Prometheus rendering the `MetricsPrometheus` verb scrapes);
//! * [`server`] — the blocking accept loop and [`server::ServerHandle`];
//! * [`client`] — the blocking [`client::Client`].
//!
//! **Observability.** The server is traceable end to end. A client can
//! originate a trace context ([`client::Client::query_traced`] wraps the
//! query in [`protocol::Request::Traced`]); the server then records a
//! hierarchical [`flor_obs::Trace`] — middleware verdicts, gate
//! admission, plan execution down to the store scan with zone-map
//! pruning counts — into the served registry's
//! [`flor_obs::TraceStore`], retrievable over the wire with the
//! `Traces` verb. Requests that exceed the registry's slow-query
//! threshold are captured with their full explain report (`SlowQueries`
//! verb), and the `Health` verb answers a [`protocol::HealthReport`]:
//! epoch, WAL position, checkpoint/compaction counts, session and
//! in-flight occupancy, and — on a follower — the estimated replication
//! lag in pending commits. All of it is off by default and costs two
//! atomic loads per request until enabled.
//!
//! **Read-only followers.** Because the protocol is read-only, a second
//! process can serve the same data: open the writer's WAL with
//! [`Flor::open_follower`] and serve it — the server notices the
//! follower handle and runs a poll loop ([`Flor::poll_follower`]) that
//! tails newly committed transactions, bounding staleness by
//! [`ServerConfig::follower_poll`]. Any write attempt on a follower
//! answers a typed `ReadOnly`/`Internal` error.
//!
//! ```no_run
//! use flor_core::Flor;
//! use flor_serve::{Client, ServeExt, ServerConfig};
//! use flor_view::QueryPlan;
//!
//! let flor = Flor::new("demo");
//! flor.set_filename("train.fl");
//! flor.log("loss", 0.5);
//! flor.commit("run").unwrap();
//!
//! let handle = flor.serve("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr(), None).unwrap();
//! let (epoch, df) = client.query(&QueryPlan::new(&["loss"])).unwrap();
//! assert_eq!(df.n_rows(), 1);
//! assert!(epoch >= 1);
//! handle.stop();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod middleware;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, ServeError};
pub use middleware::{AuthToken, Middleware, RateLimit, RequestLog};
pub use protocol::{
    ErrorCode, HealthReport, Request, Response, WireError, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{Gate, GatePermit, Session};

use flor_core::Flor;

/// Extension trait putting `serve` directly on [`Flor`].
pub trait ServeExt {
    /// Bind `addr` and serve this instance on a background thread (no
    /// middleware; use [`Server::bind`] + [`Server::with_middleware`]
    /// for a custom stack).
    fn serve(&self, addr: &str, cfg: ServerConfig) -> std::io::Result<ServerHandle>;
}

impl ServeExt for Flor {
    fn serve(&self, addr: &str, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        Server::bind(self.clone(), addr, cfg)?.spawn()
    }
}
