//! Composable server middleware: auth, per-session admission, request
//! logging into `flor-obs`.
//!
//! A [`Middleware`] sees every request before it executes and every
//! response after. `on_request` can veto with a ready-made
//! [`Response::Error`] — the server sends it and (for auth failures)
//! drops the connection; execution never starts. Middlewares compose as
//! an ordered stack: the first veto wins, and `on_response` runs for
//! every layer.

use crate::protocol::{ErrorCode, Request, Response};
use crate::session::Session;
use flor_obs::{Counter, Histogram, MetricsRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A server hook. Implement one or both methods.
pub trait Middleware: Send + Sync {
    /// A short stable name used in trace span events ("auth: ok",
    /// "rate-limit: veto", ...).
    fn name(&self) -> &'static str {
        "middleware"
    }

    /// Inspect a request before execution; `Err` short-circuits with
    /// that response.
    fn on_request(&self, _session: &Session, _req: &Request) -> Result<(), Response> {
        Ok(())
    }

    /// Observe a completed request and its response.
    fn on_response(
        &self,
        _session: &Session,
        _req: &Request,
        _resp: &Response,
        _elapsed: Duration,
    ) {
    }
}

/// Require a shared-secret token on `Hello`; sessions that presented the
/// wrong (or no) token are refused with [`ErrorCode::Unauthorized`] and
/// disconnected.
#[derive(Debug)]
pub struct AuthToken {
    expected: String,
}

impl AuthToken {
    /// Demand `token` on every handshake.
    pub fn new(token: impl Into<String>) -> AuthToken {
        AuthToken {
            expected: token.into(),
        }
    }
}

impl Middleware for AuthToken {
    fn name(&self) -> &'static str {
        "auth"
    }

    fn on_request(&self, session: &Session, req: &Request) -> Result<(), Response> {
        match req {
            Request::Hello { token, .. } => {
                if token.as_deref() == Some(self.expected.as_str()) {
                    Ok(())
                } else {
                    Err(Response::Error {
                        code: ErrorCode::Unauthorized,
                        message: "bad or missing auth token".into(),
                    })
                }
            }
            // The server refuses non-Hello requests before the handshake,
            // so an authed session here is the normal case.
            _ if session.authed => Ok(()),
            _ => Err(Response::Error {
                code: ErrorCode::Unauthorized,
                message: "handshake required".into(),
            }),
        }
    }
}

/// Per-session token-bucket admission: each session may burst up to
/// `capacity` requests, refilled at `per_sec` per second; excess gets
/// [`ErrorCode::RateLimited`] (the connection stays up — the client is
/// expected to back off and retry).
#[derive(Debug)]
pub struct RateLimit {
    capacity: f64,
    per_sec: f64,
    buckets: Mutex<HashMap<u64, (f64, Instant)>>,
}

impl RateLimit {
    /// Allow bursts of `capacity`, refilling `per_sec` tokens per second.
    pub fn new(capacity: u32, per_sec: u32) -> RateLimit {
        RateLimit {
            capacity: capacity as f64,
            per_sec: per_sec as f64,
            buckets: Mutex::new(HashMap::new()),
        }
    }
}

impl Middleware for RateLimit {
    fn name(&self) -> &'static str {
        "rate-limit"
    }

    fn on_request(&self, session: &Session, req: &Request) -> Result<(), Response> {
        // The handshake itself is admitted free; it is already bounded by
        // the accept pool.
        if matches!(req, Request::Hello { .. }) {
            return Ok(());
        }
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let (tokens, last) = buckets.entry(session.id).or_insert((self.capacity, now));
        *tokens =
            (*tokens + now.duration_since(*last).as_secs_f64() * self.per_sec).min(self.capacity);
        *last = now;
        if *tokens < 1.0 {
            return Err(Response::Error {
                code: ErrorCode::RateLimited,
                message: "per-session rate limit exceeded; retry later".into(),
            });
        }
        *tokens -= 1.0;
        Ok(())
    }
}

/// Record every request into a [`MetricsRegistry`] (normally the one the
/// served `Flor` already writes to, so server traffic shows up next to
/// store/job/view metrics and in the Prometheus scrape):
///
/// * `serve.requests` / `serve.errors` — counters;
/// * `serve.request.nanos` — whole-request latency histogram;
/// * `serve.verb.<verb>` — per-verb counters;
/// * a `serve.error` event per error response, carrying the code.
pub struct RequestLog {
    registry: MetricsRegistry,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    nanos: Arc<Histogram>,
}

impl RequestLog {
    /// Log into `registry`.
    pub fn new(registry: MetricsRegistry) -> RequestLog {
        RequestLog {
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            nanos: registry.histogram("serve.request.nanos"),
            registry,
        }
    }
}

impl Middleware for RequestLog {
    fn name(&self) -> &'static str {
        "request-log"
    }

    fn on_response(&self, session: &Session, req: &Request, resp: &Response, elapsed: Duration) {
        self.requests.inc();
        self.nanos
            .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        self.registry
            .counter(&format!("serve.verb.{}", req.verb()))
            .inc();
        if let Response::Error { code, message } = resp {
            self.errors.inc();
            self.registry.event_at(
                flor_obs::Level::Warn,
                "serve.error",
                format!("session {} {}: {code} {message}", session.id, req.verb()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_store::Database;

    fn session() -> Session {
        let db = Database::in_memory(flor_store::flor_schema());
        Session::new(1, "test".into(), db.pin())
    }

    #[test]
    fn auth_token_validates_hello() {
        let mw = AuthToken::new("s3cret");
        let sess = session();
        let ok = Request::Hello {
            version: 1,
            token: Some("s3cret".into()),
        };
        assert!(mw.on_request(&sess, &ok).is_ok());
        let bad = Request::Hello {
            version: 1,
            token: Some("nope".into()),
        };
        assert!(matches!(
            mw.on_request(&sess, &bad),
            Err(Response::Error {
                code: ErrorCode::Unauthorized,
                ..
            })
        ));
        let missing = Request::Hello {
            version: 1,
            token: None,
        };
        assert!(mw.on_request(&sess, &missing).is_err());
    }

    #[test]
    fn rate_limit_refuses_past_burst() {
        let mw = RateLimit::new(3, 1);
        let sess = session();
        for _ in 0..3 {
            assert!(mw.on_request(&sess, &Request::Pin).is_ok());
        }
        assert!(matches!(
            mw.on_request(&sess, &Request::Pin),
            Err(Response::Error {
                code: ErrorCode::RateLimited,
                ..
            })
        ));
        // A different session has its own bucket.
        let db = Database::in_memory(flor_store::flor_schema());
        let other = Session::new(2, "test".into(), db.pin());
        assert!(mw.on_request(&other, &Request::Pin).is_ok());
    }

    #[test]
    fn request_log_counts_and_classifies() {
        let reg = MetricsRegistry::new();
        let mw = RequestLog::new(reg.clone());
        let sess = session();
        mw.on_response(
            &sess,
            &Request::Pin,
            &Response::Pinned { epoch: 1 },
            Duration::from_micros(5),
        );
        mw.on_response(
            &sess,
            &Request::Epoch,
            &Response::Error {
                code: ErrorCode::Busy,
                message: "full".into(),
            },
            Duration::from_micros(5),
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(2));
        assert_eq!(snap.counter("serve.errors"), Some(1));
        assert_eq!(snap.counter("serve.verb.pin"), Some(1));
        assert_eq!(snap.histogram("serve.request.nanos").unwrap().count, 2);
        assert!(snap.events.iter().any(|e| e.kind == "serve.error"));
    }
}
