//! Protocol robustness: malformed, truncated and oversized frames must
//! produce a typed error response and drop *only* the offending
//! connection — a concurrent well-behaved session keeps working and the
//! server never panics (it keeps accepting afterwards).

use flor_core::Flor;
use flor_serve::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
use flor_serve::{
    AuthToken, Client, ErrorCode, Request, Response, ServeError, Server, ServerConfig,
};
use flor_view::QueryPlan;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn served_flor() -> Flor {
    let flor = Flor::new("robustness");
    flor.set_filename("r.fl");
    flor.log("loss", 0.5);
    flor.commit("seed").expect("commit");
    flor
}

/// Raw hello, returning the connected stream past the handshake.
fn raw_hello(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let hello = Request::Hello {
        version: flor_serve::PROTOCOL_VERSION,
        token: None,
    };
    write_frame(&mut stream, &hello.encode()).expect("hello");
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("hello-ok frame");
    assert!(matches!(
        Response::decode(payload),
        Ok(Response::HelloOk { .. })
    ));
    stream
}

/// Expect a typed error response, then EOF (the server hung up).
fn expect_error_then_eof(stream: &mut TcpStream, expect_code: ErrorCode) {
    let payload = read_frame(stream, DEFAULT_MAX_FRAME_BYTES).expect("error frame");
    match Response::decode(payload).expect("decodable error") {
        Response::Error { code, .. } => assert_eq!(code, expect_code),
        other => panic!("expected error response, got {other:?}"),
    }
    let mut rest = [0u8; 1];
    match stream.read(&mut rest) {
        Ok(0) => {}
        Ok(_) => panic!("server kept the connection open after a protocol violation"),
        // A reset is also an acceptable hangup.
        Err(_) => {}
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_only_that_connection_drops() {
    let flor = served_flor();
    let server = Server::bind(flor.clone(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    // A well-behaved session that must survive every abuse below.
    let mut good = Client::connect(addr, None).expect("good client");
    let plan = QueryPlan::new(&["loss"]);
    let (_, df) = good.query(&plan).expect("baseline query");
    assert_eq!(df.n_rows(), 1);

    // 1. Garbage payload with a valid header+CRC: unknown kind.
    {
        let mut s = raw_hello(addr);
        write_frame(&mut s, &[0xde, 0xad, 0xbe, 0xef]).expect("garbage");
        expect_error_then_eof(&mut s, ErrorCode::BadRequest);
    }

    // 2. Corrupted payload (CRC mismatch).
    {
        let mut s = raw_hello(addr);
        let payload = Request::Pin.encode();
        let mut head = [0u8; 12];
        head[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
        head[4..].copy_from_slice(&0xbad0_bad0_bad0_bad0u64.to_be_bytes());
        s.write_all(&head).expect("head");
        s.write_all(&payload).expect("payload");
        expect_error_then_eof(&mut s, ErrorCode::BadRequest);
    }

    // 3. Truncated request body (announced length honest, body short).
    {
        let mut s = raw_hello(addr);
        // A Query kind byte with no plan behind it.
        write_frame(&mut s, &[2u8]).expect("truncated query");
        expect_error_then_eof(&mut s, ErrorCode::BadRequest);
    }

    // 4. Oversized frame header: rejected before allocation.
    {
        let mut s = raw_hello(addr);
        let mut head = [0u8; 12];
        head[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        s.write_all(&head).expect("huge header");
        expect_error_then_eof(&mut s, ErrorCode::BadRequest);
    }

    // 5. Non-hello first request.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        write_frame(&mut s, &Request::Pin.encode()).expect("pin first");
        expect_error_then_eof(&mut s, ErrorCode::BadRequest);
    }

    // 6. Wrong protocol version.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let hello = Request::Hello {
            version: 999,
            token: None,
        };
        write_frame(&mut s, &hello.encode()).expect("hello");
        expect_error_then_eof(&mut s, ErrorCode::BadRequest);
    }

    // Through all of it, the good session kept its pin and the server
    // kept accepting.
    let (_, df) = good.query(&plan).expect("query after abuse");
    assert_eq!(df.n_rows(), 1);
    let mut fresh = Client::connect(addr, None).expect("fresh client");
    fresh.pin().expect("fresh pin");
    fresh.close().expect("close");
    good.close().expect("close");
    handle.stop();
}

#[test]
fn auth_token_gate_refuses_bad_handshakes() {
    let flor = served_flor();
    let server = Server::bind(flor, "127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .with_middleware(Arc::new(AuthToken::new("s3cret")));
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    match Client::connect(addr, None) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Unauthorized),
        other => panic!("tokenless connect must be refused, got {other:?}"),
    }
    match Client::connect(addr, Some("wrong")) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Unauthorized),
        other => panic!("wrong token must be refused, got {other:?}"),
    }
    let mut ok = Client::connect(addr, Some("s3cret")).expect("right token");
    ok.pin().expect("pin");
    ok.close().expect("close");
    handle.stop();
}

#[test]
fn session_pool_overflow_answers_busy() {
    let flor = served_flor();
    let cfg = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind(flor, "127.0.0.1:0", cfg).expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    let a = Client::connect(addr, None).expect("first");
    let b = Client::connect(addr, None).expect("second");
    match Client::connect(addr, None) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        other => panic!("third session must be refused busy, got {other:?}"),
    }
    a.close().expect("close a");
    // The freed slot becomes available again (allow a beat for the
    // handler thread to decrement).
    let mut again = None;
    for _ in 0..100 {
        match Client::connect(addr, None) {
            Ok(c) => {
                again = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    again.expect("slot never freed").close().expect("close");
    b.close().expect("close b");
    handle.stop();
}
