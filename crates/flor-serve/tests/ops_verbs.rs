//! The ops surface end to end: `Health` on writer and follower,
//! client-originated trace contexts with retrievable span trees,
//! slow-query capture with the full explain report, and back-compat —
//! an old-style client that never sends the new verbs keeps working
//! unchanged while tracing is on.

use flor_core::Flor;
use flor_serve::{Client, RequestLog, ServeExt, Server, ServerConfig};
use flor_view::QueryPlan;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn traced_queries_health_and_slow_capture_on_writer() {
    let flor = Flor::new("ops-writer");
    flor.set_filename("train.fl");
    for step in 0..8 {
        flor.log("loss", 1.0 / (step + 1) as f64);
        flor.log("acc", step as f64 / 8.0);
        flor.commit(&format!("step {step}")).expect("commit");
    }

    // Tracing on, slow threshold at zero so every query is "slow".
    flor.set_tracing(true);
    flor.set_slow_query_threshold(Some(Duration::ZERO));

    let registry = flor.metrics_registry();
    let server = Server::bind(flor.clone(), "127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .with_middleware(Arc::new(RequestLog::new(registry.clone())));
    let handle = server.spawn().expect("spawn");

    let mut client = Client::connect(handle.addr(), None).expect("connect");
    let plan = QueryPlan::new(&["loss", "acc"]);

    // Old-style path first: a plain query must behave exactly as before
    // even though tracing and slow capture are armed server-side.
    let (_, plain_df) = client.query(&plan).expect("plain query");
    assert_eq!(plain_df.n_rows(), 8);

    // Client-originated trace context: same bytes back, plus a
    // retrievable trace carrying the request anatomy.
    let (trace_id, _, traced_df) = client.query_traced(&plan).expect("traced query");
    assert_eq!(
        format!("{traced_df:?}"),
        format!("{plain_df:?}"),
        "trace context changed the result"
    );

    let trace = client
        .trace(trace_id)
        .expect("traces verb")
        .expect("originated trace must be retrievable");
    assert_eq!(trace.id, trace_id);
    for span in [
        "request",
        "middleware",
        "gate",
        "execute",
        "store.scan",
        "pivot",
    ] {
        assert!(
            trace.span(span).is_some(),
            "trace missing span `{span}`:\n{trace}"
        );
    }
    let rendered = trace.render_text();
    assert!(
        rendered.contains("request-log: ok"),
        "middleware verdict event missing:\n{rendered}"
    );
    assert!(
        rendered.contains("admitted"),
        "gate admission event missing:\n{rendered}"
    );
    assert!(
        rendered.contains("access="),
        "store-scan access-path event missing:\n{rendered}"
    );

    // The plain query ran under a server-generated trace too.
    assert!(client.traces(16).expect("traces").len() >= 2);

    // Slow capture: threshold zero means both queries breached; records
    // carry the full explain report.
    let slow = client.slow_queries(16).expect("slow queries");
    assert!(
        slow.len() >= 2,
        "expected both queries captured, got {}",
        slow.len()
    );
    let rec = &slow[0];
    assert_eq!(rec.verb, "query");
    assert!(
        rec.plan.contains("loss"),
        "plan names missing: {}",
        rec.plan
    );
    assert!(
        rec.explain.contains("QUERY logs"),
        "explain report missing from slow capture: {:?}",
        rec.explain
    );
    assert_eq!(rec.threshold_nanos, 0);
    assert!(rec.total_nanos > 0);

    // Health on the writer: no follower lag, occupancy visible.
    let health = client.health().expect("health");
    assert!(!health.follower);
    assert_eq!(health.follower_lag, None);
    assert!(health.epoch >= 8);
    assert!(
        health.total_rows >= 16,
        "16 logged values plus context rows"
    );
    assert_eq!(health.live_sessions, 1);
    assert!(health.max_sessions >= 1);
    assert!(health.render_text().contains("health: writer"));

    // Disarm and the rings stop growing, old client still fine.
    flor.set_tracing(false);
    flor.set_slow_query_threshold(None);
    let before = client.traces(64).expect("traces").len();
    let slow_before = client.slow_queries(64).expect("slow").len();
    client.query(&plan).expect("query after disarm");
    assert_eq!(client.traces(64).expect("traces").len(), before);
    assert_eq!(client.slow_queries(64).expect("slow").len(), slow_before);

    client.close().expect("close");
    handle.stop();
}

#[test]
fn health_on_follower_reports_replication_lag() {
    let dir = std::env::temp_dir().join(format!("flor-ops-health-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("writer.wal");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("writer.wal.ckpt"));

    let writer = Flor::open("ops-follower", &path).expect("open writer");
    writer.set_filename("train.fl");
    writer.log("loss", 0.9);
    writer.commit("seed").expect("commit");

    let follower = Flor::open_follower("ops-follower", &path).expect("open follower");
    // A poll interval far beyond the test's lifetime: the follower stays
    // deliberately stale so pending commits are observable as lag.
    let cfg = ServerConfig {
        follower_poll: Duration::from_secs(3600),
        ..ServerConfig::default()
    };
    let handle = follower.serve("127.0.0.1:0", cfg).expect("serve follower");
    let mut client = Client::connect(handle.addr(), None).expect("connect");

    let health = client.health().expect("health while caught up");
    assert!(health.follower);
    let caught_up = health
        .follower_lag
        .expect("lag must be known on a live tail");
    assert_eq!(caught_up, 0, "no pending commits yet");

    // Land commits the follower has not applied: lag counts them.
    for round in 0..3 {
        writer.log("loss", 0.5 / (round + 1) as f64);
        writer.commit(&format!("round {round}")).expect("commit");
    }
    let health = client.health().expect("health while lagging");
    assert_eq!(health.follower_lag, Some(3), "three unapplied commits");
    assert!(health
        .render_text()
        .contains("follower lag: 3 commit(s) behind"));

    client.close().expect("close");
    handle.stop();

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("writer.wal.ckpt"));
    let _ = std::fs::remove_dir(&dir);
}
