//! The flor-serve acceptance test: N concurrent client sessions query a
//! server whose underlying `Flor` is being committed to the whole time.
//! Every response must be **byte-identical** (compared on the encoded
//! wire frame) to a local [`Flor::run_plan_at`] against the snapshot
//! pinned at the session's epoch — the snapshot-per-request guarantee.

use flor_core::Flor;
use flor_serve::{Client, Response, ServeExt, ServerConfig};
use flor_store::{CmpOp, Snapshot};
use flor_view::QueryPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 12;
const WRITER_ROUNDS: usize = 40;

/// The oracle: one pinned snapshot per epoch, recorded by the writer
/// thread immediately after each commit (it is the sole committer, so
/// the epoch is stable until its own next commit).
type EpochMap = Arc<Mutex<HashMap<u64, Snapshot>>>;

fn record_epoch(map: &EpochMap, flor: &Flor) {
    let snap = flor.db.pin();
    map.lock().unwrap().insert(snap.epoch(), snap);
}

/// Wait for the writer to record the oracle snapshot for `epoch` (the
/// server can pin an epoch a beat before the writer's map insert lands).
fn snapshot_at(map: &EpochMap, epoch: u64) -> Snapshot {
    for _ in 0..2000 {
        if let Some(s) = map.lock().unwrap().get(&epoch) {
            return s.clone();
        }
        thread::sleep(Duration::from_micros(200));
    }
    panic!("no oracle snapshot recorded for epoch {epoch}");
}

fn plans() -> Vec<QueryPlan> {
    let mut ordered = QueryPlan::new(&["loss", "acc"]);
    ordered.order_by.push(("tstamp".to_string(), false));
    ordered.limit = Some(5);
    vec![
        QueryPlan::new(&["loss"]),
        QueryPlan::new(&["loss", "acc"]),
        QueryPlan::with_latest(&["loss", "acc"], &["filename"]),
        QueryPlan::new(&["loss", "acc"]).filter("tstamp", CmpOp::Ge, 3i64),
        ordered,
    ]
}

#[test]
fn concurrent_sessions_see_pinned_epochs_byte_identically() {
    let flor = Flor::new("serve-sessions");
    flor.set_filename("train.fl");
    flor.log("loss", 1.0);
    flor.log("acc", 0.1);
    flor.commit("seed").expect("seed commit");

    let map: EpochMap = Arc::new(Mutex::new(HashMap::new()));
    record_epoch(&map, &flor);

    let handle = flor
        .serve("127.0.0.1:0", ServerConfig::default())
        .expect("serve");
    let addr = handle.addr();

    // Committing writer, running underneath the whole query barrage.
    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let flor = flor.clone();
        let map = Arc::clone(&map);
        let done = Arc::clone(&writer_done);
        thread::spawn(move || {
            for round in 0..WRITER_ROUNDS {
                flor.log("loss", 1.0 / (round + 2) as f64);
                flor.log("acc", round as f64 / WRITER_ROUNDS as f64);
                flor.commit(&format!("round {round}")).expect("commit");
                record_epoch(&map, &flor);
                thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::Release);
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let flor = flor.clone();
            let map = Arc::clone(&map);
            thread::spawn(move || {
                let mut client = Client::connect(addr, None).expect("connect");
                let plans = plans();
                for q in 0..QUERIES_PER_CLIENT {
                    // Re-pin partway through so sessions exercise both a
                    // stale pin under churn and a fresh one.
                    if q == QUERIES_PER_CLIENT / 2 {
                        client.pin().expect("pin");
                    }
                    let plan = &plans[(c + q) % plans.len()];
                    let (epoch, df) = client.query(plan).expect("query");
                    assert_eq!(
                        epoch,
                        client.epoch(),
                        "response epoch drifted from the session pin"
                    );
                    let oracle_snap = snapshot_at(&map, epoch);
                    let oracle = flor
                        .run_plan_at(&oracle_snap, plan)
                        .expect("local run_plan_at");
                    // Byte-identical: compare the encoded wire frames.
                    let got = Response::Frame { epoch, df }.encode();
                    let want = Response::Frame { epoch, df: oracle }.encode();
                    assert_eq!(got, want, "client {c} query {q} diverged at epoch {epoch}");
                    thread::sleep(Duration::from_micros(500));
                }
                let (pinned, latest) = client.epochs().expect("epochs");
                assert!(latest >= pinned);
                client.close().expect("close");
            })
        })
        .collect();

    for c in clients {
        c.join().expect("client thread");
    }
    writer.join().expect("writer thread");
    assert!(writer_done.load(Ordering::Acquire));
    handle.stop();
}

#[test]
fn metrics_verbs_serve_both_renderings() {
    let flor = Flor::new("serve-metrics");
    flor.set_filename("m.fl");
    flor.log("loss", 0.5);
    flor.commit("seed").expect("commit");

    let handle = flor
        .serve("127.0.0.1:0", ServerConfig::default())
        .expect("serve");
    let mut client = Client::connect(handle.addr(), None).expect("connect");

    let text = client.metrics_text().expect("metrics");
    assert!(text.contains("store.commit.nanos"));

    let prom = client.metrics_prometheus().expect("prometheus");
    assert!(prom.contains("# TYPE store_commit_nanos histogram"));
    assert!(prom.contains("store_commit_nanos_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("# TYPE store_commit_rows_total counter"));

    client.close().expect("close");
    handle.stop();
}
