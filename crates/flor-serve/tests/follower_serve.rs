//! Read-only follower serving: a second `Flor` handle opened with
//! [`Flor::open_follower`] over the writer's WAL serves the same data
//! through flor-serve, with staleness bounded by the server's poll
//! interval, and refuses writes with a typed error.

use flor_core::Flor;
use flor_serve::{Client, Response, ServeExt, ServerConfig};
use flor_store::StoreError;
use flor_view::QueryPlan;
use std::time::{Duration, Instant};

#[test]
fn follower_serves_writer_data_with_bounded_staleness() {
    let dir = std::env::temp_dir().join(format!("flor-follower-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("writer.wal");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("writer.wal.ckpt"));

    // The writer: a normal durable kernel.
    let writer = Flor::open("follower-demo", &path).expect("open writer");
    writer.set_filename("train.fl");
    writer.log("loss", 0.9);
    writer.commit("round 0").expect("commit");

    // The follower: read-only over the same WAL, served with a tight
    // poll so staleness stays small.
    let follower = Flor::open_follower("follower-demo", &path).expect("open follower");
    assert!(follower.is_follower());
    let poll = Duration::from_millis(5);
    let cfg = ServerConfig {
        follower_poll: poll,
        ..ServerConfig::default()
    };
    let handle = follower.serve("127.0.0.1:0", cfg).expect("serve follower");

    let mut client = Client::connect(handle.addr(), None).expect("connect");
    let plan = QueryPlan::new(&["loss"]);
    let (_, df) = client.query(&plan).expect("query seed");
    assert_eq!(df.n_rows(), 1, "follower must serve the bootstrap state");

    // More commits land on the writer; the serving follower must catch
    // up on its own (the server's poll thread), within a small multiple
    // of the poll interval.
    for round in 1..6 {
        writer.log("loss", 0.9 / round as f64);
        writer.commit(&format!("round {round}")).expect("commit");
    }
    let writer_epoch = writer.db.pin().epoch();
    let deadline = Instant::now() + Duration::from_secs(10);
    let converged_in = loop {
        let started = Instant::now();
        let (_, latest) = client.epochs().expect("epochs");
        if latest >= writer_epoch {
            break started.elapsed();
        }
        assert!(
            Instant::now() < deadline,
            "follower never caught up: {latest} < {writer_epoch}"
        );
        std::thread::sleep(poll / 2);
    };
    // Not a strict one-interval assertion (scheduler noise), but it must
    // be the same order of magnitude.
    assert!(
        converged_in < poll * 200,
        "staleness way past the poll interval: {converged_in:?}"
    );

    // Re-pin and the served frame must now be byte-identical to the
    // writer's own from-scratch result at the same epoch.
    let epoch = client.pin().expect("pin");
    assert!(epoch >= writer_epoch);
    let (got_epoch, df) = client.query(&plan).expect("query converged");
    let local = writer.run_plan_full(&plan).expect("writer oracle");
    assert_eq!(
        Response::Frame {
            epoch: got_epoch,
            df
        }
        .encode(),
        Response::Frame {
            epoch: got_epoch,
            df: local
        }
        .encode(),
        "follower frame diverged from the writer's"
    );

    // Writes are refused at the kernel with the typed store error.
    match follower.commit("nope") {
        Err(StoreError::ReadOnly) => {}
        other => panic!("follower commit must refuse read-only, got {other:?}"),
    }
    assert!(matches!(
        follower.record_build_dep("v1", "t", &[], &[], false),
        Err(StoreError::ReadOnly)
    ));

    client.close().expect("close");
    handle.stop();

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("writer.wal.ckpt"));
    let _ = std::fs::remove_dir(&dir);
}
