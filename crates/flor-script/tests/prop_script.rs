//! Property tests: printer/parser round-trips over generated programs, and
//! interpreter determinism.

use flor_script::{parse, to_source, Interpreter, NullRuntime, Program};
use proptest::prelude::*;

/// Generate small random expressions as source text.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(|i| i.to_string()),
        (0.1f64..99.0).prop_map(|f| format!("{f:?}")),
        "[a-c]".prop_map(|v| v),
        Just("true".to_string()),
        Just("none".to_string()),
        "[a-z]{1,5}".prop_map(|s| format!("\"{s}\"")),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            4 => leaf,
            2 => (sub.clone(), prop_oneof![Just("+"), Just("*"), Just("<"), Just("&&")], sub.clone())
                .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
            1 => sub.clone().prop_map(|e| format!("-({e})")),
            1 => proptest::collection::vec(sub.clone(), 0..3)
                .prop_map(|items| format!("[{}]", items.join(", "))),
            1 => sub.prop_map(|e| format!("abs({e})")),
        ]
        .boxed()
    }
}

/// Generate small random programs (statements with nesting).
fn arb_program(depth: u32) -> BoxedStrategy<String> {
    let stmt_leaf = prop_oneof![
        ("[a-c]", arb_expr(1)).prop_map(|(v, e)| format!("let {v} = {e};")),
        ("[a-c]", arb_expr(1)).prop_map(|(v, e)| format!("{v} = {e};")),
        ("[a-z]{1,4}", arb_expr(1)).prop_map(|(n, e)| format!("flor.log(\"{n}\", {e});")),
    ];
    let base =
        proptest::collection::vec(stmt_leaf.clone(), 1..4).prop_map(|stmts| stmts.join("\n"));
    if depth == 0 {
        base.boxed()
    } else {
        let sub = arb_program(depth - 1);
        prop_oneof![
            3 => base,
            1 => (arb_expr(1), sub.clone()).prop_map(|(c, b)| format!("if {c} {{\n{b}\n}}")),
            1 => ("[a-c]", 0i64..4, sub.clone())
                .prop_map(|(v, n, b)| format!("for {v} in range(0, {n}) {{\n{b}\n}}")),
            1 => ("[a-z]{1,4}", "[a-c]", 0i64..4, sub)
                .prop_map(|(ln, v, n, b)| {
                    format!("for {v} in flor.loop(\"{ln}\", range(0, {n})) {{\n{b}\n}}")
                }),
        ]
        .boxed()
    }
}

fn normalize(src: &str) -> Option<Program> {
    parse(src).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → print → parse is the identity on ASTs, and printing is a
    /// fixed point.
    #[test]
    fn print_parse_round_trip(src in arb_program(2)) {
        if let Some(p1) = normalize(&src) {
            let printed = to_source(&p1);
            let p2 = parse(&printed).expect("printer output must parse");
            prop_assert_eq!(&p1, &p2);
            prop_assert_eq!(to_source(&p2), printed);
        }
    }

    /// The interpreter is deterministic: two runs of the same program
    /// yield identical environments, stdout, and stats.
    #[test]
    fn interpreter_deterministic(src in arb_program(2)) {
        let Some(prog) = normalize(&src) else { return Ok(()); };
        let mut a = Interpreter::new();
        let ra = a.run(&prog, &mut NullRuntime);
        let mut b = Interpreter::new();
        let rb = b.run(&prog, &mut NullRuntime);
        match (ra, rb) {
            (Ok(sa), Ok(sb)) => {
                prop_assert_eq!(sa, sb);
                prop_assert_eq!(a.env, b.env);
                prop_assert_eq!(a.stdout, b.stdout);
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (x, y) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", x, y),
        }
    }

    /// Snapshot/restore through an arbitrary program's final state is
    /// lossless.
    #[test]
    fn snapshot_after_program_round_trips(src in arb_program(2)) {
        let Some(prog) = normalize(&src) else { return Ok(()); };
        let mut interp = Interpreter::new();
        if interp.run(&prog, &mut NullRuntime).is_err() {
            return Ok(());
        }
        let snap = interp.snapshot().unwrap();
        let mut fresh = Interpreter::new();
        fresh.restore(&snap).unwrap();
        prop_assert_eq!(fresh.env, interp.env);
    }

    /// node ids are strictly increasing pre-order: re-parsing the printed
    /// source gives the same node count.
    #[test]
    fn node_count_stable(src in arb_program(2)) {
        if let Some(p) = normalize(&src) {
            let p2 = parse(&to_source(&p)).unwrap();
            prop_assert_eq!(p.node_count(), p2.node_count());
        }
    }
}
