//! Lexer for florscript, the mini-language hosting Flor instrumentation.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped contents).
    Str(String),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x:?}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based), for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    // longest first
    "==", "!=", "<=", ">=", "&&", "||", "(", ")", "{", "}", "[", "]", ",", ";", ".", "=", "<", ">",
    "+", "-", "*", "/", "%", "!",
];

/// Tokenize `src`. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && i + 1 < bytes.len()
                && (bytes[i + 1] as char).is_ascii_digit()
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            // Scientific notation: 1e-3
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|e| LexError {
                    message: format!("bad float {text:?}: {e}"),
                    line,
                })?)
            } else {
                Tok::Int(text.parse().map_err(|e| LexError {
                    message: format!("bad int {text:?}: {e}"),
                    line,
                })?)
            };
            out.push(SpannedTok { tok, line });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(SpannedTok {
                tok: Tok::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        if c == '"' {
            i += 1;
            let mut s = String::new();
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch == '"' {
                    i += 1;
                    out.push(SpannedTok {
                        tok: Tok::Str(s),
                        line,
                    });
                    continue 'outer;
                }
                if ch == '\\' {
                    i += 1;
                    if i >= bytes.len() {
                        break;
                    }
                    let esc = bytes[i] as char;
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        '\\' => '\\',
                        '"' => '"',
                        other => {
                            return Err(LexError {
                                message: format!("unknown escape \\{other}"),
                                line,
                            })
                        }
                    });
                    i += 1;
                    continue;
                }
                if ch == '\n' {
                    line += 1;
                }
                // Multi-byte UTF-8: copy the full char.
                // audit: allow(panic) — the enclosing loop guarantees
                // i < src.len() on a char boundary, so a char exists.
                let ch_full = src[i..].chars().next().expect("in bounds");
                s.push(ch_full);
                i += ch_full.len_utf8();
            }
            return Err(LexError {
                message: "unterminated string".to_string(),
                line,
            });
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(SpannedTok {
                    tok: Tok::Punct(p),
                    line,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            message: format!("unexpected character {c:?}"),
            line,
        });
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 23 4.5 1e-3 2.5e2"),
            vec![
                Tok::Int(1),
                Tok::Int(23),
                Tok::Float(4.5),
                Tok::Float(1e-3),
                Tok::Float(2.5e2),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn idents_and_keywords_are_idents() {
        assert_eq!(
            kinds("let epoch flor _x x9"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("epoch".into()),
                Tok::Ident("flor".into()),
                Tok::Ident("_x".into()),
                Tok::Ident("x9".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""hello" "a\"b" "n\nl" "tab\t""#),
            vec![
                Tok::Str("hello".into()),
                Tok::Str("a\"b".into()),
                Tok::Str("n\nl".into()),
                Tok::Str("tab\t".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn punctuation_longest_match() {
        assert_eq!(
            kinds("== = <= < && !x"),
            vec![
                Tok::Punct("=="),
                Tok::Punct("="),
                Tok::Punct("<="),
                Tok::Punct("<"),
                Tok::Punct("&&"),
                Tok::Punct("!"),
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("let x = 1; // the answer\nx"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(1),
                Tok::Punct(";"),
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn flor_call_shape() {
        assert_eq!(
            kinds("flor.log(\"loss\", 0.5);"),
            vec![
                Tok::Ident("flor".into()),
                Tok::Punct("."),
                Tok::Ident("log".into()),
                Tok::Punct("("),
                Tok::Str("loss".into()),
                Tok::Punct(","),
                Tok::Float(0.5),
                Tok::Punct(")"),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("\"héllo 世界\""),
            vec![Tok::Str("héllo 世界".into()), Tok::Eof]
        );
    }
}
