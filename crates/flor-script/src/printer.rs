//! Canonical pretty-printer: `parse(to_source(p)) == p`.
//!
//! Statement propagation patches old-version ASTs and re-commits them as
//! source (the paper injects log statements "into the correct locations in
//! all prior versions of the code", §2); a canonical printer makes that
//! write-back deterministic and round-trip safe.

use crate::ast::{Expr, Program, Stmt, UnOp};

/// Render a program as canonical source text.
pub fn to_source(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.stmts {
        stmt_to_source(s, 0, &mut out);
    }
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn stmt_to_source(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match s {
        Stmt::Let { name, expr, .. } => {
            out.push_str("let ");
            out.push_str(name);
            out.push_str(" = ");
            expr_to_source(expr, out);
            out.push_str(";\n");
        }
        Stmt::Assign { name, expr, .. } => {
            out.push_str(name);
            out.push_str(" = ");
            expr_to_source(expr, out);
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            out.push_str("if ");
            expr_to_source(cond, out);
            out.push_str(" {\n");
            for st in then_block {
                stmt_to_source(st, depth + 1, out);
            }
            indent(depth, out);
            out.push('}');
            if let Some(eb) = else_block {
                out.push_str(" else {\n");
                for st in eb {
                    stmt_to_source(st, depth + 1, out);
                }
                indent(depth, out);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::While { cond, body, .. } => {
            out.push_str("while ");
            expr_to_source(cond, out);
            out.push_str(" {\n");
            for st in body {
                stmt_to_source(st, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::For {
            var,
            iterable,
            body,
            ..
        } => {
            out.push_str("for ");
            out.push_str(var);
            out.push_str(" in ");
            expr_to_source(iterable, out);
            out.push_str(" {\n");
            for st in body {
                stmt_to_source(st, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::FlorLoop {
            var,
            loop_name,
            iterable,
            body,
            ..
        } => {
            out.push_str("for ");
            out.push_str(var);
            out.push_str(" in flor.loop(");
            push_str_lit(loop_name, out);
            out.push_str(", ");
            expr_to_source(iterable, out);
            out.push_str(") {\n");
            for st in body {
                stmt_to_source(st, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::WithCheckpointing { vars, body, .. } => {
            out.push_str("with flor.checkpointing(");
            out.push_str(&vars.join(", "));
            out.push_str(") {\n");
            for st in body {
                stmt_to_source(st, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::ExprStmt { expr, .. } => {
            expr_to_source(expr, out);
            out.push_str(";\n");
        }
    }
}

fn push_str_lit(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
}

/// Render an expression. Sub-expressions are parenthesised whenever the
/// child is itself compound — unambiguous and canonical, if heavier than
/// minimal-parens printing.
fn expr_to_source(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(_, v) => out.push_str(&v.to_string()),
        Expr::Float(_, v) => out.push_str(&format!("{v:?}")),
        Expr::Str(_, s) => push_str_lit(s, out),
        Expr::Bool(_, b) => out.push_str(if *b { "true" } else { "false" }),
        Expr::NoneLit(_) => out.push_str("none"),
        Expr::Ident(_, n) => out.push_str(n),
        Expr::List(_, items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_to_source(item, out);
            }
            out.push(']');
        }
        Expr::Unary { op, expr, .. } => {
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            paren_if_compound(expr, out);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            paren_if_compound(lhs, out);
            out.push(' ');
            out.push_str(op.as_str());
            out.push(' ');
            paren_if_compound(rhs, out);
        }
        Expr::Call { name, args, .. } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_to_source(a, out);
            }
            out.push(')');
        }
        Expr::FlorCall { func, args, .. } => {
            out.push_str("flor.");
            out.push_str(func);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_to_source(a, out);
            }
            out.push(')');
        }
        Expr::Index { base, index, .. } => {
            paren_if_compound(base, out);
            out.push('[');
            expr_to_source(index, out);
            out.push(']');
        }
    }
}

fn paren_if_compound(e: &Expr, out: &mut String) {
    let compound = matches!(e, Expr::Binary { .. } | Expr::Unary { .. });
    if compound {
        out.push('(');
        expr_to_source(e, out);
        out.push(')');
    } else {
        expr_to_source(e, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = to_source(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1, p2, "print/parse round trip failed for:\n{printed}");
        // Fixed point: printing again yields identical text.
        assert_eq!(to_source(&p2), printed);
    }

    #[test]
    fn round_trip_simple() {
        round_trip("let x = 1;\nx = x + 1;\nflor.log(\"x\", x);");
    }

    #[test]
    fn round_trip_precedence() {
        round_trip("let a = 1 + 2 * 3 - 4 / 5 % 6;");
        round_trip("let b = (1 + 2) * 3;");
        round_trip("let c = -x + !y;");
        round_trip("let d = a < b && c >= d || e != f;");
    }

    #[test]
    fn round_trip_control_flow() {
        round_trip("if a == 1 { let x = 1; } else { let y = 2; }");
        round_trip("while n > 0 { n = n - 1; }");
        round_trip("for i in range(0, 10) { print(i); }");
    }

    #[test]
    fn round_trip_flor_constructs() {
        round_trip(
            "with flor.checkpointing(net) {\n  for e in flor.loop(\"epoch\", range(0, 5)) {\n    flor.log(\"loss\", train_step(net, data, 0.1));\n  }\n}",
        );
        round_trip("let h = flor.arg(\"hidden\", 500);");
        round_trip("flor.commit();");
    }

    #[test]
    fn round_trip_literals() {
        round_trip("let a = 2.0;\nlet b = 0.5;\nlet c = \"he said \\\"hi\\\"\\n\";\nlet d = none;\nlet e = [1, 2.5, \"x\", true];");
    }

    #[test]
    fn round_trip_indexing() {
        round_trip(
            "let m = eval_model(net, data);\nflor.log(\"acc\", m[0]);\nflor.log(\"recall\", m[1]);",
        );
    }

    #[test]
    fn float_formatting_distinguishes_int() {
        let p = parse("let a = 2.0;").unwrap();
        assert!(to_source(&p).contains("2.0"));
    }

    #[test]
    fn nested_blocks_indent() {
        let src = "if a { if b { let c = 1; } }";
        let p = parse(src).unwrap();
        let printed = to_source(&p);
        assert!(printed.contains("\n        let c = 1;\n"));
    }
}
