//! # flor-script — the execution substrate for hindsight logging
//!
//! FlorDB (CIDR 2025) instruments Python programs; a Rust reproduction
//! needs a language it fully controls. florscript is a small, deterministic
//! imperative language purpose-built for the paper's techniques:
//!
//! * **Instrumentation API** — `flor.log`, `flor.arg`, `flor.loop`,
//!   `flor.commit`, `with flor.checkpointing(..)` are first-class syntax,
//!   reported to a pluggable [`FlorRuntime`] (the FlorDB kernel).
//! * **Checkpointable state** — the interpreter's entire live state
//!   (environment + model/dataset heap) serializes to text bit-exactly
//!   ([`value::snapshot_state`]), so replay from a checkpoint is provably
//!   equivalent to uninterrupted execution.
//! * **Replay steering** — a runtime can [`Directive::Skip`] iterations,
//!   [`Directive::Restore`] a checkpoint, or [`Directive::Stop`] the
//!   program: the primitive moves behind multiversion hindsight replay.
//! * **Diffable ASTs** — canonical node ids, structural labels and a
//!   round-tripping pretty-printer ([`printer::to_source`]) support
//!   GumTree-style differencing and statement injection in `flor-diff`.
//!
//! ```
//! use flor_script::{parse, Interpreter, NullRuntime};
//! let prog = parse("let x = 1;\nfor e in flor.loop(\"epoch\", range(0, 3)) {\n    x = x * 2;\n}").unwrap();
//! let mut interp = Interpreter::new();
//! interp.run(&prog, &mut NullRuntime).unwrap();
//! assert_eq!(interp.env["x"].as_i64(), Some(8));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod value;

pub use ast::{BinOp, Expr, NodeId, Program, Stmt, StmtPath, UnOp};
pub use interp::{
    Directive, ExecStats, FlorRuntime, Interpreter, LoopFrame, NullRuntime, RtError, RtResult,
};
pub use parser::{parse, ParseError};
pub use printer::to_source;
pub use value::{dataset_from_text, dataset_to_text, restore_state, snapshot_state, Heap, RtValue};
