//! The tree-walking interpreter with Flor instrumentation hooks.
//!
//! Execution model (Python-like, matching the paper's scripts):
//! * one flat environment — `let` defines or overwrites a module-level name;
//! * `flor.*` calls and loop iterations are reported to a [`FlorRuntime`];
//! * inside a `with flor.checkpointing(..)` block, the first `flor.loop`
//!   entered becomes the **checkpoint loop**: the runtime is offered a
//!   state snapshot at every iteration boundary (recording), and may steer
//!   each iteration with a [`Directive`] (replay) — Run, Skip, Restore a
//!   checkpoint, or Stop the program.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::builtins;
use crate::value::{restore_state, snapshot_state, Heap, RtValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtError {
    /// Explanation.
    pub message: String,
}

impl RtError {
    /// Build an error.
    pub fn new(message: impl Into<String>) -> RtError {
        RtError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RtError {}

/// Result alias.
pub type RtResult<T> = Result<T, RtError>;

/// One active loop context: `(loop_name, iteration index, iteration value)`.
/// The stack of frames is the paper's nested `ctx_id` chain (Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopFrame {
    /// `flor.loop` name.
    pub name: String,
    /// Zero-based iteration index.
    pub iteration: usize,
    /// Display text of the iteration value.
    pub value: String,
}

/// Replay steering for checkpoint-loop iterations.
#[derive(Debug, Clone)]
pub enum Directive {
    /// Execute the iteration normally.
    Run,
    /// Skip the iteration entirely (its effects are memoized elsewhere).
    Skip,
    /// Install the given snapshot, then run the iteration.
    Restore(String),
    /// Stop the whole program before this iteration.
    Stop,
}

/// The instrumentation interface between interpreter and FlorDB kernel.
///
/// All methods have no-op defaults so simple runtimes only override what
/// they need.
pub trait FlorRuntime {
    /// `flor.arg(name, default)`: supply the argument value (recorded
    /// values during replay, CLI/default during recording).
    fn arg(&mut self, _name: &str, default: RtValue) -> RtValue {
        default
    }

    /// `flor.log(name, value)` with the current loop-context stack.
    fn log(&mut self, _name: &str, _value: &RtValue, _loops: &[LoopFrame]) {}

    /// A `flor.loop` is beginning (`length` iterations planned).
    fn loop_begin(&mut self, _name: &str, _length: usize, _loops: &[LoopFrame]) {}

    /// A `flor.loop` iteration is starting.
    fn loop_iter(
        &mut self,
        _name: &str,
        _iteration: usize,
        _value: &RtValue,
        _loops: &[LoopFrame],
    ) {
    }

    /// A `flor.loop` finished.
    fn loop_end(&mut self, _name: &str, _loops: &[LoopFrame]) {}

    /// `flor.commit()`.
    fn commit(&mut self) {}

    /// Steer one checkpoint-loop iteration (replay hook).
    fn plan(&mut self, _loop_name: &str, _iteration: usize) -> Directive {
        Directive::Run
    }

    /// Offered at the end of each executed checkpoint-loop iteration.
    /// Calling `snapshot()` materialises the full interpreter state; the
    /// runtime decides (per its checkpointing policy) whether to pay that
    /// cost and keep it.
    fn on_checkpoint_boundary(
        &mut self,
        _loop_name: &str,
        _iteration: usize,
        _snapshot: &mut dyn FnMut() -> RtResult<String>,
    ) {
    }
}

/// A runtime that ignores everything (pure execution).
#[derive(Debug, Default)]
pub struct NullRuntime;

impl FlorRuntime for NullRuntime {}

/// Execution statistics — the deterministic cost proxies the replay
/// benchmarks compare (statements executed ≈ work done).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Statements executed.
    pub statements: u64,
    /// Simulated work units consumed (`work()` builtin + training steps).
    pub work_units: u64,
    /// Checkpoint-loop iterations actually executed (not skipped).
    pub iterations_run: u64,
    /// Checkpoint-loop iterations skipped by directive.
    pub iterations_skipped: u64,
    /// Snapshots restored.
    pub restores: u64,
}

/// The interpreter.
pub struct Interpreter {
    /// Flat variable environment.
    pub env: BTreeMap<String, RtValue>,
    /// Object heap.
    pub heap: Heap,
    /// Deterministic RNG for `randint` (seeded per run).
    pub rng: StdRng,
    /// Captured `print` output.
    pub stdout: Vec<String>,
    /// Execution statistics.
    pub stats: ExecStats,
    loop_stack: Vec<LoopFrame>,
    in_ckpt_block: bool,
    ckpt_loop: Option<String>,
    stop: bool,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Fresh interpreter with the default deterministic seed.
    pub fn new() -> Interpreter {
        Interpreter::with_seed(0x5EED)
    }

    /// Fresh interpreter with an explicit `randint` seed.
    pub fn with_seed(seed: u64) -> Interpreter {
        Interpreter {
            env: BTreeMap::new(),
            heap: Heap::default(),
            rng: StdRng::seed_from_u64(seed),
            stdout: Vec::new(),
            stats: ExecStats::default(),
            loop_stack: Vec::new(),
            in_ckpt_block: false,
            ckpt_loop: None,
            stop: false,
        }
    }

    /// Execute a program against `rt`. Returns the final stats.
    pub fn run(&mut self, prog: &Program, rt: &mut dyn FlorRuntime) -> RtResult<ExecStats> {
        self.stop = false;
        for s in &prog.stmts {
            self.exec_stmt(s, rt)?;
            if self.stop {
                break;
            }
        }
        Ok(self.stats)
    }

    /// Serialize current state (used by checkpoint boundaries and tests).
    pub fn snapshot(&self) -> RtResult<String> {
        snapshot_state(&self.env, &self.heap).map_err(RtError::new)
    }

    /// Replace state from a snapshot.
    pub fn restore(&mut self, snapshot: &str) -> RtResult<()> {
        let (env, heap) = restore_state(snapshot).map_err(RtError::new)?;
        self.env = env;
        self.heap = heap;
        self.stats.restores += 1;
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt], rt: &mut dyn FlorRuntime) -> RtResult<()> {
        for s in stmts {
            self.exec_stmt(s, rt)?;
            if self.stop {
                break;
            }
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, rt: &mut dyn FlorRuntime) -> RtResult<()> {
        self.stats.statements += 1;
        match s {
            Stmt::Let { name, expr, .. } | Stmt::Assign { name, expr, .. } => {
                let v = self.eval(expr, rt)?;
                self.env.insert(name.clone(), v);
                Ok(())
            }
            Stmt::ExprStmt { expr, .. } => {
                self.eval(expr, rt)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                if self.eval(cond, rt)?.truthy() {
                    self.exec_block(then_block, rt)
                } else if let Some(eb) = else_block {
                    self.exec_block(eb, rt)
                } else {
                    Ok(())
                }
            }
            Stmt::While { cond, body, .. } => {
                let mut guard = 0u64;
                while self.eval(cond, rt)?.truthy() {
                    self.exec_block(body, rt)?;
                    if self.stop {
                        break;
                    }
                    guard += 1;
                    if guard > 10_000_000 {
                        return Err(RtError::new("while loop exceeded 10M iterations"));
                    }
                }
                Ok(())
            }
            Stmt::For {
                var,
                iterable,
                body,
                ..
            } => {
                let items = self.eval_iterable(iterable, rt)?;
                for item in items {
                    self.env.insert(var.clone(), item);
                    self.exec_block(body, rt)?;
                    if self.stop {
                        break;
                    }
                }
                Ok(())
            }
            Stmt::FlorLoop {
                var,
                loop_name,
                iterable,
                body,
                ..
            } => self.exec_flor_loop(var, loop_name, iterable, body, rt),
            Stmt::WithCheckpointing { body, .. } => {
                let was_in = self.in_ckpt_block;
                self.in_ckpt_block = true;
                let result = self.exec_block(body, rt);
                self.in_ckpt_block = was_in;
                self.ckpt_loop = None;
                result
            }
        }
    }

    fn exec_flor_loop(
        &mut self,
        var: &str,
        loop_name: &str,
        iterable: &Expr,
        body: &[Stmt],
        rt: &mut dyn FlorRuntime,
    ) -> RtResult<()> {
        let items = self.eval_iterable(iterable, rt)?;
        // Designate the checkpoint loop: first flor.loop inside the
        // checkpointing block at flor-loop depth 0.
        let is_ckpt = if self.in_ckpt_block && self.loop_stack.is_empty() {
            match &self.ckpt_loop {
                Some(n) => n == loop_name,
                None => {
                    self.ckpt_loop = Some(loop_name.to_string());
                    true
                }
            }
        } else {
            false
        };
        rt.loop_begin(loop_name, items.len(), &self.loop_stack);
        for (i, item) in items.into_iter().enumerate() {
            if is_ckpt {
                match rt.plan(loop_name, i) {
                    Directive::Run => {}
                    Directive::Skip => {
                        self.stats.iterations_skipped += 1;
                        continue;
                    }
                    Directive::Restore(snap) => {
                        self.restore(&snap)?;
                    }
                    Directive::Stop => {
                        self.stop = true;
                        break;
                    }
                }
                self.stats.iterations_run += 1;
            }
            self.env.insert(var.to_string(), item.clone());
            self.loop_stack.push(LoopFrame {
                name: loop_name.to_string(),
                iteration: i,
                value: item.display_text(),
            });
            rt.loop_iter(loop_name, i, &item, &self.loop_stack);
            let body_result = self.exec_block(body, rt);
            self.loop_stack.pop();
            body_result?;
            if self.stop {
                break;
            }
            if is_ckpt {
                // Offer a snapshot at the iteration boundary. The closure
                // borrows env/heap immutably; rt is a separate borrow.
                let env = &self.env;
                let heap = &self.heap;
                let mut snap_fn = move || snapshot_state(env, heap).map_err(RtError::new);
                rt.on_checkpoint_boundary(loop_name, i, &mut snap_fn);
            }
        }
        rt.loop_end(loop_name, &self.loop_stack);
        Ok(())
    }

    fn eval_iterable(&mut self, e: &Expr, rt: &mut dyn FlorRuntime) -> RtResult<Vec<RtValue>> {
        match self.eval(e, rt)? {
            RtValue::List(items) => Ok(items),
            RtValue::Str(s) => Ok(s.chars().map(|c| RtValue::Str(c.to_string())).collect()),
            other => Err(RtError::new(format!(
                "cannot iterate over {}",
                other.display_text()
            ))),
        }
    }

    /// Evaluate an expression.
    pub fn eval(&mut self, e: &Expr, rt: &mut dyn FlorRuntime) -> RtResult<RtValue> {
        match e {
            Expr::Int(_, v) => Ok(RtValue::Int(*v)),
            Expr::Float(_, v) => Ok(RtValue::Float(*v)),
            Expr::Str(_, s) => Ok(RtValue::Str(s.clone())),
            Expr::Bool(_, b) => Ok(RtValue::Bool(*b)),
            Expr::NoneLit(_) => Ok(RtValue::None),
            Expr::Ident(_, name) => self
                .env
                .get(name)
                .cloned()
                .ok_or_else(|| RtError::new(format!("undefined variable {name:?}"))),
            Expr::List(_, items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, rt)?);
                }
                Ok(RtValue::List(out))
            }
            Expr::Unary { op, expr, .. } => {
                let v = self.eval(expr, rt)?;
                match op {
                    UnOp::Neg => match v {
                        RtValue::Int(i) => Ok(RtValue::Int(-i)),
                        RtValue::Float(f) => Ok(RtValue::Float(-f)),
                        other => Err(RtError::new(format!(
                            "cannot negate {}",
                            other.display_text()
                        ))),
                    },
                    UnOp::Not => Ok(RtValue::Bool(!v.truthy())),
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                // Short-circuit logicals.
                match op {
                    BinOp::And => {
                        let l = self.eval(lhs, rt)?;
                        if !l.truthy() {
                            return Ok(RtValue::Bool(false));
                        }
                        let r = self.eval(rhs, rt)?;
                        return Ok(RtValue::Bool(r.truthy()));
                    }
                    BinOp::Or => {
                        let l = self.eval(lhs, rt)?;
                        if l.truthy() {
                            return Ok(RtValue::Bool(true));
                        }
                        let r = self.eval(rhs, rt)?;
                        return Ok(RtValue::Bool(r.truthy()));
                    }
                    _ => {}
                }
                let l = self.eval(lhs, rt)?;
                let r = self.eval(rhs, rt)?;
                eval_binop(*op, l, r)
            }
            Expr::Call { name, args, .. } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, rt)?);
                }
                builtins::call(self, name, vals)
            }
            Expr::FlorCall { func, args, .. } => self.eval_flor_call(func, args, rt),
            Expr::Index { base, index, .. } => {
                let b = self.eval(base, rt)?;
                let i = self.eval(index, rt)?;
                let idx = i
                    .as_i64()
                    .ok_or_else(|| RtError::new("index must be an integer"))?;
                match b {
                    RtValue::List(items) => {
                        let n = items.len() as i64;
                        let pos = if idx < 0 { n + idx } else { idx };
                        if pos < 0 || pos >= n {
                            return Err(RtError::new(format!(
                                "index {idx} out of bounds for list of length {n}"
                            )));
                        }
                        Ok(items[pos as usize].clone())
                    }
                    RtValue::Str(s) => {
                        let chars: Vec<char> = s.chars().collect();
                        let n = chars.len() as i64;
                        let pos = if idx < 0 { n + idx } else { idx };
                        if pos < 0 || pos >= n {
                            return Err(RtError::new(format!(
                                "index {idx} out of bounds for string of length {n}"
                            )));
                        }
                        Ok(RtValue::Str(chars[pos as usize].to_string()))
                    }
                    other => Err(RtError::new(format!(
                        "cannot index {}",
                        other.display_text()
                    ))),
                }
            }
        }
    }

    fn eval_flor_call(
        &mut self,
        func: &str,
        args: &[Expr],
        rt: &mut dyn FlorRuntime,
    ) -> RtResult<RtValue> {
        match func {
            "log" => {
                if args.len() != 2 {
                    return Err(RtError::new("flor.log takes (name, value)"));
                }
                let name = match self.eval(&args[0], rt)? {
                    RtValue::Str(s) => s,
                    _ => return Err(RtError::new("flor.log name must be a string")),
                };
                let value = self.eval(&args[1], rt)?;
                rt.log(&name, &value, &self.loop_stack);
                Ok(value)
            }
            "arg" => {
                if args.len() != 2 {
                    return Err(RtError::new("flor.arg takes (name, default)"));
                }
                let name = match self.eval(&args[0], rt)? {
                    RtValue::Str(s) => s,
                    _ => return Err(RtError::new("flor.arg name must be a string")),
                };
                let default = self.eval(&args[1], rt)?;
                Ok(rt.arg(&name, default))
            }
            "commit" => {
                if !args.is_empty() {
                    return Err(RtError::new("flor.commit takes no arguments"));
                }
                rt.commit();
                Ok(RtValue::None)
            }
            "loop" => Err(RtError::new(
                "flor.loop is only valid as a for-loop iterable",
            )),
            "checkpointing" => Err(RtError::new(
                "flor.checkpointing is only valid in a with statement",
            )),
            other => Err(RtError::new(format!("unknown flor API: flor.{other}"))),
        }
    }
}

fn eval_binop(op: BinOp, l: RtValue, r: RtValue) -> RtResult<RtValue> {
    use RtValue::*;
    // String concatenation.
    if op == BinOp::Add {
        if let (Str(a), Str(b)) = (&l, &r) {
            return Ok(Str(format!("{a}{b}")));
        }
        if let (List(a), List(b)) = (&l, &r) {
            let mut out = a.clone();
            out.extend(b.iter().cloned());
            return Ok(List(out));
        }
    }
    // Comparisons on strings.
    if let (Str(a), Str(b)) = (&l, &r) {
        let result = match op {
            BinOp::Eq => a == b,
            BinOp::Ne => a != b,
            BinOp::Lt => a < b,
            BinOp::Le => a <= b,
            BinOp::Gt => a > b,
            BinOp::Ge => a >= b,
            _ => {
                return Err(RtError::new(format!(
                    "unsupported string operation {}",
                    op.as_str()
                )))
            }
        };
        return Ok(Bool(result));
    }
    // Structural (in)equality for remaining non-numeric values.
    if matches!(op, BinOp::Eq | BinOp::Ne) && (l.as_f64().is_none() || r.as_f64().is_none()) {
        let eq = l == r;
        return Ok(Bool(if op == BinOp::Eq { eq } else { !eq }));
    }
    // Integer arithmetic stays integral.
    if let (Int(a), Int(b)) = (&l, &r) {
        let (a, b) = (*a, *b);
        return match op {
            BinOp::Add => Ok(Int(a.wrapping_add(b))),
            BinOp::Sub => Ok(Int(a.wrapping_sub(b))),
            BinOp::Mul => Ok(Int(a.wrapping_mul(b))),
            BinOp::Div => {
                if b == 0 {
                    Err(RtError::new("integer division by zero"))
                } else {
                    Ok(Int(a.wrapping_div(b)))
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    Err(RtError::new("modulo by zero"))
                } else {
                    Ok(Int(a.wrapping_rem(b)))
                }
            }
            BinOp::Eq => Ok(Bool(a == b)),
            BinOp::Ne => Ok(Bool(a != b)),
            BinOp::Lt => Ok(Bool(a < b)),
            BinOp::Le => Ok(Bool(a <= b)),
            BinOp::Gt => Ok(Bool(a > b)),
            BinOp::Ge => Ok(Bool(a >= b)),
            // audit: allow(panic) — And/Or are evaluated short-circuit in
            // `eval_expr` and never reach the binop table.
            BinOp::And | BinOp::Or => unreachable!("short-circuited"),
        };
    }
    // Mixed numeric → float.
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(RtError::new(format!(
                "unsupported operands for {}: {} and {}",
                op.as_str(),
                l.display_text(),
                r.display_text()
            )))
        }
    };
    match op {
        BinOp::Add => Ok(Float(a + b)),
        BinOp::Sub => Ok(Float(a - b)),
        BinOp::Mul => Ok(Float(a * b)),
        BinOp::Div => Ok(Float(a / b)),
        BinOp::Mod => Ok(Float(a % b)),
        BinOp::Eq => Ok(Bool(a == b)),
        BinOp::Ne => Ok(Bool(a != b)),
        BinOp::Lt => Ok(Bool(a < b)),
        BinOp::Le => Ok(Bool(a <= b)),
        BinOp::Gt => Ok(Bool(a > b)),
        BinOp::Ge => Ok(Bool(a >= b)),
        // audit: allow(panic) — same short-circuit routing as above.
        BinOp::And | BinOp::Or => unreachable!("short-circuited"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run_src(src: &str) -> Interpreter {
        let prog = parse(src).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&prog, &mut NullRuntime).unwrap();
        interp
    }

    fn get_int(interp: &Interpreter, name: &str) -> i64 {
        interp.env[name].as_i64().unwrap()
    }

    #[test]
    fn arithmetic_and_vars() {
        let i = run_src("let a = 2 + 3 * 4;\nlet b = a % 5;\nlet c = (a - 4) / 5;");
        assert_eq!(get_int(&i, "a"), 14);
        assert_eq!(get_int(&i, "b"), 4);
        assert_eq!(get_int(&i, "c"), 2);
    }

    #[test]
    fn float_arithmetic() {
        let i = run_src("let x = 1.5 * 2;\nlet y = 7 / 2.0;");
        assert_eq!(i.env["x"], RtValue::Float(3.0));
        assert_eq!(i.env["y"], RtValue::Float(3.5));
    }

    #[test]
    fn string_ops() {
        let i = run_src("let s = \"ab\" + \"cd\";\nlet c = s[1];\nlet eq = s == \"abcd\";");
        assert_eq!(i.env["s"], RtValue::Str("abcd".into()));
        assert_eq!(i.env["c"], RtValue::Str("b".into()));
        assert_eq!(i.env["eq"], RtValue::Bool(true));
    }

    #[test]
    fn control_flow() {
        let i = run_src(
            "let n = 10;\nlet total = 0;\nwhile n > 0 { total = total + n; n = n - 1; }\nlet sign = 0;\nif total > 50 { sign = 1; } else { sign = -1; }",
        );
        assert_eq!(get_int(&i, "total"), 55);
        assert_eq!(get_int(&i, "sign"), 1);
    }

    #[test]
    fn plain_for_over_list_and_range() {
        let i = run_src(
            "let acc = 0;\nfor x in [1, 2, 3] { acc = acc + x; }\nfor y in range(0, 4) { acc = acc + y; }",
        );
        assert_eq!(get_int(&i, "acc"), 12);
    }

    #[test]
    fn negative_indexing() {
        let i = run_src("let l = [10, 20, 30];\nlet last = l[-1];");
        assert_eq!(get_int(&i, "last"), 30);
    }

    #[test]
    fn index_out_of_bounds_errors() {
        let prog = parse("let l = [1];\nlet x = l[5];").unwrap();
        let mut interp = Interpreter::new();
        assert!(interp.run(&prog, &mut NullRuntime).is_err());
    }

    #[test]
    fn undefined_variable_errors() {
        let prog = parse("let x = missing + 1;").unwrap();
        assert!(Interpreter::new().run(&prog, &mut NullRuntime).is_err());
    }

    #[test]
    fn division_by_zero_errors() {
        let prog = parse("let x = 1 / 0;").unwrap();
        assert!(Interpreter::new().run(&prog, &mut NullRuntime).is_err());
    }

    #[test]
    fn short_circuit() {
        // RHS would error (division by zero) if evaluated.
        let i = run_src("let ok = false && (1 / 0 == 1);\nlet ok2 = true || (1 / 0 == 1);");
        assert_eq!(i.env["ok"], RtValue::Bool(false));
        assert_eq!(i.env["ok2"], RtValue::Bool(true));
    }

    /// Recording runtime used in tests: collects logs and checkpoints.
    #[derive(Default)]
    struct Recorder {
        logs: Vec<(String, String, Vec<LoopFrame>)>,
        checkpoints: Vec<(usize, String)>,
        loops_seen: Vec<(String, usize)>,
        commits: usize,
    }

    impl FlorRuntime for Recorder {
        fn log(&mut self, name: &str, value: &RtValue, loops: &[LoopFrame]) {
            self.logs
                .push((name.to_string(), value.display_text(), loops.to_vec()));
        }
        fn loop_begin(&mut self, name: &str, length: usize, _loops: &[LoopFrame]) {
            self.loops_seen.push((name.to_string(), length));
        }
        fn commit(&mut self) {
            self.commits += 1;
        }
        fn on_checkpoint_boundary(
            &mut self,
            _loop_name: &str,
            iteration: usize,
            snapshot: &mut dyn FnMut() -> RtResult<String>,
        ) {
            self.checkpoints.push((iteration, snapshot().unwrap()));
        }
    }

    #[test]
    fn flor_log_reports_context() {
        let prog = parse(
            "for d in flor.loop(\"doc\", [\"a\", \"b\"]) {\n  for p in flor.loop(\"page\", range(0, 2)) {\n    flor.log(\"txt\", d + str(p));\n  }\n}",
        )
        .unwrap();
        let mut rec = Recorder::default();
        Interpreter::new().run(&prog, &mut rec).unwrap();
        assert_eq!(rec.logs.len(), 4);
        let (name, value, loops) = &rec.logs[3];
        assert_eq!(name, "txt");
        assert_eq!(value, "b1");
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].name, "doc");
        assert_eq!(loops[0].iteration, 1);
        assert_eq!(loops[1].name, "page");
        assert_eq!(loops[1].iteration, 1);
        // The inner loop begins once per outer iteration.
        assert_eq!(
            rec.loops_seen,
            vec![("doc".into(), 2), ("page".into(), 2), ("page".into(), 2)]
        );
    }

    #[test]
    fn checkpoint_boundaries_fire_for_designated_loop_only() {
        let prog = parse(
            "let model = 0;\nwith flor.checkpointing(model) {\n  for e in flor.loop(\"epoch\", range(0, 3)) {\n    for s in flor.loop(\"step\", range(0, 4)) {\n      model = model + 1;\n    }\n  }\n}",
        )
        .unwrap();
        let mut rec = Recorder::default();
        Interpreter::new().run(&prog, &mut rec).unwrap();
        // 3 epoch boundaries, not 12 step boundaries.
        assert_eq!(rec.checkpoints.len(), 3);
        // Snapshot at epoch boundary i has model == (i+1)*4.
        let (env, _) = restore_state(&rec.checkpoints[1].1).unwrap();
        assert_eq!(env["model"], RtValue::Int(8));
    }

    #[test]
    fn flor_commit_and_arg() {
        struct ArgRt;
        impl FlorRuntime for ArgRt {
            fn arg(&mut self, name: &str, default: RtValue) -> RtValue {
                if name == "epochs" {
                    RtValue::Int(7)
                } else {
                    default
                }
            }
        }
        let prog = parse(
            "let e = flor.arg(\"epochs\", 5);\nlet lr = flor.arg(\"lr\", 0.1);\nflor.commit();",
        )
        .unwrap();
        let mut interp = Interpreter::new();
        interp.run(&prog, &mut ArgRt).unwrap();
        assert_eq!(interp.env["e"], RtValue::Int(7));
        assert_eq!(interp.env["lr"], RtValue::Float(0.1));
    }

    /// Replay runtime: skip all iterations except a target one, restoring
    /// its checkpoint first.
    struct SkipTo {
        target: usize,
        snapshot: String,
        ran: Vec<usize>,
    }

    impl FlorRuntime for SkipTo {
        fn plan(&mut self, _loop_name: &str, iteration: usize) -> Directive {
            match iteration.cmp(&self.target) {
                std::cmp::Ordering::Less => Directive::Skip,
                std::cmp::Ordering::Equal => Directive::Restore(self.snapshot.clone()),
                std::cmp::Ordering::Greater => Directive::Stop,
            }
        }
        fn loop_iter(&mut self, _n: &str, i: usize, _v: &RtValue, loops: &[LoopFrame]) {
            if loops.len() == 1 {
                self.ran.push(i);
            }
        }
    }

    #[test]
    fn replay_with_restore_matches_full_run() {
        let src = "let model = 100;\nwith flor.checkpointing(model) {\n  for e in flor.loop(\"epoch\", range(0, 5)) {\n    model = model + e;\n  }\n}";
        let prog = parse(src).unwrap();
        // Record.
        let mut rec = Recorder::default();
        let mut full = Interpreter::new();
        full.run(&prog, &mut rec).unwrap();
        let full_model = full.env["model"].clone();
        // Replay only the last iteration from the checkpoint at boundary 3.
        let snap = rec.checkpoints[3].1.clone();
        let mut replay_rt = SkipTo {
            target: 4,
            snapshot: snap,
            ran: vec![],
        };
        let mut partial = Interpreter::new();
        partial.run(&prog, &mut replay_rt).unwrap();
        assert_eq!(replay_rt.ran, vec![4]);
        assert_eq!(partial.env["model"], full_model);
        assert_eq!(partial.stats.iterations_skipped, 4);
        assert_eq!(partial.stats.iterations_run, 1);
        assert_eq!(partial.stats.restores, 1);
    }

    #[test]
    fn stop_directive_halts_program() {
        struct StopAt1;
        impl FlorRuntime for StopAt1 {
            fn plan(&mut self, _l: &str, i: usize) -> Directive {
                if i >= 1 {
                    Directive::Stop
                } else {
                    Directive::Run
                }
            }
        }
        let src = "let x = 0;\nwith flor.checkpointing(x) {\n  for e in flor.loop(\"epoch\", range(0, 10)) {\n    x = x + 1;\n  }\n}\nlet after = 1;";
        let prog = parse(src).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&prog, &mut StopAt1).unwrap();
        assert_eq!(interp.env["x"], RtValue::Int(1));
        // Statement after the with-block never ran.
        assert!(!interp.env.contains_key("after"));
    }

    #[test]
    fn stats_count_statements_and_work() {
        let i = run_src("let a = 0;\nfor x in range(0, 10) { a = a + x; }\nwork(5);");
        assert!(i.stats.statements > 10);
        assert_eq!(i.stats.work_units, 5);
    }

    #[test]
    fn snapshot_restore_full_interpreter() {
        let i = run_src("let a = 1;\nlet b = [1, 2, 3];");
        let snap = i.snapshot().unwrap();
        let mut j = Interpreter::new();
        j.restore(&snap).unwrap();
        assert_eq!(j.env["a"], RtValue::Int(1));
        assert_eq!(
            j.env["b"],
            RtValue::List(vec![RtValue::Int(1), RtValue::Int(2), RtValue::Int(3)])
        );
    }

    #[test]
    fn flor_loop_outside_for_errors() {
        let prog = parse("let x = flor.loop(\"a\", [1]);").unwrap();
        assert!(Interpreter::new().run(&prog, &mut NullRuntime).is_err());
    }

    #[test]
    fn equality_of_none_and_lists() {
        let i = run_src("let a = none == none;\nlet b = [1, 2] == [1, 2];\nlet c = [1] != [2];");
        assert_eq!(i.env["a"], RtValue::Bool(true));
        assert_eq!(i.env["b"], RtValue::Bool(true));
        assert_eq!(i.env["c"], RtValue::Bool(true));
    }
}
