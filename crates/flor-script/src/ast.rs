//! The florscript AST.
//!
//! Every node carries a [`NodeId`] assigned canonically in pre-order after
//! parsing; `flor-diff` matches nodes across versions by structure and uses
//! the ids to address them. Statement blocks are addressable by
//! [`StmtPath`]s so propagated log statements can be spliced into exact
//! positions in prior versions.

use std::fmt;

/// Node identifier, unique within one parsed [`Program`] (pre-order).
pub type NodeId = u32;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Source text of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(NodeId, i64),
    /// Float literal.
    Float(NodeId, f64),
    /// String literal.
    Str(NodeId, String),
    /// Boolean literal.
    Bool(NodeId, bool),
    /// `none` literal.
    NoneLit(NodeId),
    /// Variable reference.
    Ident(NodeId, String),
    /// List literal.
    List(NodeId, Vec<Expr>),
    /// Unary operation.
    Unary {
        /// Node id.
        id: NodeId,
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Node id.
        id: NodeId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Builtin call `name(args...)`.
    Call {
        /// Node id.
        id: NodeId,
        /// Builtin name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Flor API call `flor.func(args...)`.
    FlorCall {
        /// Node id.
        id: NodeId,
        /// Flor function (`log`, `arg`, `loop`, `commit`, ...).
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Indexing `base[index]`.
    Index {
        /// Node id.
        id: NodeId,
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Node id.
        id: NodeId,
        /// Bound name.
        name: String,
        /// Initialiser.
        expr: Expr,
    },
    /// `name = expr;`
    Assign {
        /// Node id.
        id: NodeId,
        /// Target name.
        name: String,
        /// New value.
        expr: Expr,
    },
    /// `if cond { .. } else { .. }`
    If {
        /// Node id.
        id: NodeId,
        /// Condition.
        cond: Expr,
        /// Then-block.
        then_block: Vec<Stmt>,
        /// Optional else-block.
        else_block: Option<Vec<Stmt>>,
    },
    /// `while cond { .. }`
    While {
        /// Node id.
        id: NodeId,
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for var in iterable { .. }` (plain loop, no Flor bookkeeping)
    For {
        /// Node id.
        id: NodeId,
        /// Loop variable.
        var: String,
        /// Iterable expression.
        iterable: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for var in flor.loop("name", iterable) { .. }`
    FlorLoop {
        /// Node id.
        id: NodeId,
        /// Loop variable.
        var: String,
        /// The loop's registered name (first argument of `flor.loop`).
        loop_name: String,
        /// Iterable expression (second argument).
        iterable: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `with flor.checkpointing(a, b, ...) { .. }`
    WithCheckpointing {
        /// Node id.
        id: NodeId,
        /// Names of checkpointed variables.
        vars: Vec<String>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Bare expression statement `expr;`
    ExprStmt {
        /// Node id.
        id: NodeId,
        /// The expression.
        expr: Expr,
    },
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

/// A path addressing a statement inside nested blocks:
/// a sequence of (block selector, index) hops from the program root.
/// Block selectors: for If statements, 0 = then-block, 1 = else-block;
/// all other statements have a single body block (selector 0).
pub type StmtPath = Vec<(usize, usize)>;

impl Expr {
    /// The node id.
    pub fn id(&self) -> NodeId {
        match self {
            Expr::Int(id, _)
            | Expr::Float(id, _)
            | Expr::Str(id, _)
            | Expr::Bool(id, _)
            | Expr::NoneLit(id)
            | Expr::Ident(id, _)
            | Expr::List(id, _) => *id,
            Expr::Unary { id, .. }
            | Expr::Binary { id, .. }
            | Expr::Call { id, .. }
            | Expr::FlorCall { id, .. }
            | Expr::Index { id, .. } => *id,
        }
    }

    /// A structural label: node kind plus any scalar payload. Two nodes
    /// with equal labels are candidates for matching in tree diff.
    pub fn label(&self) -> String {
        match self {
            Expr::Int(_, v) => format!("int:{v}"),
            Expr::Float(_, v) => format!("float:{v:?}"),
            Expr::Str(_, v) => format!("str:{v}"),
            Expr::Bool(_, v) => format!("bool:{v}"),
            Expr::NoneLit(_) => "none".to_string(),
            Expr::Ident(_, n) => format!("ident:{n}"),
            Expr::List(_, _) => "list".to_string(),
            Expr::Unary { op, .. } => format!("unary:{op:?}"),
            Expr::Binary { op, .. } => format!("binary:{}", op.as_str()),
            Expr::Call { name, .. } => format!("call:{name}"),
            Expr::FlorCall { func, .. } => format!("flor:{func}"),
            Expr::Index { .. } => "index".to_string(),
        }
    }

    /// Child expressions, in order.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Int(..)
            | Expr::Float(..)
            | Expr::Str(..)
            | Expr::Bool(..)
            | Expr::NoneLit(..)
            | Expr::Ident(..) => vec![],
            Expr::List(_, xs) => xs.iter().collect(),
            Expr::Unary { expr, .. } => vec![expr],
            Expr::Binary { lhs, rhs, .. } => vec![lhs, rhs],
            Expr::Call { args, .. } | Expr::FlorCall { args, .. } => args.iter().collect(),
            Expr::Index { base, index, .. } => vec![base, index],
        }
    }
}

impl Stmt {
    /// The node id.
    pub fn id(&self) -> NodeId {
        match self {
            Stmt::Let { id, .. }
            | Stmt::Assign { id, .. }
            | Stmt::If { id, .. }
            | Stmt::While { id, .. }
            | Stmt::For { id, .. }
            | Stmt::FlorLoop { id, .. }
            | Stmt::WithCheckpointing { id, .. }
            | Stmt::ExprStmt { id, .. } => *id,
        }
    }

    /// Structural label for diffing.
    pub fn label(&self) -> String {
        match self {
            Stmt::Let { name, .. } => format!("let:{name}"),
            Stmt::Assign { name, .. } => format!("assign:{name}"),
            Stmt::If { .. } => "if".to_string(),
            Stmt::While { .. } => "while".to_string(),
            Stmt::For { var, .. } => format!("for:{var}"),
            Stmt::FlorLoop { var, loop_name, .. } => format!("florloop:{loop_name}:{var}"),
            Stmt::WithCheckpointing { vars, .. } => {
                format!("withckpt:{}", vars.join(","))
            }
            Stmt::ExprStmt { .. } => "expr".to_string(),
        }
    }

    /// Nested statement blocks of this statement, in selector order.
    pub fn blocks(&self) -> Vec<&Vec<Stmt>> {
        match self {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                let mut out = vec![then_block];
                if let Some(e) = else_block {
                    out.push(e);
                }
                out
            }
            Stmt::While { body, .. }
            | Stmt::For { body, .. }
            | Stmt::FlorLoop { body, .. }
            | Stmt::WithCheckpointing { body, .. } => vec![body],
            _ => vec![],
        }
    }

    /// Mutable access to nested statement blocks.
    pub fn blocks_mut(&mut self) -> Vec<&mut Vec<Stmt>> {
        match self {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                let mut out = vec![then_block];
                if let Some(e) = else_block {
                    out.push(e);
                }
                out
            }
            Stmt::While { body, .. }
            | Stmt::For { body, .. }
            | Stmt::FlorLoop { body, .. }
            | Stmt::WithCheckpointing { body, .. } => vec![body],
            _ => vec![],
        }
    }

    /// Expressions directly owned by this statement (not in nested blocks).
    pub fn exprs(&self) -> Vec<&Expr> {
        match self {
            Stmt::Let { expr, .. } | Stmt::Assign { expr, .. } | Stmt::ExprStmt { expr, .. } => {
                vec![expr]
            }
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => vec![cond],
            Stmt::For { iterable, .. } | Stmt::FlorLoop { iterable, .. } => vec![iterable],
            Stmt::WithCheckpointing { .. } => vec![],
        }
    }
}

impl Program {
    /// Re-assign all node ids in canonical pre-order. Makes two parses of
    /// the same source bit-identical and gives diffing a stable address
    /// space.
    pub fn assign_ids(&mut self) {
        let mut next: NodeId = 0;
        fn walk_expr(e: &mut Expr, next: &mut NodeId) {
            let id = *next;
            *next += 1;
            match e {
                Expr::Int(i, _)
                | Expr::Float(i, _)
                | Expr::Str(i, _)
                | Expr::Bool(i, _)
                | Expr::NoneLit(i)
                | Expr::Ident(i, _) => *i = id,
                Expr::List(i, xs) => {
                    *i = id;
                    for x in xs {
                        walk_expr(x, next);
                    }
                }
                Expr::Unary { id: i, expr, .. } => {
                    *i = id;
                    walk_expr(expr, next);
                }
                Expr::Binary {
                    id: i, lhs, rhs, ..
                } => {
                    *i = id;
                    walk_expr(lhs, next);
                    walk_expr(rhs, next);
                }
                Expr::Call { id: i, args, .. } | Expr::FlorCall { id: i, args, .. } => {
                    *i = id;
                    for a in args {
                        walk_expr(a, next);
                    }
                }
                Expr::Index { id: i, base, index } => {
                    *i = id;
                    walk_expr(base, next);
                    walk_expr(index, next);
                }
            }
        }
        fn walk_stmt(s: &mut Stmt, next: &mut NodeId) {
            let id = *next;
            *next += 1;
            match s {
                Stmt::Let { id: i, expr, .. }
                | Stmt::Assign { id: i, expr, .. }
                | Stmt::ExprStmt { id: i, expr } => {
                    *i = id;
                    walk_expr(expr, next);
                }
                Stmt::If {
                    id: i,
                    cond,
                    then_block,
                    else_block,
                } => {
                    *i = id;
                    walk_expr(cond, next);
                    for st in then_block {
                        walk_stmt(st, next);
                    }
                    if let Some(eb) = else_block {
                        for st in eb {
                            walk_stmt(st, next);
                        }
                    }
                }
                Stmt::While { id: i, cond, body } => {
                    *i = id;
                    walk_expr(cond, next);
                    for st in body {
                        walk_stmt(st, next);
                    }
                }
                Stmt::For {
                    id: i,
                    iterable,
                    body,
                    ..
                }
                | Stmt::FlorLoop {
                    id: i,
                    iterable,
                    body,
                    ..
                } => {
                    *i = id;
                    walk_expr(iterable, next);
                    for st in body {
                        walk_stmt(st, next);
                    }
                }
                Stmt::WithCheckpointing { id: i, body, .. } => {
                    *i = id;
                    for st in body {
                        walk_stmt(st, next);
                    }
                }
            }
        }
        for s in &mut self.stmts {
            walk_stmt(s, &mut next);
        }
    }

    /// Visit every statement with its [`StmtPath`].
    pub fn visit_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt, &StmtPath)) {
        fn walk<'a>(
            stmts: &'a [Stmt],
            prefix: &mut StmtPath,
            f: &mut impl FnMut(&'a Stmt, &StmtPath),
        ) {
            for (idx, s) in stmts.iter().enumerate() {
                prefix.push((0, idx));
                f(s, prefix);
                prefix.pop();
                for (sel, block) in s.blocks().into_iter().enumerate() {
                    // Extend the last hop to note which block we descend into.
                    prefix.push((sel, idx));
                    walk(block, prefix, f);
                    prefix.pop();
                }
            }
        }
        let mut prefix = Vec::new();
        walk(&self.stmts, &mut prefix, f);
    }

    /// Borrow the statement block at `path[..path.len()-1]` hops and return
    /// `(block, last index)`. Returns `None` for invalid paths.
    pub fn block_at_mut(&mut self, path: &StmtPath) -> Option<(&mut Vec<Stmt>, usize)> {
        if path.is_empty() {
            return None;
        }
        let mut block: &mut Vec<Stmt> = &mut self.stmts;
        for (hop, &(sel, idx)) in path.iter().enumerate() {
            if hop == path.len() - 1 {
                return Some((block, idx));
            }
            let stmt = block.get_mut(idx)?;
            let mut blocks = stmt.blocks_mut();
            if sel >= blocks.len() {
                return None;
            }
            block = blocks.swap_remove(sel);
        }
        None
    }

    /// Insert `stmt` at `path` (the statement currently at that position
    /// shifts right). Returns false for invalid paths. An index equal to
    /// the block length appends.
    pub fn insert_at(&mut self, path: &StmtPath, stmt: Stmt) -> bool {
        match self.block_at_mut(path) {
            Some((block, idx)) if idx <= block.len() => {
                block.insert(idx, stmt);
                true
            }
            _ => false,
        }
    }

    /// Total node count (statements + expressions).
    pub fn node_count(&self) -> usize {
        let mut count = 0usize;
        self.visit_stmts(&mut |s, _| {
            count += 1;
            fn count_expr(e: &Expr, count: &mut usize) {
                *count += 1;
                for c in e.children() {
                    count_expr(c, count);
                }
            }
            for e in s.exprs() {
                count_expr(e, &mut count);
            }
        });
        count
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::to_source(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn labels_distinguish_kinds() {
        let p = parse("let x = 1;\nx = 2;\nflor.log(\"a\", x);").unwrap();
        let labels: Vec<String> = p.stmts.iter().map(Stmt::label).collect();
        assert_eq!(labels, vec!["let:x", "assign:x", "expr"]);
    }

    #[test]
    fn assign_ids_is_canonical() {
        let src = "let x = 1 + 2;\nif x > 1 { flor.log(\"x\", x); }";
        let a = parse(src).unwrap();
        let b = parse(src).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn visit_stmts_paths() {
        let p = parse(
            "let a = 1;\nfor e in flor.loop(\"epoch\", range(0, 3)) {\n  let b = 2;\n  flor.log(\"b\", b);\n}",
        )
        .unwrap();
        let mut seen = Vec::new();
        p.visit_stmts(&mut |s, path| seen.push((s.label(), path.clone())));
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0].1, vec![(0, 0)]);
        assert_eq!(seen[1].1, vec![(0, 1)]); // the flor loop
        assert_eq!(seen[2].1, vec![(0, 1), (0, 0)]); // let b inside
        assert_eq!(seen[3].1, vec![(0, 1), (0, 1)]); // flor.log inside
    }

    #[test]
    fn insert_at_nested_path() {
        let mut p = parse("for e in flor.loop(\"epoch\", range(0, 3)) {\n  let b = 2;\n}").unwrap();
        let new_stmt = parse("flor.log(\"new\", 1);").unwrap().stmts.remove(0);
        // Path: descend into top-level stmt 0 via block selector 0, insert
        // at index 1 (after `let b = 2;`).
        assert!(p.insert_at(&vec![(0, 0), (0, 1)], new_stmt.clone()));
        // inserted after `let b = 2;` (index 1 within the loop body)
        match &p.stmts[0] {
            Stmt::FlorLoop { body, .. } => {
                assert_eq!(body.len(), 2);
                assert_eq!(body[1].label(), "expr");
            }
            _ => panic!("expected flor loop"),
        }
        // invalid paths rejected
        assert!(!p.insert_at(&vec![(0, 9), (0, 0)], new_stmt.clone()));
        assert!(!p.insert_at(&vec![], new_stmt));
    }

    #[test]
    fn node_count_counts_all() {
        let p = parse("let x = 1 + 2;").unwrap();
        // stmt + binary + 2 ints = 4
        assert_eq!(p.node_count(), 4);
    }

    #[test]
    fn if_blocks_exposed() {
        let p = parse("if 1 < 2 { let a = 1; } else { let b = 2; }").unwrap();
        let blocks = p.stmts[0].blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0][0].label(), "let:a");
        assert_eq!(blocks[1][0].label(), "let:b");
    }
}
