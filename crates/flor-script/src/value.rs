//! Runtime values, the object heap, and self-contained state snapshots.
//!
//! Snapshots are the substance of `flor.checkpointing`: at a checkpoint-loop
//! iteration boundary the interpreter can serialize *all* live state (the
//! flat environment plus every reachable heap object) to text. Restoring
//! that text into a fresh interpreter resumes execution bit-identically —
//! the invariant hindsight replay is built on.

use flor_ml::{Dataset, Matrix, Mlp};
use std::collections::BTreeMap;
use std::fmt;

/// A runtime value. Models and datasets live on the [`Heap`] and are
/// referenced by handle so `train_step` can mutate them in place.
#[derive(Debug, Clone, PartialEq)]
pub enum RtValue {
    /// Absence of a value (`none`).
    None,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// List.
    List(Vec<RtValue>),
    /// Handle to a model on the heap.
    Model(usize),
    /// Handle to a dataset on the heap.
    Dataset(usize),
}

impl RtValue {
    /// Truthiness (Python-like).
    pub fn truthy(&self) -> bool {
        match self {
            RtValue::None => false,
            RtValue::Bool(b) => *b,
            RtValue::Int(i) => *i != 0,
            RtValue::Float(f) => *f != 0.0,
            RtValue::Str(s) => !s.is_empty(),
            RtValue::List(l) => !l.is_empty(),
            RtValue::Model(_) | RtValue::Dataset(_) => true,
        }
    }

    /// Numeric coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            RtValue::Int(i) => Some(*i as f64),
            RtValue::Float(f) => Some(*f),
            RtValue::Bool(b) => Some(*b as u8 as f64),
            _ => None,
        }
    }

    /// Integer coercion (exact).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            RtValue::Int(i) => Some(*i),
            RtValue::Bool(b) => Some(*b as i64),
            RtValue::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Human-readable rendering (what `flor.log` records as text).
    pub fn display_text(&self) -> String {
        match self {
            RtValue::None => "none".to_string(),
            RtValue::Int(i) => i.to_string(),
            RtValue::Float(f) => format!("{f:?}"),
            RtValue::Bool(b) => b.to_string(),
            RtValue::Str(s) => s.clone(),
            RtValue::List(items) => {
                let inner: Vec<String> = items.iter().map(RtValue::display_text).collect();
                format!("[{}]", inner.join(", "))
            }
            RtValue::Model(h) => format!("<model#{h}>"),
            RtValue::Dataset(h) => format!("<dataset#{h}>"),
        }
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_text())
    }
}

/// Heap of mutable objects referenced by [`RtValue`] handles.
#[derive(Debug, Default, Clone)]
pub struct Heap {
    /// Models (checkpointable training state).
    pub models: Vec<Mlp>,
    /// Datasets.
    pub datasets: Vec<Dataset>,
}

impl Heap {
    /// Allocate a model, returning its handle.
    pub fn alloc_model(&mut self, m: Mlp) -> usize {
        self.models.push(m);
        self.models.len() - 1
    }

    /// Allocate a dataset, returning its handle.
    pub fn alloc_dataset(&mut self, d: Dataset) -> usize {
        self.datasets.push(d);
        self.datasets.len() - 1
    }
}

/// Serialize a dataset to exact text (matrix hex-bits, labels, classes).
pub fn dataset_to_text(d: &Dataset) -> String {
    let labels: Vec<String> = d.y.iter().map(usize::to_string).collect();
    format!("{};{};{}", d.n_classes, labels.join(","), d.x.to_text())
}

/// Parse [`dataset_to_text`] output.
pub fn dataset_from_text(s: &str) -> Result<Dataset, String> {
    let mut parts = s.splitn(3, ';');
    let k: usize = parts
        .next()
        .ok_or("missing n_classes")?
        .parse()
        .map_err(|e| format!("n_classes: {e}"))?;
    let labels_part = parts.next().ok_or("missing labels")?;
    let y: Vec<usize> = if labels_part.is_empty() {
        Vec::new()
    } else {
        labels_part
            .split(',')
            .map(|t| t.parse().map_err(|e| format!("label: {e}")))
            .collect::<Result<_, _>>()?
    };
    let x = Matrix::from_text(parts.next().ok_or("missing matrix")?)?;
    if x.rows != y.len() {
        return Err(format!("matrix rows {} != labels {}", x.rows, y.len()));
    }
    Ok(Dataset { x, y, n_classes: k })
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

fn write_raw(s: &str, out: &mut String) {
    out.push_str(&s.len().to_string());
    out.push(':');
    out.push_str(s);
}

fn write_value(v: &RtValue, heap: &Heap, out: &mut String) -> Result<(), String> {
    match v {
        RtValue::None => out.push('N'),
        RtValue::Int(i) => {
            out.push('I');
            out.push_str(&i.to_string());
        }
        RtValue::Float(f) => {
            out.push('F');
            out.push_str(&format!("{:016x}", f.to_bits()));
        }
        RtValue::Bool(b) => {
            out.push('B');
            out.push(if *b { '1' } else { '0' });
        }
        RtValue::Str(s) => {
            out.push('S');
            write_raw(s, out);
        }
        RtValue::List(items) => {
            out.push('L');
            out.push_str(&items.len().to_string());
            for item in items {
                out.push(' ');
                write_value(item, heap, out)?;
            }
        }
        RtValue::Model(h) => {
            let m = heap
                .models
                .get(*h)
                .ok_or_else(|| format!("dangling model handle {h}"))?;
            out.push('M');
            write_raw(&m.to_text(), out);
        }
        RtValue::Dataset(h) => {
            let d = heap
                .datasets
                .get(*h)
                .ok_or_else(|| format!("dangling dataset handle {h}"))?;
            out.push('D');
            write_raw(&dataset_to_text(d), out);
        }
    }
    Ok(())
}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.s[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of snapshot")?;
        self.pos += c.len_utf8();
        Ok(c)
    }

    fn skip_space(&mut self) {
        while self.peek() == Some(' ') {
            self.pos += 1;
        }
    }

    /// Read digits (and optional leading '-') until a non-digit.
    fn read_int(&mut self) -> Result<i64, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.s[start..self.pos]
            .parse()
            .map_err(|e| format!("bad int at {}: {e}", start))
    }

    /// Read `<len>:<raw bytes>`.
    fn read_raw(&mut self) -> Result<&'a str, String> {
        let len = self.read_int()? as usize;
        if self.bump()? != ':' {
            return Err("expected ':' in raw segment".to_string());
        }
        let end = self.pos + len;
        if end > self.s.len() {
            return Err("raw segment overruns snapshot".to_string());
        }
        let raw = &self.s[self.pos..end];
        self.pos = end;
        Ok(raw)
    }
}

fn read_value(c: &mut Cursor<'_>, heap: &mut Heap) -> Result<RtValue, String> {
    c.skip_space();
    match c.bump()? {
        'N' => Ok(RtValue::None),
        'I' => Ok(RtValue::Int(c.read_int()?)),
        'F' => {
            let end = c.pos + 16;
            if end > c.s.len() {
                return Err("truncated float".to_string());
            }
            let bits = u64::from_str_radix(&c.s[c.pos..end], 16)
                .map_err(|e| format!("float bits: {e}"))?;
            c.pos = end;
            Ok(RtValue::Float(f64::from_bits(bits)))
        }
        'B' => Ok(RtValue::Bool(c.bump()? == '1')),
        'S' => Ok(RtValue::Str(c.read_raw()?.to_string())),
        'L' => {
            let n = c.read_int()? as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_value(c, heap)?);
            }
            Ok(RtValue::List(items))
        }
        'M' => {
            let text = c.read_raw()?;
            let m = Mlp::from_text(text)?;
            Ok(RtValue::Model(heap.alloc_model(m)))
        }
        'D' => {
            let text = c.read_raw()?;
            let d = dataset_from_text(text)?;
            Ok(RtValue::Dataset(heap.alloc_dataset(d)))
        }
        other => Err(format!("unknown value tag {other:?}")),
    }
}

/// Serialize an environment + reachable heap objects to a self-contained
/// snapshot string. Variables are written in sorted order for determinism.
pub fn snapshot_state(env: &BTreeMap<String, RtValue>, heap: &Heap) -> Result<String, String> {
    let mut out = String::from("SNAP1 ");
    out.push_str(&env.len().to_string());
    for (name, value) in env {
        out.push(' ');
        write_raw(name, &mut out);
        out.push(' ');
        write_value(value, heap, &mut out)?;
    }
    Ok(out)
}

/// Rebuild `(env, heap)` from a snapshot string.
pub fn restore_state(snapshot: &str) -> Result<(BTreeMap<String, RtValue>, Heap), String> {
    let rest = snapshot
        .strip_prefix("SNAP1 ")
        .ok_or("bad snapshot header")?;
    let mut c = Cursor { s: rest, pos: 0 };
    let n = c.read_int()? as usize;
    let mut env = BTreeMap::new();
    let mut heap = Heap::default();
    for _ in 0..n {
        c.skip_space();
        let name = c.read_raw()?.to_string();
        let value = read_value(&mut c, &mut heap)?;
        env.insert(name, value);
    }
    Ok((env, heap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_ml::gaussian_blobs;

    fn round_trip(env: BTreeMap<String, RtValue>, heap: Heap) {
        let snap = snapshot_state(&env, &heap).unwrap();
        let (env2, heap2) = restore_state(&snap).unwrap();
        assert_eq!(env.len(), env2.len());
        for (name, v) in &env {
            let v2 = &env2[name];
            match (v, v2) {
                (RtValue::Model(a), RtValue::Model(b)) => {
                    assert_eq!(heap.models[*a], heap2.models[*b]);
                }
                (RtValue::Dataset(a), RtValue::Dataset(b)) => {
                    let (da, db) = (&heap.datasets[*a], &heap2.datasets[*b]);
                    assert_eq!(da.x, db.x);
                    assert_eq!(da.y, db.y);
                }
                _ => assert_eq!(v, v2),
            }
        }
    }

    #[test]
    fn scalars_round_trip() {
        let mut env = BTreeMap::new();
        env.insert("n".into(), RtValue::None);
        env.insert("i".into(), RtValue::Int(-42));
        env.insert("f".into(), RtValue::Float(0.1 + 0.2));
        env.insert("b".into(), RtValue::Bool(true));
        env.insert("s".into(), RtValue::Str("spaces and\nnewlines: 7:".into()));
        round_trip(env, Heap::default());
    }

    #[test]
    fn nested_lists_round_trip() {
        let mut env = BTreeMap::new();
        env.insert(
            "l".into(),
            RtValue::List(vec![
                RtValue::Int(1),
                RtValue::List(vec![RtValue::Str("x".into()), RtValue::None]),
                RtValue::Float(2.5),
            ]),
        );
        round_trip(env, Heap::default());
    }

    #[test]
    fn heap_objects_round_trip() {
        let mut heap = Heap::default();
        let mut m = Mlp::new(3, 4, 2, 7);
        let ds = gaussian_blobs(20, 3, 2, 2.0, 3);
        m.train_step(&ds, 0.1);
        let mh = heap.alloc_model(m);
        let dh = heap.alloc_dataset(ds);
        let mut env = BTreeMap::new();
        env.insert("net".into(), RtValue::Model(mh));
        env.insert("data".into(), RtValue::Dataset(dh));
        round_trip(env, heap);
    }

    #[test]
    fn nan_float_snapshot() {
        let mut env = BTreeMap::new();
        env.insert("x".into(), RtValue::Float(f64::NAN));
        let snap = snapshot_state(&env, &Heap::default()).unwrap();
        let (env2, _) = restore_state(&snap).unwrap();
        match env2["x"] {
            RtValue::Float(f) => assert!(f.is_nan()),
            _ => panic!(),
        }
    }

    #[test]
    fn dataset_text_round_trip() {
        let ds = gaussian_blobs(10, 2, 3, 1.0, 5);
        let back = dataset_from_text(&dataset_to_text(&ds)).unwrap();
        assert_eq!(ds.x, back.x);
        assert_eq!(ds.y, back.y);
        assert_eq!(ds.n_classes, back.n_classes);
    }

    #[test]
    fn dangling_handle_errors() {
        let mut env = BTreeMap::new();
        env.insert("m".into(), RtValue::Model(99));
        assert!(snapshot_state(&env, &Heap::default()).is_err());
    }

    #[test]
    fn malformed_snapshots_rejected() {
        assert!(restore_state("garbage").is_err());
        assert!(restore_state("SNAP1 1 3:abc").is_err()); // missing value
        assert!(restore_state("SNAP1 1 3:abc Z").is_err()); // bad tag
        assert!(restore_state("SNAP1 1 99:abc I1").is_err()); // raw overrun
    }

    #[test]
    fn truthiness() {
        assert!(!RtValue::None.truthy());
        assert!(!RtValue::Int(0).truthy());
        assert!(RtValue::Int(1).truthy());
        assert!(!RtValue::Str(String::new()).truthy());
        assert!(RtValue::List(vec![RtValue::None]).truthy());
        assert!(!RtValue::List(vec![]).truthy());
    }

    #[test]
    fn display_text_forms() {
        assert_eq!(RtValue::Float(2.0).display_text(), "2.0");
        assert_eq!(
            RtValue::List(vec![RtValue::Int(1), RtValue::Str("a".into())]).display_text(),
            "[1, a]"
        );
        assert_eq!(RtValue::Model(3).display_text(), "<model#3>");
    }
}
