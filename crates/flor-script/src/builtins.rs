//! Builtin functions callable from florscript.
//!
//! Three groups:
//! * general: `range`, `len`, `print`, conversions, math, `randint`;
//! * simulated compute: `work(units)` — a deterministic spin that stands in
//!   for expensive pipeline stages, letting benches measure how much
//!   computation hindsight replay *avoids*;
//! * ML bridge into `flor-ml`: datasets, models, `train_step`,
//!   `eval_model`, `poison` — the Fig. 5 training loop's vocabulary.

use crate::interp::{Interpreter, RtError, RtResult};
use crate::value::RtValue;
use flor_ml::{acc_recall, first_page_dataset, gaussian_blobs, poison_labels, Mlp};
use rand::Rng;

/// Dispatch a builtin call.
pub fn call(interp: &mut Interpreter, name: &str, args: Vec<RtValue>) -> RtResult<RtValue> {
    match name {
        "range" => builtin_range(args),
        "len" => builtin_len(interp, args),
        "print" => {
            let parts: Vec<String> = args.iter().map(RtValue::display_text).collect();
            interp.stdout.push(parts.join(" "));
            Ok(RtValue::None)
        }
        "str" => one(args, "str").map(|v| RtValue::Str(v.display_text())),
        "int" => {
            let v = one(args, "int")?;
            match &v {
                RtValue::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(RtValue::Int)
                    .map_err(|e| RtError::new(format!("int({s:?}): {e}"))),
                RtValue::Float(f) => Ok(RtValue::Int(*f as i64)),
                _ => v
                    .as_i64()
                    .map(RtValue::Int)
                    .ok_or_else(|| RtError::new("int() expects a number or string")),
            }
        }
        "float" => {
            let v = one(args, "float")?;
            match &v {
                RtValue::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(RtValue::Float)
                    .map_err(|e| RtError::new(format!("float({s:?}): {e}"))),
                _ => v
                    .as_f64()
                    .map(RtValue::Float)
                    .ok_or_else(|| RtError::new("float() expects a number or string")),
            }
        }
        "abs" => {
            let v = one(args, "abs")?;
            match v {
                RtValue::Int(i) => Ok(RtValue::Int(i.abs())),
                RtValue::Float(f) => Ok(RtValue::Float(f.abs())),
                _ => Err(RtError::new("abs() expects a number")),
            }
        }
        "min" | "max" => {
            if args.is_empty() {
                return Err(RtError::new(format!("{name}() needs arguments")));
            }
            let items = if args.len() == 1 {
                match &args[0] {
                    RtValue::List(l) => l.clone(),
                    _ => return Err(RtError::new(format!("{name}(single) expects a list"))),
                }
            } else {
                args
            };
            let mut best: Option<f64> = None;
            let mut best_v = RtValue::None;
            for item in items {
                let f = item
                    .as_f64()
                    .ok_or_else(|| RtError::new(format!("{name}() expects numbers")))?;
                let better = match best {
                    None => true,
                    Some(b) => {
                        if name == "min" {
                            f < b
                        } else {
                            f > b
                        }
                    }
                };
                if better {
                    best = Some(f);
                    best_v = item;
                }
            }
            Ok(best_v)
        }
        "sum" => {
            let v = one(args, "sum")?;
            match v {
                RtValue::List(items) => {
                    let mut int_acc: i64 = 0;
                    let mut float_acc = 0.0f64;
                    let mut all_int = true;
                    for item in &items {
                        match item {
                            RtValue::Int(i) => {
                                int_acc = int_acc.wrapping_add(*i);
                                float_acc += *i as f64;
                            }
                            RtValue::Float(f) => {
                                all_int = false;
                                float_acc += f;
                            }
                            _ => return Err(RtError::new("sum() expects numbers")),
                        }
                    }
                    if all_int {
                        Ok(RtValue::Int(int_acc))
                    } else {
                        Ok(RtValue::Float(float_acc))
                    }
                }
                _ => Err(RtError::new("sum() expects a list")),
            }
        }
        "append" => {
            if args.len() != 2 {
                return Err(RtError::new("append(list, value)"));
            }
            let mut it = args.into_iter();
            // audit: allow(panic) — the len()==2 check above guarantees
            // both `next()` calls succeed (covers the next two lines).
            let list = it.next().expect("len checked");
            let v = it.next().expect("len checked"); // audit: allow(panic) — len checked above
            match list {
                RtValue::List(mut items) => {
                    items.push(v);
                    Ok(RtValue::List(items))
                }
                _ => Err(RtError::new("append() expects a list")),
            }
        }
        "sqrt" | "exp" | "ln" | "floor" | "round" => {
            let v = one(args, name)?;
            let f = v
                .as_f64()
                .ok_or_else(|| RtError::new(format!("{name}() expects a number")))?;
            let out = match name {
                "sqrt" => f.sqrt(),
                "exp" => f.exp(),
                "ln" => f.ln(),
                "floor" => return Ok(RtValue::Int(f.floor() as i64)),
                "round" => return Ok(RtValue::Int(f.round() as i64)),
                // audit: allow(panic) — the outer match arm admits exactly
                // the five names handled above.
                _ => unreachable!(),
            };
            Ok(RtValue::Float(out))
        }
        "randint" => {
            if args.len() != 2 {
                return Err(RtError::new("randint(lo, hi)"));
            }
            let lo = args[0]
                .as_i64()
                .ok_or_else(|| RtError::new("randint lo must be an int"))?;
            let hi = args[1]
                .as_i64()
                .ok_or_else(|| RtError::new("randint hi must be an int"))?;
            if lo >= hi {
                return Err(RtError::new("randint: lo must be < hi"));
            }
            Ok(RtValue::Int(interp.rng.gen_range(lo..hi)))
        }
        "work" => {
            // Deterministic spin standing in for real compute; cost is
            // proportional to `units` and recorded in stats.
            let v = one(args, "work")?;
            let units = v
                .as_i64()
                .ok_or_else(|| RtError::new("work(units) expects an int"))?
                .max(0) as u64;
            let mut x = 0x9E3779B97F4A7C15u64;
            for i in 0..units.saturating_mul(2000) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            interp.stats.work_units += units;
            Ok(RtValue::Int((x >> 33) as i64))
        }
        // --- ML bridge -----------------------------------------------------
        "load_dataset" => {
            if args.len() != 3 {
                return Err(RtError::new("load_dataset(kind, n, seed)"));
            }
            let kind = match &args[0] {
                RtValue::Str(s) => s.clone(),
                _ => return Err(RtError::new("dataset kind must be a string")),
            };
            let n = args[1]
                .as_i64()
                .ok_or_else(|| RtError::new("dataset n must be an int"))?
                as usize;
            let seed = args[2]
                .as_i64()
                .ok_or_else(|| RtError::new("dataset seed must be an int"))?
                as u64;
            let ds = match kind.as_str() {
                "first_page" => first_page_dataset(n, seed),
                "blobs" => gaussian_blobs(n, 4, 3, 4.0, seed),
                other => return Err(RtError::new(format!("unknown dataset kind {other:?}"))),
            };
            Ok(RtValue::Dataset(interp.heap.alloc_dataset(ds)))
        }
        "make_model" => {
            if args.len() != 4 {
                return Err(RtError::new("make_model(d_in, hidden, d_out, seed)"));
            }
            let nums: Vec<i64> = args
                .iter()
                .map(|a| {
                    a.as_i64()
                        .ok_or_else(|| RtError::new("make_model expects ints"))
                })
                .collect::<RtResult<_>>()?;
            let m = Mlp::new(
                nums[0] as usize,
                nums[1] as usize,
                nums[2] as usize,
                nums[3] as u64,
            );
            Ok(RtValue::Model(interp.heap.alloc_model(m)))
        }
        "train_step" => {
            if args.len() != 3 {
                return Err(RtError::new("train_step(model, dataset, lr)"));
            }
            let mh = model_handle(&args[0])?;
            let dh = dataset_handle(&args[1])?;
            let lr = args[2]
                .as_f64()
                .ok_or_else(|| RtError::new("lr must be a number"))?;
            let ds = interp
                .heap
                .datasets
                .get(dh)
                .cloned()
                .ok_or_else(|| RtError::new("dangling dataset handle"))?;
            let model = interp
                .heap
                .models
                .get_mut(mh)
                .ok_or_else(|| RtError::new("dangling model handle"))?;
            let loss = model.train_step(&ds, lr);
            interp.stats.work_units += ds.len() as u64;
            Ok(RtValue::Float(loss))
        }
        "eval_model" => {
            if args.len() != 2 {
                return Err(RtError::new("eval_model(model, dataset)"));
            }
            let mh = model_handle(&args[0])?;
            let dh = dataset_handle(&args[1])?;
            let ds = interp
                .heap
                .datasets
                .get(dh)
                .ok_or_else(|| RtError::new("dangling dataset handle"))?;
            let model = interp
                .heap
                .models
                .get(mh)
                .ok_or_else(|| RtError::new("dangling model handle"))?;
            let preds = model.predict(&ds.x);
            let (acc, recall) = acc_recall(&preds, &ds.y, ds.n_classes);
            interp.stats.work_units += (ds.len() / 4) as u64;
            Ok(RtValue::List(vec![
                RtValue::Float(acc),
                RtValue::Float(recall),
            ]))
        }
        "num_batches" => {
            if args.len() != 2 {
                return Err(RtError::new("num_batches(dataset, batch_size)"));
            }
            let dh = dataset_handle(&args[0])?;
            let bs = args[1]
                .as_i64()
                .ok_or_else(|| RtError::new("batch_size must be an int"))?;
            if bs <= 0 {
                return Err(RtError::new("batch_size must be positive"));
            }
            let n = interp
                .heap
                .datasets
                .get(dh)
                .ok_or_else(|| RtError::new("dangling dataset handle"))?
                .len() as i64;
            Ok(RtValue::Int((n + bs - 1) / bs))
        }
        "batch" => {
            if args.len() != 3 {
                return Err(RtError::new("batch(dataset, start, end)"));
            }
            let dh = dataset_handle(&args[0])?;
            let start = args[1]
                .as_i64()
                .ok_or_else(|| RtError::new("start must be an int"))?
                .max(0) as usize;
            let end = args[2]
                .as_i64()
                .ok_or_else(|| RtError::new("end must be an int"))?
                .max(0) as usize;
            let ds = interp
                .heap
                .datasets
                .get(dh)
                .ok_or_else(|| RtError::new("dangling dataset handle"))?;
            let b = ds.batch(start.min(ds.len()), end);
            Ok(RtValue::Dataset(interp.heap.alloc_dataset(b)))
        }
        "poison" => {
            if args.len() != 2 {
                return Err(RtError::new("poison(dataset, frac)"));
            }
            let dh = dataset_handle(&args[0])?;
            let frac = args[1]
                .as_f64()
                .ok_or_else(|| RtError::new("frac must be a number"))?;
            let ds = interp
                .heap
                .datasets
                .get_mut(dh)
                .ok_or_else(|| RtError::new("dangling dataset handle"))?;
            let flipped = poison_labels(ds, frac.clamp(0.0, 1.0));
            Ok(RtValue::Int(flipped as i64))
        }
        other => Err(RtError::new(format!("unknown function {other:?}"))),
    }
}

fn one(mut args: Vec<RtValue>, name: &str) -> RtResult<RtValue> {
    if args.len() != 1 {
        return Err(RtError::new(format!("{name}() takes one argument")));
    }
    Ok(args.remove(0))
}

fn model_handle(v: &RtValue) -> RtResult<usize> {
    match v {
        RtValue::Model(h) => Ok(*h),
        other => Err(RtError::new(format!(
            "expected a model, got {}",
            other.display_text()
        ))),
    }
}

fn dataset_handle(v: &RtValue) -> RtResult<usize> {
    match v {
        RtValue::Dataset(h) => Ok(*h),
        other => Err(RtError::new(format!(
            "expected a dataset, got {}",
            other.display_text()
        ))),
    }
}

fn builtin_range(args: Vec<RtValue>) -> RtResult<RtValue> {
    let (lo, hi) = match args.len() {
        1 => (
            0,
            args[0]
                .as_i64()
                .ok_or_else(|| RtError::new("range() expects ints"))?,
        ),
        2 => (
            args[0]
                .as_i64()
                .ok_or_else(|| RtError::new("range() expects ints"))?,
            args[1]
                .as_i64()
                .ok_or_else(|| RtError::new("range() expects ints"))?,
        ),
        _ => return Err(RtError::new("range(hi) or range(lo, hi)")),
    };
    if hi < lo {
        return Ok(RtValue::List(vec![]));
    }
    if (hi - lo) > 10_000_000 {
        return Err(RtError::new("range too large (>10M)"));
    }
    Ok(RtValue::List((lo..hi).map(RtValue::Int).collect()))
}

fn builtin_len(interp: &Interpreter, args: Vec<RtValue>) -> RtResult<RtValue> {
    if args.len() != 1 {
        return Err(RtError::new("len() takes one argument"));
    }
    match &args[0] {
        RtValue::List(l) => Ok(RtValue::Int(l.len() as i64)),
        RtValue::Str(s) => Ok(RtValue::Int(s.chars().count() as i64)),
        RtValue::Dataset(h) => interp
            .heap
            .datasets
            .get(*h)
            .map(|d| RtValue::Int(d.len() as i64))
            .ok_or_else(|| RtError::new("dangling dataset handle")),
        other => Err(RtError::new(format!(
            "len() unsupported for {}",
            other.display_text()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NullRuntime;
    use crate::parser::parse;

    fn run_src(src: &str) -> Interpreter {
        let prog = parse(src).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&prog, &mut NullRuntime).unwrap();
        interp
    }

    #[test]
    fn range_variants() {
        let i = run_src("let a = range(3);\nlet b = range(2, 5);\nlet c = range(5, 2);");
        assert_eq!(i.env["a"].display_text(), "[0, 1, 2]");
        assert_eq!(i.env["b"].display_text(), "[2, 3, 4]");
        assert_eq!(i.env["c"].display_text(), "[]");
    }

    #[test]
    fn conversions() {
        let i = run_src(
            "let a = int(\"42\");\nlet b = float(\"2.5\");\nlet c = str(7);\nlet d = int(3.9);",
        );
        assert_eq!(i.env["a"], RtValue::Int(42));
        assert_eq!(i.env["b"], RtValue::Float(2.5));
        assert_eq!(i.env["c"], RtValue::Str("7".into()));
        assert_eq!(i.env["d"], RtValue::Int(3));
    }

    #[test]
    fn aggregates() {
        let i = run_src(
            "let mn = min([3, 1, 2]);\nlet mx = max(4, 9, 2);\nlet s = sum([1, 2, 3]);\nlet sf = sum([1.5, 2]);",
        );
        assert_eq!(i.env["mn"], RtValue::Int(1));
        assert_eq!(i.env["mx"], RtValue::Int(9));
        assert_eq!(i.env["s"], RtValue::Int(6));
        assert_eq!(i.env["sf"], RtValue::Float(3.5));
    }

    #[test]
    fn append_returns_new_list() {
        let i = run_src("let a = [1];\nlet b = append(a, 2);\nlet la = len(a);\nlet lb = len(b);");
        assert_eq!(i.env["la"], RtValue::Int(1));
        assert_eq!(i.env["lb"], RtValue::Int(2));
    }

    #[test]
    fn math_functions() {
        let i = run_src("let a = sqrt(9.0);\nlet b = floor(2.9);\nlet c = round(2.5);");
        assert_eq!(i.env["a"], RtValue::Float(3.0));
        assert_eq!(i.env["b"], RtValue::Int(2));
        assert_eq!(i.env["c"], RtValue::Int(3));
    }

    #[test]
    fn print_captured() {
        let i = run_src("print(\"hello\", 42);");
        assert_eq!(i.stdout, vec!["hello 42"]);
    }

    #[test]
    fn randint_deterministic_per_seed() {
        let a = run_src("let r = randint(0, 1000000);").env["r"].clone();
        let b = run_src("let r = randint(0, 1000000);").env["r"].clone();
        assert_eq!(a, b); // same interpreter seed → same value
    }

    #[test]
    fn work_is_deterministic_and_counted() {
        let a = run_src("let x = work(3);");
        let b = run_src("let x = work(3);");
        assert_eq!(a.env["x"], b.env["x"]);
        assert_eq!(a.stats.work_units, 3);
    }

    #[test]
    fn ml_pipeline_trains() {
        let i = run_src(
            r#"
let data = load_dataset("first_page", 120, 42);
let net = make_model(5, 8, 2, 7);
let losses = [];
for e in range(0, 30) {
    losses = append(losses, train_step(net, data, 0.5));
}
let m = eval_model(net, data);
let acc = m[0];
let recall = m[1];
let n = len(data);
"#,
        );
        assert_eq!(i.env["n"], RtValue::Int(120));
        let acc = i.env["acc"].as_f64().unwrap();
        assert!(acc > 0.7, "acc={acc}");
        let first = match &i.env["losses"] {
            RtValue::List(l) => l[0].as_f64().unwrap(),
            _ => panic!(),
        };
        let last = match &i.env["losses"] {
            RtValue::List(l) => l.last().unwrap().as_f64().unwrap(),
            _ => panic!(),
        };
        assert!(last < first);
    }

    #[test]
    fn batching_builtins() {
        let i = run_src(
            "let d = load_dataset(\"blobs\", 100, 1);\nlet nb = num_batches(d, 32);\nlet b = batch(d, 0, 32);\nlet lb = len(b);",
        );
        assert_eq!(i.env["nb"], RtValue::Int(4));
        assert_eq!(i.env["lb"], RtValue::Int(32));
    }

    #[test]
    fn poison_flips() {
        let i = run_src("let d = load_dataset(\"first_page\", 50, 3);\nlet k = poison(d, 0.1);");
        assert_eq!(i.env["k"], RtValue::Int(5));
    }

    #[test]
    fn errors_are_reported() {
        for bad in [
            "len(1);",
            "unknown_fn();",
            "range(1, 2, 3);",
            "train_step(1, 2, 3);",
            "load_dataset(\"nope\", 10, 1);",
            "randint(5, 5);",
            "num_batches(load_dataset(\"blobs\", 10, 1), 0);",
        ] {
            let prog = parse(bad).unwrap();
            assert!(
                Interpreter::new().run(&prog, &mut NullRuntime).is_err(),
                "expected error for {bad:?}"
            );
        }
    }
}
