//! Recursive-descent parser for florscript.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::lexer::{lex, SpannedTok, Tok};
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse `src` into a [`Program`] with canonical node ids.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_eof() {
        stmts.push(p.stmt()?);
    }
    let mut prog = Program { stmts };
    prog.assign_ids();
    Ok(prog)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {p:?}, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::Punct("}") {
            if self.at_eof() {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.is_kw("let") {
            self.bump();
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let expr = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let { id: 0, name, expr });
        }
        if self.is_kw("if") {
            self.bump();
            let cond = self.expr()?;
            let then_block = self.block()?;
            let else_block = if self.is_kw("else") {
                self.bump();
                if self.is_kw("if") {
                    // else-if sugar: wrap the nested if in a block.
                    let nested = self.stmt()?;
                    Some(vec![nested])
                } else {
                    Some(self.block()?)
                }
            } else {
                None
            };
            return Ok(Stmt::If {
                id: 0,
                cond,
                then_block,
                else_block,
            });
        }
        if self.is_kw("while") {
            self.bump();
            let cond = self.expr()?;
            let body = self.block()?;
            return Ok(Stmt::While { id: 0, cond, body });
        }
        if self.is_kw("for") {
            self.bump();
            let var = self.expect_ident()?;
            if !self.is_kw("in") {
                return self.err("expected 'in' in for loop");
            }
            self.bump();
            let iterable = self.expr()?;
            let body = self.block()?;
            // `for x in flor.loop("name", iter)` is the instrumented form.
            if let Expr::FlorCall { func, mut args, .. } = iterable {
                if func == "loop" {
                    if args.len() != 2 {
                        return self.err("flor.loop takes (name, iterable)");
                    }
                    // audit: allow(panic) — the len()==2 check right above
                    // makes both pops infallible.
                    let iter = args.pop().expect("len checked");
                    let name_expr = args.pop().expect("len checked"); // audit: allow(panic) — len checked above
                    let loop_name = match name_expr {
                        Expr::Str(_, s) => s,
                        _ => return self.err("flor.loop name must be a string literal"),
                    };
                    return Ok(Stmt::FlorLoop {
                        id: 0,
                        var,
                        loop_name,
                        iterable: iter,
                        body,
                    });
                }
                return self.err(format!("cannot iterate flor.{func}"));
            }
            return Ok(Stmt::For {
                id: 0,
                var,
                iterable,
                body,
            });
        }
        if self.is_kw("with") {
            self.bump();
            // with flor.checkpointing(a, b) { ... }
            let head = self.expr()?;
            let vars = match head {
                Expr::FlorCall { func, args, .. } if func == "checkpointing" => {
                    let mut vars = Vec::new();
                    for a in args {
                        match a {
                            Expr::Ident(_, n) => vars.push(n),
                            _ => {
                                return self
                                    .err("flor.checkpointing arguments must be variable names")
                            }
                        }
                    }
                    vars
                }
                _ => return self.err("expected flor.checkpointing(...) after 'with'"),
            };
            let body = self.block()?;
            return Ok(Stmt::WithCheckpointing { id: 0, vars, body });
        }
        // Assignment: IDENT '=' ... (but not '==')
        if let Tok::Ident(name) = self.peek().clone() {
            if self.peek2() == &Tok::Punct("=") {
                self.bump();
                self.bump();
                let expr = self.expr()?;
                self.expect_punct(";")?;
                return Ok(Stmt::Assign { id: 0, name, expr });
            }
        }
        let expr = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::ExprStmt { id: 0, expr })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::Punct("||") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                id: 0,
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::Punct("&&") {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                id: 0,
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Punct("==") => Some(BinOp::Eq),
            Tok::Punct("!=") => Some(BinOp::Ne),
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">") => Some(BinOp::Gt),
            Tok::Punct(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Expr::Binary {
                id: 0,
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                id: 0,
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                id: 0,
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Punct("-") => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    id: 0,
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                })
            }
            Tok::Punct("!") => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    id: 0,
                    op: UnOp::Not,
                    expr: Box::new(expr),
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Tok::Punct("[") => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    e = Expr::Index {
                        id: 0,
                        base: Box::new(e),
                        index: Box::new(index),
                    };
                }
                Tok::Punct("(") => {
                    // Only bare identifiers are callable.
                    let name = match &e {
                        Expr::Ident(_, n) => n.clone(),
                        _ => return self.err("only named functions are callable"),
                    };
                    let args = self.call_args()?;
                    e = Expr::Call { id: 0, name, args };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if self.peek() != &Tok::Punct(")") {
            loop {
                args.push(self.expr()?);
                if self.peek() == &Tok::Punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Int(0, i))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::Float(0, x))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(0, s))
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Expr::Bool(0, true));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::Bool(0, false));
                    }
                    "none" => {
                        self.bump();
                        return Ok(Expr::NoneLit(0));
                    }
                    "flor" => {
                        // flor.func(args)
                        self.bump();
                        self.expect_punct(".")?;
                        let func = self.expect_ident()?;
                        let args = self.call_args()?;
                        return Ok(Expr::FlorCall { id: 0, func, args });
                    }
                    _ => {}
                }
                self.bump();
                Ok(Expr::Ident(0, name))
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("[") => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &Tok::Punct("]") {
                    loop {
                        items.push(self.expr()?);
                        if self.peek() == &Tok::Punct(",") {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect_punct("]")?;
                Ok(Expr::List(0, items))
            }
            other => self.err(format!("unexpected token {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Stmt};

    #[test]
    fn precedence() {
        let p = parse("let x = 1 + 2 * 3;").unwrap();
        match &p.stmts[0] {
            Stmt::Let { expr, .. } => match expr {
                Expr::Binary { op, rhs, .. } => {
                    assert_eq!(*op, BinOp::Add);
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                _ => panic!("expected binary"),
            },
            _ => panic!("expected let"),
        }
    }

    #[test]
    fn parens_override() {
        let p = parse("let x = (1 + 2) * 3;").unwrap();
        match &p.stmts[0] {
            Stmt::Let { expr, .. } => {
                assert!(matches!(expr, Expr::Binary { op: BinOp::Mul, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn flor_loop_recognised() {
        let p =
            parse("for e in flor.loop(\"epoch\", range(0, 5)) { flor.log(\"e\", e); }").unwrap();
        match &p.stmts[0] {
            Stmt::FlorLoop {
                var,
                loop_name,
                body,
                ..
            } => {
                assert_eq!(var, "e");
                assert_eq!(loop_name, "epoch");
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected flor loop, got {other:?}"),
        }
    }

    #[test]
    fn plain_for_loop() {
        let p = parse("for x in [1, 2, 3] { print(x); }").unwrap();
        assert!(matches!(&p.stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn with_checkpointing() {
        let p = parse("with flor.checkpointing(model, opt) { let a = 1; }").unwrap();
        match &p.stmts[0] {
            Stmt::WithCheckpointing { vars, body, .. } => {
                assert_eq!(vars, &vec!["model".to_string(), "opt".to_string()]);
                assert_eq!(body.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn else_if_chains() {
        let p = parse("if a == 1 { let x = 1; } else if a == 2 { let x = 2; } else { let x = 3; }")
            .unwrap();
        match &p.stmts[0] {
            Stmt::If { else_block, .. } => {
                let eb = else_block.as_ref().unwrap();
                assert!(matches!(&eb[0], Stmt::If { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn assignment_vs_equality() {
        let p = parse("x = 1;\nif x == 1 { x = 2; }").unwrap();
        assert!(matches!(&p.stmts[0], Stmt::Assign { .. }));
    }

    #[test]
    fn indexing_and_lists() {
        let p = parse("let v = [1, 2, 3][1];").unwrap();
        match &p.stmts[0] {
            Stmt::Let { expr, .. } => assert!(matches!(expr, Expr::Index { .. })),
            _ => panic!(),
        }
    }

    #[test]
    fn nested_calls() {
        let p = parse("let m = eval_model(net, batch(data, 0, 32));").unwrap();
        match &p.stmts[0] {
            Stmt::Let {
                expr: Expr::Call { name, args, .. },
                ..
            } => {
                assert_eq!(name, "eval_model");
                assert_eq!(args.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn errors_report_line() {
        let err = parse("let x = 1;\nlet y = ;").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("for x flor { }").is_err());
        assert!(parse("let = 3;").is_err());
        assert!(parse("if { }").is_err());
        assert!(parse("with foo() { }").is_err());
        assert!(parse("for x in flor.log(\"a\", 1) { }").is_err());
        assert!(parse("with flor.checkpointing(1) { }").is_err());
        assert!(parse("{ unopened").is_err());
    }

    #[test]
    fn unary_ops() {
        let p = parse("let x = -3 + !true;").unwrap();
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn fig5_training_script_parses() {
        // The reproduction of the paper's Fig. 5 training loop.
        let src = r#"
let labeled_data = load_dataset("first_page", 200, 42);
let hidden = flor.arg("hidden", 16);
let num_epochs = flor.arg("epochs", 5);
let lr = flor.arg("lr", 0.1);
let seed = flor.arg("seed", 9);
let net = make_model(5, hidden, 2, seed);
with flor.checkpointing(net) {
    for epoch in flor.loop("epoch", range(0, num_epochs)) {
        for step in flor.loop("step", range(0, num_batches(labeled_data, 32))) {
            let batch_data = batch(labeled_data, step * 32, (step + 1) * 32);
            let loss = train_step(net, batch_data, lr);
            flor.log("loss", loss);
        }
        let m = eval_model(net, labeled_data);
        flor.log("acc", m[0]);
        flor.log("recall", m[1]);
    }
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 7);
    }
}
