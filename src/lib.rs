//! # FlorDB (Rust) — Incremental Context Maintenance for the ML Lifecycle
//!
//! A from-scratch Rust reproduction of *Flow with FlorDB: Incremental
//! Context Maintenance for the Machine Learning Lifecycle* (CIDR 2025).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`df`] | columnar DataFrames (`pivot`, `join`, `latest`) |
//! | [`store`] | embedded relational engine (WAL, indexes, txn visibility) |
//! | [`git`] | gitlite change-context substrate (SHA-256, commits, diffs) |
//! | [`script`] | florscript: the instrumented mini-language |
//! | [`ml`] | deterministic SGD training substrate |
//! | [`diff`] | GumTree-style AST diff + statement propagation |
//! | [`record`] | record/replay: checkpoints, planning, parallelism |
//! | [`make`] | Make-lite build DAG (behavioral context) |
//! | [`view`] | incremental materialized views over the context tables |
//! | [`core`] | the Flor kernel: `log`/`arg`/`loop`/`commit`/`dataframe` |
//! | [`pipeline`] | the PDF Parser demo (paper §4) |
//!
//! ## Quickstart
//!
//! ```
//! use flordb::prelude::*;
//!
//! let flor = Flor::new("quickstart");
//! flor.set_filename("train.fl");
//! flor.for_each("epoch", 0..3, |flor, &e| {
//!     flor.log("loss", 1.0 / (e + 1) as f64);
//! });
//! flor.commit("first run").unwrap();
//!
//! let df = flor.dataframe(&["loss"]).unwrap();
//! assert_eq!(df.n_rows(), 3);
//! ```

pub use flor_core as core;
pub use flor_df as df;
pub use flor_diff as diff;
pub use flor_git as git;
pub use flor_make as make;
pub use flor_ml as ml;
pub use flor_pipeline as pipeline;
pub use flor_record as record;
pub use flor_script as script;
pub use flor_store as store;
pub use flor_view as view;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use flor_core::{backfill, run_script, Flor, RunOutcome};
    pub use flor_df::{AggFn, DataFrame, JoinKind, Value};
    pub use flor_git::{Repository, VirtualFs};
    pub use flor_make::{parse_makefile, Makefile};
    pub use flor_pipeline::{run_demo, CorpusConfig, PdfPipeline};
    pub use flor_record::{CheckpointPolicy, RunRecord};
    pub use flor_script::{parse, to_source, Interpreter, NullRuntime};
    pub use flor_view::{CatalogStats, ViewCatalog, ViewKey};
}
