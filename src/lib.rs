//! # FlorDB (Rust) — Incremental Context Maintenance for the ML Lifecycle
//!
//! A from-scratch Rust reproduction of *Flow with FlorDB: Incremental
//! Context Maintenance for the Machine Learning Lifecycle* (CIDR 2025).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`df`] | columnar DataFrames (`pivot`, `join`, `latest`) |
//! | [`store`] | embedded relational engine (WAL, indexes, txn visibility) |
//! | [`git`] | gitlite change-context substrate (SHA-256, commits, diffs) |
//! | [`script`] | florscript: the instrumented mini-language |
//! | [`ml`] | deterministic SGD training substrate |
//! | [`diff`] | GumTree-style AST diff + statement propagation |
//! | [`record`] | record/replay: checkpoints, planning, parallelism |
//! | [`make`] | Make-lite build DAG (behavioral context) |
//! | [`view`] | incremental materialized views + the canonical query plan |
//! | [`jobs`] | durable background scheduler (prioritized, cancellable, crash-resumable) |
//! | [`obs`] | zero-dependency metrics: counters, histograms, spans, events |
//! | [`core`] | the Flor kernel: `log`/`arg`/`loop`/`commit`/`query` |
//! | [`serve`] | multi-client dataframe server + read-only followers |
//! | [`pipeline`] | the PDF Parser demo (paper §4) |
//!
//! ## Querying the context
//!
//! Everything logged through the kernel is read back through **one lazy
//! query builder**, [`core::Flor::query`]: project the log names you
//! want, filter, deduplicate to the latest run per group, order, limit —
//! then `collect`. The plan lowers through three layers: index-backed
//! predicate pushdown in the store, an incrementally maintained
//! materialized view (deltas, not re-pivots), and a cheap dataframe
//! post-pass for whatever remains.
//!
//! ```
//! use flordb::prelude::*;
//!
//! let flor = Flor::new("quickstart");
//! flor.set_filename("train.fl");
//! for run in 0..3i64 {
//!     flor.for_each("epoch", 0..4, |flor, &e| {
//!         let lr = flor.arg("lr", 0.01 * (run + 1) as f64);
//!         flor.log("loss", 1.0 / (run + e + 1) as f64 * lr.as_f64().unwrap());
//!     });
//!     flor.commit("run").unwrap();
//! }
//!
//! // "Which epochs of the high-learning-rate runs lost the least?"
//! let df = flor
//!     .query(&["loss", "arg::lr"])
//!     .filter("arg::lr", CmpOp::Gt, 0.015)
//!     .order_by("loss", true)
//!     .limit(5)
//!     .collect()
//!     .unwrap();
//! assert_eq!(df.n_rows(), 5);
//!
//! // The legacy entrypoints are one-line wrappers over the same builder:
//! let pivot = flor.dataframe(&["loss"]).unwrap();
//! assert_eq!(pivot.n_rows(), 3 * 4);
//!
//! // And every lazy query equals its from-scratch oracle, cell for cell.
//! let oracle = flor
//!     .query(&["loss", "arg::lr"])
//!     .filter("arg::lr", CmpOp::Gt, 0.015)
//!     .order_by("loss", true)
//!     .limit(5)
//!     .collect_full()
//!     .unwrap();
//! assert_eq!(df, oracle);
//! ```
//!
//! `latest`-style registry reads (paper Fig. 6) ride the same plan:
//! `flor.query(&["acc"]).latest(&["document_value"]).collect()`.
//!
//! ## Background work
//!
//! Retroactive computation — hindsight backfill foremost — runs on the
//! [`jobs`] control plane instead of blocking the process:
//! [`core::Flor::submit_backfill`] returns a [`core::BackfillHandle`]
//! (status, live progress, per-version outcomes streaming in, `wait`,
//! durable `cancel`), recovered values land in live views version by
//! version through the change feed, and a job interrupted by a crash is
//! resumed automatically on the next [`core::Flor::open`]. The classic
//! synchronous [`core::backfill`] is submit-then-wait over the same path.
//! See `examples/background_backfill.rs` for the full workflow.
//!
//! ## Observability
//!
//! Every layer records into one shared [`obs`] registry:
//! [`core::Flor::metrics`] returns a consistent snapshot of commit/WAL/
//! checkpoint/compaction latency histograms, zone-map prune ratios, feed
//! queue depth and shed counts, job queue-wait vs run time, and view
//! hit/miss/rebuild counters — renderable as text or JSON. Per query,
//! `flor.query(..).explain()` executes the plan and returns a
//! [`core::ExplainReport`]: access path, segments pruned, rows examined
//! vs returned, and per-stage timings. See `examples/observability.rs`.
//! For scraping, [`obs::MetricsSnapshot::render_prometheus`] emits the
//! Prometheus exposition format, served over the wire by [`serve`]'s
//! `MetricsPrometheus` verb. Events carry a wall-clock timestamp and a
//! severity [`obs::Level`], filterable with
//! [`core::Flor::metrics`]'s snapshot (`events_at_least`).
//!
//! On top of the metrics sit **request traces** and the **slow-query
//! log**. Enable tracing ([`core::Flor::set_tracing`]) and every query —
//! local or served — records a hierarchical [`obs::Trace`]: middleware
//! verdicts, gate admission, plan execution down to the store scan with
//! zone-map pruning counts, each span nanosecond-timed. Traces land in a
//! bounded in-memory ring ([`obs::TraceStore`], retrievable by
//! [`obs::TraceId`]), cost two atomic loads per request when disabled,
//! and propagate over the wire: a [`serve`] client can originate the
//! trace id for a query (`query_traced`) and fetch the server-side span
//! tree afterwards (`Traces` verb). Arm a threshold
//! ([`core::Flor::set_slow_query_threshold`]) and every breaching
//! request is captured as a [`obs::SlowQueryRecord`] — full
//! [`core::ExplainReport`] plus the trace — in its own ring
//! (`SlowQueries` verb). The `Health` verb rounds out the ops surface:
//! epoch, WAL position, checkpoint/compaction counts, session and
//! in-flight occupancy, and follower replication lag. See
//! `examples/tracing.rs`.
//!
//! ## Serving
//!
//! [`serve`] puts many clients behind one instance: a session-oriented,
//! length-prefixed TCP protocol (std-only, thread-per-connection with a
//! bounded accept pool) where each session pins a snapshot at handshake
//! and every [`view::QueryPlan`] it submits executes at exactly that
//! epoch ([`core::Flor::run_plan_at`]) — results are repeatable, and
//! byte-identical to a local `collect_full` at the same epoch, no matter
//! how many commits land meanwhile. Composable middleware adds auth
//! tokens, per-session rate limits and request logging into [`obs`].
//! And because the protocol is read-only, a **second process** can serve
//! the same data: [`core::Flor::open_follower`] bootstraps from the
//! checkpoint sidecar and tails the live WAL ([`store::db`]'s
//! `poll_tail`), so a follower server lags the writer by at most its
//! poll interval and refuses writes with a typed error. See
//! `examples/serve.rs`.
//!
//! ## Concurrency invariants
//!
//! The stack's concurrency contracts are *declared* in `lockorder.toml`
//! at the workspace root and *machine-checked* on every CI run by
//! `cargo run -p flor-audit -- --workspace` (plus the
//! `workspace_is_clean` fixture test). Four invariants hold everywhere:
//!
//! * **Lock order.** Every mutex/rwlock in the workspace is classified
//!   into a named class, and classes form a single hierarchy (outermost
//!   first): `kernel_state` → `jobs_board` → `jobs_ingest` →
//!   `jobs_runner` → `view_catalog` → `git_repo` → `git_vfs` →
//!   `serve_buckets` → `ckpt_serial` → `store_commit` → `feed_queue` →
//!   `obs`. A lock may only be acquired while holding locks that
//!   precede it; the audit also rejects cycles in the *observed*
//!   acquisition graph and any `.lock()`/`.read()`/`.write()` on a
//!   receiver the manifest does not classify. Notably: checkpoints and
//!   compaction serialize on `ckpt_serial` **before** touching the
//!   commit lock, and [`obs`] is innermost so metrics can be recorded
//!   under any other lock.
//! * **No I/O under a guard.** File and network calls while a lock
//!   guard is live are violations. The deliberate exceptions — the WAL
//!   append/fsync under the commit lock that makes commits durable
//!   before readers can observe them — are annotated in place with the
//!   reason, so the exception list lives next to the code.
//! * **Justified atomics.** Every `Ordering::Relaxed` and
//!   `Ordering::SeqCst` carries an `// audit: ordering — <why>`
//!   note explaining why that ordering is sufficient (or necessary).
//! * **Panic-free non-test code.** `.unwrap()`/`.expect()`/`panic!`/
//!   `unreachable!` outside tests and benches must either be replaced
//!   by typed errors or annotated `// audit: allow(panic) — <why it
//!   cannot fire>` with the invariant that protects them.
//!
//! See `crates/flor-audit/README.md` for the annotation grammar, the
//! manifest format, and how to extend the hierarchy when adding a lock.

pub use flor_core as core;
pub use flor_df as df;
pub use flor_diff as diff;
pub use flor_git as git;
pub use flor_jobs as jobs;
pub use flor_make as make;
pub use flor_ml as ml;
pub use flor_obs as obs;
pub use flor_pipeline as pipeline;
pub use flor_record as record;
pub use flor_script as script;
pub use flor_serve as serve;
pub use flor_store as store;
pub use flor_view as view;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use flor_core::{
        backfill, run_script, BackfillHandle, BackfillReport, ExplainReport, Flor, QueryBuilder,
        RunOutcome, VersionOutcome,
    };
    pub use flor_df::{AggFn, DataFrame, JoinKind, Value};
    pub use flor_git::{Repository, VirtualFs};
    pub use flor_jobs::{JobProgress, JobRecord, JobState, JobStats};
    pub use flor_make::{parse_makefile, Makefile};
    pub use flor_obs::{Level, MetricsRegistry, MetricsSnapshot, SlowQueryRecord, Trace, TraceId};
    pub use flor_pipeline::{run_demo, CorpusConfig, PdfPipeline};
    pub use flor_record::{CheckpointPolicy, ReplayControl, RunRecord};
    pub use flor_script::{parse, to_source, Interpreter, NullRuntime};
    pub use flor_serve::{Client, HealthReport, ServeExt, ServerConfig};
    pub use flor_store::{CmpOp, Predicate};
    pub use flor_view::{CatalogStats, QueryPlan, ViewCatalog, ViewKey};
}
