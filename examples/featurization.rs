//! Figure 3 reproduction: data featurization with FlorDB.
//!
//! The paper's snippet:
//! ```python
//! for doc_name in flor.loop("document", os.listdir(...)):
//!     N = get_num_pages(doc_name)
//!     for page in flor.loop("page", range(N)):
//!         text_src, page_text = read_page(doc_name, page)
//!         flor.log("text_src", text_src)
//!         flor.log("page_text", page_text)
//!         headings, page_numbers = analyze_text(page_text)
//!         flor.log("headings", headings)
//!         flor.log("page_numbers", page_numbers)
//! ```
//! and the resulting pivoted dataframe. FlorDB acts as a *feature store*
//! with zero prior schema setup.
//!
//! Run with `cargo run --example featurization`.

use flordb::pipeline::{analyze_text, generate, CorpusConfig};
use flordb::prelude::*;

fn main() {
    let flor = Flor::new("pdf_parser");
    flor.set_filename("featurize.fl");

    let corpus = generate(&CorpusConfig {
        n_pdfs: 3,
        max_docs_per_pdf: 2,
        max_pages_per_doc: 3,
        seed: 42,
    });

    // The Fig. 3 loop, line for line.
    let doc_names: Vec<String> = corpus.pdfs.iter().map(|p| p.name.clone()).collect();
    flor.for_each("document", doc_names, |flor, doc_name| {
        let pdf = corpus.pdfs.iter().find(|p| &p.name == doc_name).unwrap();
        flor.for_each("page", 0..pdf.pages.len(), |flor, &page| {
            let p = &pdf.pages[page];
            flor.log("text_src", p.source.as_str());
            flor.log("page_text", p.text.as_str());

            // "Run some featurization"
            let f = analyze_text(&p.text);
            flor.log("headings", f.headings);
            flor.log("page_numbers", f.has_page_number);
        });
    });
    flor.commit("featurized corpus").unwrap();

    // The bottom half of Fig. 3: the flor dataframe, one column per log
    // statement, one row per (document, page) context.
    let df = flor
        .dataframe(&["text_src", "headings", "page_numbers"])
        .unwrap();
    println!("flor.dataframe(\"text_src\", \"headings\", \"page_numbers\"):\n{df}\n");

    // Feature-store behaviour: a later consumer filters by dimension.
    let first_pdf = &corpus.pdfs[0].name;
    let one_doc = df.filter_eq("document_value", &Value::from(first_pdf.as_str()));
    println!("features of {first_pdf} only:\n{one_doc}");
}
