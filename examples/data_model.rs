//! Figure 1 reproduction: the extended FlorDB data model.
//!
//! Populates all six tables (`logs`, `loops`, `ts2vid`, `git`, `obj_store`,
//! `build_deps`) through ordinary API usage, prints each table's schema and
//! sample rows, and shows the join/pivot that turns the normalized model
//! into the `flor.dataframe` wide view.
//!
//! Run with `cargo run --example data_model`.

use flordb::prelude::*;
use flordb::store::flor_schema;

fn main() {
    // Print the schema exactly as Fig. 1 defines it.
    println!("== The FlorDB data model (Fig. 1) ==");
    for table in flor_schema() {
        let cols: Vec<String> = table
            .columns
            .iter()
            .map(|c| {
                format!(
                    "{}: {}{}",
                    c.name,
                    c.ty,
                    if c.indexed { " [indexed]" } else { "" }
                )
            })
            .collect();
        println!("  {}({})", table.name, cols.join(", "));
    }

    // Populate through normal use.
    let flor = Flor::new("demo");
    flor.fs.write("featurize.fl", "// v1 of the featurizer");
    flor.set_filename("featurize.fl");
    flor.for_each("document", ["a.pdf", "b.pdf"], |flor, doc| {
        flor.for_each("page", 0..2, |flor, &p| {
            flor.log("text_src", if p == 0 { "OCR" } else { "TXT" });
            flor.log(
                "page_text",
                format!("{doc} page {p} {}", "lorem ".repeat(900)),
            );
        });
    });
    flor.record_build_dep(
        "worktree",
        "featurize",
        &["process_pdfs".into(), "featurize.fl".into()],
        &["python featurize.py".into()],
        false,
    )
    .unwrap();
    flor.commit("featurize run").unwrap();

    println!("\n== Table contents after one instrumented run ==");
    for name in flor.db.table_names() {
        let df = flor.db.scan(&name).unwrap();
        println!("\n-- {name} ({} rows) --", df.n_rows());
        // page_text is huge; show a trimmed view.
        println!("{}", df.head(4));
    }

    // The pivoted view assembled from logs ⋈ loops.
    println!("\n== flor.dataframe(\"text_src\") — the pivoted view ==");
    let df = flor.dataframe(&["text_src"]).unwrap();
    println!("{df}");

    // Storage-engine behaviour: stats + durability story.
    let stats = flor.db.stats();
    println!("\n== engine stats ==");
    println!(
        "total rows: {}, WAL records: {}",
        stats.total_rows, stats.wal_records
    );
    for (t, n) in &stats.rows_per_table {
        println!("  {t}: {n}");
    }
    println!(
        "\nbig page_text values spilled to obj_store: {} rows",
        flor.db.row_count("obj_store").unwrap()
    );
}
