//! Figure 2 reproduction: the Makefile-orchestrated ML pipeline with
//! feedback, its dataflow, and the flor dataframe spanning it.
//!
//! The paper's Fig. 2 shows (left) a Makefile with `prep → {infer, train}`,
//! `run → infer`; (middle) the dataflow diagram; (right) the flor
//! dataframe. This example parses that exact Makefile, executes it with
//! FlorDB-instrumented stage bodies, prints the dependency order, and
//! regenerates the dataframe.
//!
//! Run with `cargo run --example pipeline_dataflow`.

use flordb::make::FIG2_MAKEFILE;
use flordb::prelude::*;
use std::collections::HashMap;

fn main() {
    let flor = Flor::new("fig2");
    let fs = &flor.fs;
    for f in ["prep.py", "infer.py", "train.py"] {
        fs.write(f, &format!("# source of {f}"));
    }

    // Parse the paper's Makefile verbatim.
    let mk = parse_makefile(FIG2_MAKEFILE, &HashMap::new()).unwrap();
    println!("Fig. 2 Makefile targets (topological order for `run`):");
    for t in mk.topo_order("run").unwrap() {
        println!("  {t}");
    }

    // Execute with a runner that maps each command to an instrumented
    // stage body (the paper's `python prep.py` etc.).
    let build = |target: &str| {
        let flor = flor.clone();
        mk.build_with(target, fs, &mut move |cmd: &str| {
            match cmd {
                "python prep.py" => {
                    flor.set_filename("prep.py");
                    flor.log("rows_prepped", 1280);
                    flor.log("schema", "doc,page,text");
                }
                "python train.py" => {
                    flor.set_filename("train.py");
                    flor.for_each("epoch", 0..3, |flor, &e| {
                        flor.log("loss", 1.0 / (e + 1) as f64);
                    });
                    flor.log("acc", 0.91);
                    flor.log("recall", 0.88);
                }
                "python infer.py" => {
                    flor.set_filename("infer.py");
                    flor.log("predictions", 412);
                }
                "flask run" => {
                    flor.set_filename("run.py");
                    flor.log("served", true);
                }
                other => println!("    (skipping unknown command {other:?})"),
            }
            flor.commit(&format!("ran: {cmd}"))
                .map_err(|e| e.to_string())?;
            Ok(())
        })
        .unwrap()
    };

    println!("\n$ make run");
    let report = build("run");
    println!("  executed: {:?}", report.executed);
    println!("\n$ make train");
    let report = build("train");
    println!(
        "  executed: {:?} (prep cached: {:?})",
        report.executed, report.cached
    );

    println!("\n$ make run          # nothing changed");
    let report = build("run");
    println!(
        "  executed: {:?}, cached: {:?}",
        report.executed, report.cached
    );

    // The right pane of Fig. 2: one dataframe spanning every stage of the
    // pipeline, with filename revealing the dataflow pathway.
    let df = flor
        .dataframe(&["rows_prepped", "loss", "acc", "recall", "predictions"])
        .unwrap();
    println!("\nflor.dataframe across the whole pipeline:\n{df}");
}
