//! The lazy query builder: one composable surface for every context read.
//!
//! Builds a multi-run training history, then answers selective questions
//! two ways — the legacy shape (full pivot, then filter by hand) and the
//! `flor.query` builder (predicate pushdown into an incrementally
//! maintained view) — and shows they agree cell for cell while the
//! builder path skips re-pivoting the world per request.
//!
//! Run with `cargo run --release --example query_api`.

use flordb::prelude::*;
use std::time::Instant;

fn main() {
    let flor = Flor::new("query-demo");
    flor.set_filename("train.fl");

    // 300 runs × 10 epochs of history, sweeping the learning rate.
    for run in 0..300i64 {
        flor.for_each("epoch", 0..10, |flor, &e| {
            let lr = flor.arg("lr", 0.001 * (run % 10 + 1) as f64);
            flor.log("loss", 1.0 / (run + e + 1) as f64 + lr.as_f64().unwrap());
            flor.log("acc", 0.70 + (e as f64) * 0.01);
        });
        flor.commit(&format!("run {run}")).unwrap();
    }

    // The question: the 5 best-loss epochs among recent high-lr runs.
    let question = || {
        flor.query(&["loss", "acc", "arg::lr"])
            .filter("tstamp", CmpOp::Gt, 290)
            .filter("arg::lr", CmpOp::Ge, 0.009)
            .order_by("loss", true)
            .limit(5)
    };

    // Legacy shape: materialize everything, then post-filter by hand.
    let t = Instant::now();
    let full = flor.dataframe_full(&["loss", "acc", "arg::lr"]).unwrap();
    let legacy = full
        .filter(|r| {
            r.get("tstamp").and_then(Value::as_i64).unwrap_or(0) > 290
                && r.get("arg::lr").and_then(Value::as_f64).unwrap_or(0.0) >= 0.009
        })
        .sort_by(&[("loss", true)])
        .unwrap()
        .head(5);
    let legacy_time = t.elapsed();

    // Builder, cold: first call materializes the filtered view.
    let t = Instant::now();
    let cold = question().collect().unwrap();
    let cold_time = t.elapsed();

    // Builder, steady state: new commits land as deltas; the selective
    // query is served from the maintained (tiny) view plus a post-pass.
    flor.log("loss", 0.5);
    flor.commit("one more").unwrap();
    let t = Instant::now();
    let warm = question().collect().unwrap();
    let warm_time = t.elapsed();

    println!("full pivot + hand filter : {legacy_time:>10.1?}");
    println!("flor.query, cold build   : {cold_time:>10.1?}");
    println!("flor.query, incremental  : {warm_time:>10.1?}");
    println!("\ntop-5 epochs by loss (recent high-lr runs):\n{cold}");

    // Same answer on every path — and the oracle agrees.
    assert_eq!(legacy.to_rows(), cold.to_rows());
    let oracle = question().collect_full().unwrap();
    assert_eq!(warm, oracle);

    // The legacy entrypoints are wrappers over the same builder.
    assert_eq!(
        flor.dataframe(&["acc"]).unwrap(),
        flor.query(&["acc"]).collect().unwrap()
    );
    println!("\nlegacy == builder == oracle: verified");
}
