//! Figure 5 reproduction: training on labeled data managed by FlorDB,
//! with `flor.arg` hyper-parameters, nested epoch/step `flor.loop`s,
//! `flor.checkpointing`, and loss/acc/recall logging — then the
//! model-registry query of §4.2 (best checkpoint by recall).
//!
//! Run with `cargo run --example training_metrics`.

use flordb::prelude::*;

/// The Fig. 5 training script, transliterated to florscript.
const TRAIN_FL: &str = r#"
let labeled_data = load_dataset("first_page", 256, 42);

let hidden = flor.arg("hidden", 16);
let num_epochs = flor.arg("epochs", 5);
let batch_size = flor.arg("batch_size", 32);
let learning_rate = flor.arg("lr", 0.5);
let seed = flor.arg("seed", randint(0, 1000000000));

let net = make_model(5, hidden, 2, seed);
with flor.checkpointing(net) {
    for epoch in flor.loop("epoch", range(0, num_epochs)) {
        for step in flor.loop("step", range(0, num_batches(labeled_data, batch_size))) {
            let batch_data = batch(labeled_data, step * batch_size, (step + 1) * batch_size);
            let loss = train_step(net, batch_data, learning_rate);
            flor.log("loss", loss);
        }
        let m = eval_model(net, labeled_data);
        flor.log("acc", m[0]);
        flor.log("recall", m[1]);
    }
}
"#;

fn main() {
    let flor = Flor::new("pdf_parser");
    flor.fs.write("train.fl", TRAIN_FL);

    // Three training runs with different hyper-parameters, as a developer
    // sweeping for a good model would produce.
    for (hidden, lr) in [("4", "0.1"), ("16", "0.5"), ("32", "0.8")] {
        flor.set_cli_arg("hidden", hidden);
        flor.set_cli_arg("lr", lr);
        flor.set_cli_arg("seed", "7");
        let out =
            flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::Adaptive { alpha: 5.0 })
                .unwrap();
        println!(
            "run tstamp={} hidden={hidden} lr={lr}: {} checkpoints, final loss {}",
            out.tstamp,
            out.record.ckpt_count,
            out.record.values_of("loss").last().unwrap(),
        );
    }

    // The per-epoch metric view across all runs (the dataframe under
    // Fig. 5).
    let df = flor.dataframe(&["acc", "recall"]).unwrap();
    println!("\nflor.dataframe(\"acc\", \"recall\"):\n{df}\n");

    // §4.2: "the pipeline can automatically select the best-performing
    // model checkpoint based on validation metrics tracked across all
    // training runs."
    let ranked = df.sort_by(&[("recall", false), ("acc", false)]).unwrap();
    let best = ranked.head(1);
    println!("best checkpoint by recall (model registry behaviour):\n{best}\n");

    // Hyper-parameters were logged too — full experiment tracking.
    let args = flor
        .dataframe(&["arg::hidden", "arg::lr", "arg::seed"])
        .unwrap();
    println!("hyper-parameters per run:\n{args}");
}
