//! End-to-end request tracing and the ops surface: a served FlorDB
//! instance with tracing enabled, a client-originated trace context, the
//! retrieved span tree, the slow-query log with its explain report, and
//! the `Health` verb.
//!
//! Run with `cargo run --example tracing`.

use flordb::prelude::*;
use flordb::serve::{RequestLog, Server};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- a kernel with some training history ---------------------------
    let flor = Flor::new("tracing-demo");
    flor.set_filename("train.fl");
    for run in 0..4i64 {
        flor.for_each("epoch", 0..8, |flor, &e| {
            flor.log("loss", 1.0 / (run + e + 1) as f64);
            flor.log("acc", 0.70 + e as f64 * 0.03);
        });
        flor.commit(&format!("run {run}")).expect("commit");
    }

    // --- arm the observability layer ------------------------------------
    // Tracing and slow capture are off by default and cost two atomic
    // loads per request until enabled. A zero threshold marks every
    // query "slow" so the demo always has something to show.
    flor.set_tracing(true);
    flor.set_slow_query_threshold(Some(Duration::ZERO));

    // --- serve it --------------------------------------------------------
    let handle = Server::bind(flor.clone(), "127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .with_middleware(Arc::new(RequestLog::new(flor.metrics_registry())))
        .spawn()
        .expect("serve");
    println!("serving on {}\n", handle.addr());

    // --- a traced query --------------------------------------------------
    // The client originates the trace id; the server executes the query
    // under it and keeps the span tree in a bounded ring.
    let mut client = Client::connect(handle.addr(), None).expect("connect");
    let plan = QueryPlan::new(&["loss", "acc"]);
    let (trace_id, epoch, df) = client.query_traced(&plan).expect("traced query");
    println!(
        "query at epoch {epoch}: {} rows under trace {trace_id}",
        df.n_rows()
    );

    let trace = client
        .trace(trace_id)
        .expect("fetch traces")
        .expect("trace retained");
    println!("\n--- trace ---\n{trace}\n");

    // The same anatomy is visible on every request, traced or not: plain
    // queries get a server-generated id while tracing is on.
    let (_, _) = client.query(&plan).expect("plain query");
    println!(
        "traces in the ring: {}",
        client.traces(32).expect("traces").len()
    );

    // --- the slow-query log ----------------------------------------------
    // Both queries breached the (zero) threshold; each capture carries
    // the full explain report and its trace.
    let slow = client.slow_queries(8).expect("slow queries");
    println!("\n--- slow-query log ({} captured) ---", slow.len());
    if let Some(rec) = slow.first() {
        println!("{rec}");
    }

    // --- health ----------------------------------------------------------
    let health = client.health().expect("health");
    println!("--- health ---\n{health}");
    assert!(!health.follower);
    assert!(health.live_sessions >= 1);

    // Local introspection sees the same rings without a wire round-trip.
    assert_eq!(flor.find_trace(trace_id).map(|t| t.id), Some(trace_id));
    assert!(!flor.slow_queries().is_empty());

    client.close().expect("close");
    handle.stop();
}
