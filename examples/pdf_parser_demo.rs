//! The full PDF Parser demo (paper §4, Fig. 4): a document-intelligence
//! pipeline over a synthetic corpus, orchestrated by the Fig. 4 Makefile,
//! with human-in-the-loop feedback closing the loop.
//!
//! Demonstrates every takeaway the paper claims:
//!  * feature store (featurize stage → queryable features),
//!  * model registry (train stage → best-checkpoint selection),
//!  * training data store (labeled view),
//!  * feedback management with provenance,
//!  * incremental builds (only affected targets re-run).
//!
//! Run with `cargo run --example pdf_parser_demo`.

use flordb::pipeline::{best_model, labeled_view, prediction_accuracy, CorpusConfig, PdfPipeline};

fn main() {
    let cfg = CorpusConfig {
        n_pdfs: 10,
        max_docs_per_pdf: 3,
        max_pages_per_doc: 4,
        seed: 5,
    };
    let pipeline = PdfPipeline::new("pdf_parser", &cfg);
    let total_pages: usize = pipeline.corpus.pdfs.iter().map(|p| p.pages.len()).sum();
    println!(
        "corpus: {} PDFs, {} pages total; expert pre-labels {} PDFs\n",
        pipeline.corpus.pdfs.len(),
        total_pages,
        pipeline.initial_labeled
    );

    println!("$ make run");
    let report = pipeline.make("run").unwrap();
    println!("  executed: {:?}\n", report.executed);

    // Feature store.
    let feats = pipeline
        .flor
        .dataframe(&["heading_density", "page_numbers", "headings"])
        .unwrap();
    println!(
        "feature store ({} pages):\n{}\n",
        feats.n_rows(),
        feats.head(6)
    );

    // Training data store.
    let labeled = labeled_view(&pipeline.flor).unwrap();
    println!("labeled training view: {} rows", labeled.n_rows());

    // Model registry.
    let (model, recall) = best_model(&pipeline.flor).unwrap().unwrap();
    println!(
        "model registry best checkpoint: recall={recall:.3}, {} SGD steps\n",
        model.steps
    );

    let acc0 = prediction_accuracy(&pipeline.flor, &pipeline.corpus).unwrap();
    println!("first-page prediction accuracy after initial training: {acc0:.3}");

    // Feedback rounds (§4.4): the expert reviews the remaining PDFs.
    let remaining: Vec<String> = pipeline
        .corpus
        .pdfs
        .iter()
        .skip(pipeline.initial_labeled)
        .map(|p| p.name.clone())
        .collect();
    for (round, chunk) in remaining.chunks(2).enumerate() {
        let names: Vec<&str> = chunk.iter().map(String::as_str).collect();
        let acc = pipeline.feedback_round(&names).unwrap();
        println!(
            "after feedback round {} ({:?}): accuracy {:.3}",
            round + 1,
            names,
            acc
        );
    }

    // Incremental rebuild: nothing changed → everything cached.
    println!("\n$ make run          # nothing changed");
    let report = pipeline.make("run").unwrap();
    println!(
        "  executed: {:?}, cached: {:?}",
        report.executed, report.cached
    );

    // Change one stage: only downstream work reruns.
    pipeline.flor.fs.write("infer.fl", "// tweaked inference");
    println!("\n$ touch infer.fl && make run");
    let report = pipeline.make("run").unwrap();
    println!("  executed: {:?}", report.executed);

    // Provenance: labels carry their source.
    let prov = pipeline.flor.dataframe(&["label_src"]).unwrap();
    let mut human = 0;
    let mut model_n = 0;
    if let Some(col) = prov.column("label_src") {
        for v in &col.values {
            match v.to_text().as_str() {
                "human" => human += 1,
                "model" => model_n += 1,
                _ => {}
            }
        }
    }
    println!("\nlabel provenance: {human} human-labeled rows, {model_n} model-labeled rows");

    // build_deps (Fig. 1) recorded the whole build history.
    let bd = pipeline.flor.db.scan("build_deps").unwrap();
    println!("build_deps rows recorded: {}", bd.n_rows());
}
