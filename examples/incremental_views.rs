//! Incremental materialized views: the paper's "incremental context
//! maintenance" made visible.
//!
//! A training loop keeps committing new metrics while a monitoring query
//! re-reads `flor.dataframe` after every run. The first read builds the
//! view; every later read applies just the freshly committed deltas — no
//! re-join, no re-pivot of history. The catalog's counters prove it.
//!
//! Run with `cargo run --example incremental_views`.

use flordb::prelude::*;
use std::time::Instant;

fn main() {
    let flor = Flor::new("views-demo");
    flor.set_filename("train.fl");

    // Simulate a long-lived project: 200 runs × 10 epochs × 3 metrics of
    // history (6 000 log rows) already committed.
    for run in 0..200 {
        flor.for_each("epoch", 0..10, |flor, &e| {
            flor.log("loss", 1.0 / (run + e + 1) as f64);
            flor.log("acc", 0.7 + (e as f64) * 0.01);
            flor.log("recall", 0.6 + (e as f64) * 0.01);
        });
        flor.commit(&format!("run {run}")).unwrap();
    }

    // First query: the catalog builds the view from a snapshot (a miss).
    let t = Instant::now();
    let df = flor.dataframe(&["loss", "acc", "recall"]).unwrap();
    println!(
        "first query: {} rows materialized in {:?} (cold build)",
        df.n_rows(),
        t.elapsed()
    );

    // The monitoring loop: new commits keep landing, the dashboard keeps
    // querying. Each refresh applies one commit's deltas.
    let t = Instant::now();
    for run in 200..210 {
        flor.for_each("epoch", 0..10, |flor, &e| {
            flor.log("loss", 1.0 / (run + e + 1) as f64);
            flor.log("acc", 0.75);
            flor.log("recall", 0.65);
        });
        flor.commit(&format!("run {run}")).unwrap();
        let view = flor
            .query(&["loss", "acc", "recall"])
            .collect_view()
            .unwrap();
        println!("after run {run}: view has {} rows", view.n_rows());
    }
    println!(
        "10 live update+query cycles in {:?} (delta refresh)",
        t.elapsed()
    );

    // `latest` views ride the same machinery (paper Fig. 6).
    let latest = flor
        .dataframe_latest(&["acc"], &["epoch_iteration"])
        .unwrap();
    println!("\nlatest acc per epoch:\n{}", latest.head(3));

    let stats = flor.views.stats();
    println!(
        "\ncatalog: {} build(s), {} cached read(s), {} commit batch(es) applied as deltas, \
         {} fallback rebuild(s)",
        stats.misses, stats.hits, stats.batches_applied, stats.fallback_rebuilds
    );

    // The incremental frames are not approximations: they equal a full
    // recompute, cell for cell.
    assert_eq!(
        flor.dataframe(&["loss", "acc", "recall"]).unwrap(),
        flor.dataframe_full(&["loss", "acc", "recall"]).unwrap()
    );
    println!("incremental view == full recompute: verified");
}
