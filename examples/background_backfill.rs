//! Background backfill with flor-jobs: submit, poll progress, query
//! concurrently, cancel.
//!
//! The paper's "magic trick" — retroactive logging via incremental replay
//! — is a long-running batch computation, so FlorDB schedules it as a
//! durable background job instead of blocking the process: per-version
//! replay units run on a worker pool, each version's recovered values
//! commit as soon as it finishes (live views refresh through the change
//! feed mid-job), and a job interrupted by a crash is resumed from the
//! `jobs` table on the next `Flor::open`.
//!
//! Run with `cargo run --example background_backfill`.

use flordb::prelude::*;

const EPOCHS: usize = 8;
const VERSIONS: usize = 6;

fn train_script(with_metrics: bool) -> String {
    let metrics = if with_metrics {
        "        let m = eval_model(net, data);\n        flor.log(\"acc\", m[0]);\n"
    } else {
        ""
    };
    format!(
        r#"let data = load_dataset("first_page", 80, 42);
let net = make_model(5, 6, 2, 7);
with flor.checkpointing(net) {{
    for e in flor.loop("epoch", range(0, {EPOCHS})) {{
        work(200);
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
{metrics}    }}
}}
"#
    )
}

fn main() {
    let flor = Flor::new("background");

    // History: several recorded runs that never logged `acc`.
    flor.fs.write("train.fl", &train_script(false));
    for _ in 0..VERSIONS {
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).expect("record run");
    }
    // The developer adds the metric to the latest version only.
    flor.fs.write("train.fl", &train_script(true));

    // Submit the backfill as a background job and keep working.
    let handle = flor
        .submit_backfill("train.fl", &["acc"])
        .expect("submit backfill");
    println!(
        "submitted backfill job #{} over {} versions",
        handle.job_id(),
        VERSIONS
    );

    // Foreground reads keep flowing while the job runs; recovered values
    // land incrementally, version by version.
    let mut last_done = 0;
    while !handle.state().is_terminal() {
        let progress = handle.progress();
        if progress.units_done != last_done {
            last_done = progress.units_done;
            let df = flor.dataframe(&["loss", "acc"]).expect("query mid-job");
            let filled = df
                .column("acc")
                .map(|c| c.values.iter().filter(|v| !v.is_null()).count())
                .unwrap_or(0);
            println!(
                "  {}/{} versions done, {} iterations replayed, {} acc cells live",
                progress.units_done, progress.units_total, progress.ticks, filled
            );
        }
        std::thread::yield_now();
    }

    // Per-version outcomes stream on the handle (oldest run first); the
    // blocking wait() just assembles the aggregate report.
    let report = handle.wait();
    println!(
        "backfill done: {} values recovered, {}/{} iterations replayed",
        report.values_recovered, report.iterations_replayed, report.iterations_full
    );
    for v in &report.versions {
        println!(
            "  run ts={} vid={}.. injected={} replayed={}/{}",
            v.tstamp,
            &v.vid[..8.min(v.vid.len())],
            v.injected,
            v.iterations_replayed,
            v.iterations_total
        );
    }

    // The maintained view is complete and equals the from-scratch oracle.
    let df = flor.dataframe(&["loss", "acc"]).expect("query");
    assert_eq!(df, flor.dataframe_full(&["loss", "acc"]).expect("oracle"));
    println!("view complete: {} rows, oracle-verified", df.n_rows());

    // A second thought — backfill `recall` too — cancelled mid-flight:
    // pending versions are dropped and the cancellation is durable.
    flor.fs.write(
        "train.fl",
        &train_script(true).replace(
            "flor.log(\"acc\", m[0]);",
            "flor.log(\"acc\", m[0]);\n        flor.log(\"recall\", m[1]);",
        ),
    );
    let second = flor
        .submit_backfill("train.fl", &["recall"])
        .expect("submit second");
    second.cancel();
    second.wait();
    println!("second job #{} -> {}", second.job_id(), second.state());

    // Durable observability: every job's latest state, from the jobs table.
    let stats = flor.job_stats().expect("job stats");
    println!(
        "jobs: {} done, {} cancelled ({} total transitions in the jobs table)",
        stats.done,
        stats.cancelled,
        flor.db.row_count("jobs").expect("row count")
    );
}
