//! Figure 6 reproduction: the human-in-the-loop feedback routes.
//!
//! The paper's Flask app exposes `get_colors()` (serve latest labels,
//! deriving colors from `first_page` cumsum when missing) and
//! `save_colors()` (record expert corrections under a
//! `flor.iteration("document", ...)` context and `flor.commit()`).
//! This example reproduces both handlers and shows commit-boundary
//! visibility: uncommitted feedback is invisible to readers.
//!
//! Run with `cargo run --example feedback_loop`.

use flordb::prelude::*;

/// `get_colors()` from Fig. 6: latest rows for the document; if any
/// page_color is missing, derive colors as `cumsum(first_page) - 1`.
fn get_colors(flor: &Flor, pdf_name: &str) -> Vec<i64> {
    let infer = flor
        .dataframe(&["first_page", "page_color"])
        .unwrap_or_default();
    if infer.n_rows() == 0 {
        return vec![];
    }
    let infer = infer
        .filter_eq("document_value", &Value::from(pdf_name))
        .latest(&["page_iteration"], "tstamp")
        .unwrap()
        .sort_by(&[("page_iteration", true)])
        .unwrap();
    let any_missing = infer
        .column("page_color")
        .map(|c| c.has_nulls())
        .unwrap_or(true);
    if any_missing {
        // color = first_page.astype(int).cumsum() - 1
        infer
            .cumsum("first_page")
            .unwrap()
            .iter()
            .map(|c| c - 1)
            .collect()
    } else {
        infer
            .column("page_color")
            .unwrap()
            .values
            .iter()
            .map(|v| v.as_i64().unwrap_or(0))
            .collect()
    }
}

/// `save_colors()` from Fig. 6: record the expert's colors under a
/// document iteration context, then commit.
fn save_colors(flor: &Flor, pdf_name: &str, colors: &[i64]) {
    flor.set_filename("app.fl");
    flor.iteration("document", pdf_name, |flor| {
        flor.for_each("page", 0..colors.len(), |flor, &i| {
            flor.log("page_color", colors[i]);
            flor.log("label_src", "human");
        });
    });
    flor.commit("save_colors").unwrap();
}

fn main() {
    let flor = Flor::new("pdf_parser");
    flor.set_filename("infer.fl");

    // The model's initial guesses: only first_page flags, no colors yet.
    flor.iteration("document", "case_000.pdf", |flor| {
        let model_first_page = [true, false, false, true, false];
        flor.for_each("page", 0..model_first_page.len(), |flor, &p| {
            flor.log("first_page", model_first_page[p]);
            flor.log("label_src", "model");
        });
    });
    flor.commit("model predictions").unwrap();

    // GET /view-pdf: colors derived from first_page cumsum.
    let derived = get_colors(&flor, "case_000.pdf");
    println!("derived colors from model predictions: {derived:?}");
    assert_eq!(derived, vec![0, 0, 0, 1, 1]);

    // The expert disagrees with page 2 — it starts a new document.
    let corrected = vec![0, 0, 1, 2, 2];
    println!("expert submits corrections:           {corrected:?}");

    // Before commit, a concurrent reader still sees the old state — the
    // paper's "visibility control for long-running processes". (save_colors
    // commits internally; we demonstrate by staging manually first.)
    flor.set_filename("app.fl");
    flor.iteration("document", "case_000.pdf", |flor| {
        flor.for_each("page", 0..corrected.len(), |flor, &i| {
            flor.log("page_color", corrected[i]);
            flor.log("label_src", "human");
        });
    });
    let mid_read = get_colors(&flor, "case_000.pdf");
    println!("reader BEFORE commit still sees:       {mid_read:?}");
    assert_eq!(mid_read, vec![0, 0, 0, 1, 1]);
    flor.commit("save_colors").unwrap();

    let after = get_colors(&flor, "case_000.pdf");
    println!("reader AFTER commit sees:              {after:?}");
    assert_eq!(after, corrected);

    // Another round via the route function itself.
    save_colors(&flor, "case_000.pdf", &[0, 1, 1, 2, 2]);
    println!(
        "after second save_colors:              {:?}",
        get_colors(&flor, "case_000.pdf")
    );

    // Provenance: both machine and human labels live side by side.
    let df = flor.dataframe(&["label_src"]).unwrap();
    println!("\nprovenance rows:\n{}", df.head(8));
}
