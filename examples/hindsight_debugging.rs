//! Multiversion hindsight logging — the paper's "magic trick" (§2).
//!
//! Scenario: a developer runs several versions of a training script, then
//! realises they never logged `acc`/`recall`. They add the log statements
//! to the *latest* version only; FlorDB (a) injects the statements into all
//! prior versions via AST diffing and (b) replays only the necessary loop
//! iterations from checkpoints — no full re-execution — after which the
//! dataframe is complete for every historical run.
//!
//! Run with `cargo run --example hindsight_debugging`.

use flordb::prelude::*;

const TRAIN_V1: &str = r#"
let data = load_dataset("first_page", 120, 42);
let epochs = flor.arg("epochs", 5);
let lr = flor.arg("lr", 0.5);
let net = make_model(5, 8, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, lr);
        flor.log("loss", loss);
    }
}
"#;

// v2 tweaks the learning rate — an ordinary code evolution.
const TRAIN_V2: &str = r#"
let data = load_dataset("first_page", 120, 42);
let epochs = flor.arg("epochs", 5);
let lr = flor.arg("lr", 0.25);
let net = make_model(5, 8, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, lr);
        flor.log("loss", loss);
    }
}
"#;

// v3 finally adds the metrics the developer wishes they always had.
const TRAIN_V3: &str = r#"
let data = load_dataset("first_page", 120, 42);
let epochs = flor.arg("epochs", 5);
let lr = flor.arg("lr", 0.25);
let net = make_model(5, 8, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, lr);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
        flor.log("recall", m[1]);
    }
}
"#;

fn main() {
    let flor = Flor::new("hindsight");

    println!("== record two historical versions (no acc/recall logging) ==");
    flor.fs.write("train.fl", TRAIN_V1);
    flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
    flor.fs.write("train.fl", TRAIN_V2);
    flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();

    println!("== v3 adds flor.log(\"acc\")/flor.log(\"recall\") and runs ==");
    flor.fs.write("train.fl", TRAIN_V3);
    flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();

    let before = flor.dataframe(&["loss", "acc", "recall"]).unwrap();
    let holes = before
        .column("acc")
        .map(|c| c.values.iter().filter(|v| v.is_null()).count())
        .unwrap_or(0);
    println!("\ndataframe BEFORE backfill ({holes} missing acc cells):\n{before}\n");

    println!("== flor.backfill: propagate + incremental replay ==");
    let report = flordb::core::backfill(&flor, "train.fl", &["acc", "recall"], 4).unwrap();
    for v in &report.versions {
        match &v.skipped {
            Some(reason) => println!(
                "  tstamp {} (vid {}…): skipped — {reason}",
                v.tstamp,
                &v.vid[..8]
            ),
            None => println!(
                "  tstamp {} (vid {}…): injected {} stmts, replayed {}/{} iterations, recovered {} values",
                v.tstamp,
                &v.vid[..8],
                v.injected,
                v.iterations_replayed,
                v.iterations_total,
                v.values_recovered
            ),
        }
    }

    let after = flor.dataframe(&["loss", "acc", "recall"]).unwrap();
    let holes = after
        .column("acc")
        .map(|c| c.values.iter().filter(|v| v.is_null()).count())
        .unwrap_or(0);
    println!("\ndataframe AFTER backfill ({holes} missing acc cells):\n{after}");
    assert_eq!(holes, 0, "backfill must fill every hole");
}
