//! Serving: one writer, a flor-serve server, two concurrent client
//! sessions, and a read-only follower in a (simulated) second process.
//!
//! Demonstrates the three guarantees of the serving layer:
//!
//! 1. **Pinned sessions** — each client's queries answer at the epoch it
//!    pinned at connect (or its last explicit `pin`), repeatable under a
//!    committing writer;
//! 2. **Observability over the wire** — the `MetricsPrometheus` verb
//!    scrapes the server's whole registry in Prometheus text format;
//! 3. **Followers** — a second kernel opened read-only over the writer's
//!    WAL serves the same data with staleness bounded by its poll
//!    interval, and refuses writes with a typed error.
//!
//! Run with `cargo run --example serve`.

use flordb::prelude::*;
use flordb::serve::{RequestLog, Response, Server};
use flordb::store::StoreError;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn main() {
    let dir = std::env::temp_dir().join(format!("flor-serve-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let wal = dir.join("demo.wal");
    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_file(dir.join("demo.wal.ckpt"));

    // --- the writer: a durable kernel with some training history ------
    let flor = Flor::open("serve-demo", &wal).expect("open");
    flor.set_filename("train.fl");
    for run in 0..5i64 {
        flor.for_each("epoch", 0..4, |flor, &e| {
            flor.log("loss", 1.0 / (run + e + 1) as f64);
            flor.log("acc", 0.70 + e as f64 * 0.05);
        });
        flor.commit(&format!("run {run}")).expect("commit");
    }

    // --- serve it, logging every request into the shared registry -----
    let handle = Server::bind(flor.clone(), "127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .with_middleware(Arc::new(RequestLog::new(flor.metrics_registry())))
        .spawn()
        .expect("serve");
    let addr = handle.addr();
    println!("serving on {addr}");

    // --- two concurrent client sessions -------------------------------
    // Client A pins now and keeps that world fixed; client B re-pins
    // after the writer commits more, so the two sessions answer the same
    // plan differently — each correctly for its own epoch.
    let plan = QueryPlan::new(&["loss", "acc"]);
    let a = {
        let plan = plan.clone();
        thread::spawn(move || {
            let mut client = Client::connect(addr, None).expect("connect A");
            let (epoch, before) = client.query(&plan).expect("query A");
            // Stay pinned while the writer moves on underneath.
            thread::sleep(Duration::from_millis(50));
            let (epoch2, after) = client.query(&plan).expect("query A again");
            assert_eq!(epoch, epoch2);
            assert_eq!(before, after, "a pinned session must be repeatable");
            println!(
                "client A: pinned at epoch {epoch}, {} rows, twice",
                before.n_rows()
            );
            client.close().expect("close A");
        })
    };
    let b = {
        let plan = plan.clone();
        let flor = flor.clone();
        thread::spawn(move || {
            let mut client = Client::connect(addr, None).expect("connect B");
            let (e0, df0) = client.query(&plan).expect("query B");
            // The writer commits another run while B's session is open.
            flor.for_each("epoch", 0..4, |flor, &e| {
                flor.log("loss", 1.0 / (20 + e) as f64);
                flor.log("acc", 0.95);
            });
            flor.commit("late run").expect("commit");
            // Still pinned: same frame. Then re-pin: the new rows appear.
            let (_, df_still) = client.query(&plan).expect("query B pinned");
            assert_eq!(df0, df_still);
            let e1 = client.pin().expect("pin B");
            let (_, df1) = client.query(&plan).expect("query B repinned");
            assert!(df1.n_rows() > df0.n_rows());
            println!(
                "client B: epoch {e0} had {} rows; after pin to {e1}: {} rows",
                df0.n_rows(),
                df1.n_rows()
            );
            client.close().expect("close B");
        })
    };
    a.join().expect("client A");
    b.join().expect("client B");

    // --- scrape the server's metrics over the wire ---------------------
    let mut scraper = Client::connect(addr, None).expect("connect scraper");
    let prom = scraper.metrics_prometheus().expect("scrape");
    let preview: Vec<&str> = prom
        .lines()
        .filter(|l| l.starts_with("serve_") || l.contains("serve_request"))
        .take(6)
        .collect();
    println!(
        "prometheus scrape ({} lines), serve.* excerpt:",
        prom.lines().count()
    );
    for line in preview {
        println!("  {line}");
    }
    scraper.close().expect("close scraper");

    // --- a read-only follower serving the same WAL ---------------------
    let follower = Flor::open_follower("serve-demo", &wal).expect("open follower");
    assert!(follower.is_follower());
    let fcfg = ServerConfig {
        follower_poll: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let fhandle = follower.serve("127.0.0.1:0", fcfg).expect("serve follower");
    let mut fclient = Client::connect(fhandle.addr(), None).expect("connect follower");
    let (fepoch, fdf) = fclient.query(&plan).expect("query follower");

    // Byte-identical to the writer's own from-scratch answer.
    let local = flor.run_plan_full(&plan).expect("local oracle");
    assert_eq!(
        Response::Frame {
            epoch: fepoch,
            df: fdf.clone()
        }
        .encode(),
        Response::Frame {
            epoch: fepoch,
            df: local
        }
        .encode(),
    );
    println!(
        "follower on {}: epoch {fepoch}, {} rows — byte-identical to the writer",
        fhandle.addr(),
        fdf.n_rows()
    );

    // New commits reach the follower within its poll interval.
    flor.log("loss", 0.001);
    flor.commit("final").expect("commit");
    let target = flor.db.pin().epoch();
    loop {
        let (_, latest) = fclient.epochs().expect("epochs");
        if latest >= target {
            break;
        }
        thread::sleep(Duration::from_millis(2));
    }
    println!("follower caught up to epoch {target}");

    // And it refuses writes with the typed store error.
    match follower.commit("nope") {
        Err(StoreError::ReadOnly) => println!("follower write refused: read-only, as promised"),
        other => panic!("expected ReadOnly, got {other:?}"),
    }

    fclient.close().expect("close follower client");
    fhandle.stop();
    handle.stop();
    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_file(dir.join("demo.wal.ckpt"));
    let _ = std::fs::remove_dir(&dir);
}
