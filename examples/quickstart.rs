//! Quickstart: log training metrics across runs, query them back as a
//! pivoted dataframe, and pick the best checkpoint — FlorDB's elevator
//! pitch in 60 lines.
//!
//! Run with `cargo run --example quickstart`.

use flordb::prelude::*;

fn main() {
    let flor = Flor::new("quickstart");
    flor.set_filename("train.fl");

    // Three "training runs" with different hyper-parameters. Each run logs
    // per-epoch loss and end-of-run acc/recall, then commits — exactly the
    // shape of the paper's Fig. 5 loop.
    for (run, lr) in [0.5f64, 0.1, 0.01].iter().enumerate() {
        let lr = flor.arg("lr", *lr).as_f64().unwrap();
        flor.for_each("epoch", 0..4, |flor, &e| {
            // A fake but monotone loss curve parameterised by lr.
            let loss = 1.0 / (1.0 + lr * (e + 1) as f64);
            flor.log("loss", loss);
        });
        flor.log("acc", 0.7 + 0.05 * run as f64);
        flor.log("recall", 0.6 + 0.1 * run as f64);
        flor.commit(&format!("run {run} with lr={lr}")).unwrap();
    }

    // "flor.dataframe produces a Pandas DataFrame of log information" —
    // here, a flor-df DataFrame, one column per logged name.
    let df = flor.dataframe(&["loss"]).unwrap();
    println!("per-epoch losses across all runs:\n{df}\n");

    // Model-registry behaviour (§4.2): best checkpoint by recall.
    let metrics = flor.dataframe(&["acc", "recall"]).unwrap();
    let best = metrics.sort_by(&[("recall", false)]).unwrap().head(1);
    println!("best run by recall:\n{best}\n");

    // Change context: every commit is a version.
    println!("version history:");
    for (vid, commit) in flor.repo.log_head().unwrap() {
        println!(
            "  {}  tstamp={}  {}",
            vid.short(),
            commit.tstamp,
            commit.message
        );
    }
}
