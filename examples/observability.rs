//! Observability: one metrics registry across the whole stack, plus a
//! per-query EXPLAIN.
//!
//! A training loop commits metrics while a monitoring query re-reads
//! them; a hindsight backfill runs in the background. At the end,
//! `flor.metrics()` renders what every layer actually did — commit and
//! WAL-fsync latency histograms, checkpoint/compaction passes, zone-map
//! pruning ratios, job queue-wait vs run time, view hits and misses —
//! and `query(..).explain()` reports how one specific query executed:
//! access path, segments pruned, rows examined vs returned, per-stage
//! timings.
//!
//! Run with `cargo run --example observability`.

use flordb::prelude::*;

fn main() {
    let flor = Flor::new("obs-demo");
    flor.set_filename("train.fl");

    // 1. Generate history: 60 runs × 8 epochs × 2 metrics, with a
    //    monitoring query after every 10th run (so the view catalog sees
    //    a realistic build-then-refresh pattern).
    for run in 0..60 {
        flor.for_each("epoch", 0..8, |flor, &e| {
            flor.log("loss", 1.0 / (run + e + 1) as f64);
            flor.log("acc", 0.7 + (e as f64) * 0.02);
        });
        flor.commit(&format!("run {run}")).unwrap();
        if run % 10 == 9 {
            flor.dataframe(&["loss", "acc"]).unwrap();
        }
    }

    // 2. EXPLAIN one query. The plan really executes — every number in
    //    the report is a measurement of this run, not an estimate.
    let report = flor
        .query(&["loss", "acc"])
        .filter("acc", CmpOp::Gt, 0.8)
        .order_by("loss", true)
        .limit(10)
        .explain()
        .unwrap();
    println!("{report}\n");
    assert_eq!(report.rows_returned, 10);

    // Re-running the same plan is a view hit: no rebuild, no deltas.
    let again = flor
        .query(&["loss", "acc"])
        .filter("acc", CmpOp::Gt, 0.8)
        .order_by("loss", true)
        .limit(10)
        .explain()
        .unwrap();
    assert!(again.view_hit);
    println!(
        "re-run: view hit, {} feed batches applied, serve {}ns\n",
        again.batches_applied, again.serve_nanos
    );

    // 3. The instance-wide ledger: every histogram, counter, gauge and
    //    retained event, across store + jobs + views, in one consistent
    //    snapshot. (Also available as JSON via `snapshot.to_json()`.)
    let snapshot = flor.metrics();
    println!("{}", snapshot.render_text());

    let commits = snapshot.histogram("store.commit.nanos").unwrap();
    println!(
        "committed {} times, mean {:.0}ns, p99 <= {}ns",
        commits.count,
        commits.mean(),
        commits.quantile(0.99).unwrap()
    );
    let examined = snapshot.counter("store.query.rows_examined").unwrap();
    let returned = snapshot.counter("store.query.rows_returned").unwrap();
    println!("store queries: {examined} rows examined, {returned} returned");

    // 4. Collection is on by default and costs almost nothing; turn it
    //    off entirely and the registry goes quiet (what the overhead
    //    benches measure against).
    flor.metrics_registry().set_enabled(false);
    flor.log("loss", 0.0001);
    flor.commit("dark").unwrap();
    let after = flor.metrics();
    assert_eq!(
        after.histogram("store.commit.nanos").unwrap().count,
        commits.count,
        "disabled registry records nothing"
    );
    println!("\nmetrics disabled: the last commit left no samples behind");
}
